"""Plain-text renderers for reproduced tables and figure series.

The benchmarks regenerate each paper figure as an ASCII series: one row
per x value (Zipf θ), one column per curve (policy / buffer size /
migration setting), matching how the paper's plots would be read off.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Union

Number = Union[int, float]


def _fmt(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 4,
    title: str = "",
) -> str:
    """Render rows as a fixed-width ASCII table.

    Column widths adapt to content; floats are formatted to *precision*
    decimals.
    """
    cells = [[_fmt(v, precision) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[Number],
    series: Mapping[str, Sequence[Number]],
    precision: int = 4,
    title: str = "",
) -> str:
    """Render figure-style data: x column plus one column per curve.

    Args:
        x_label: name of the x axis (e.g. ``"theta"``).
        x_values: shared x grid.
        series: curve name → y values (must match ``len(x_values)``).
    """
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(ys)} points, expected "
                f"{len(x_values)}"
            )
    headers = [x_label, *series.keys()]
    rows = [
        [x, *(series[name][i] for name in series)]
        for i, x in enumerate(x_values)
    ]
    return render_table(headers, rows, precision=precision, title=title)


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """A one-line unicode mini-plot (used by example scripts).

    Values are rescaled to eight block heights; NaNs render as spaces.
    """
    blocks = "▁▂▃▄▅▆▇█"
    vals = list(values)
    if width is not None and len(vals) > width:
        # Downsample by striding; good enough for a glanceable trend.
        stride = len(vals) / width
        vals = [vals[int(i * stride)] for i in range(width)]
    finite = [v for v in vals if v == v]
    if not finite:
        return " " * len(vals)
    lo, hi = min(finite), max(finite)
    span = hi - lo or 1.0
    out = []
    for v in vals:
        if v != v:
            out.append(" ")
        else:
            idx = int((v - lo) / span * (len(blocks) - 1))
            out.append(blocks[idx])
    return "".join(out)
