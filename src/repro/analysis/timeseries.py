"""Time-series instrumentation: sampled cluster state over a run.

The paper reports scalar per-run measurements; operationally one also
wants the *trajectory* — active streams, instantaneous utilization,
client buffer levels — e.g. to see a failover dip and recovery, or a
flash crowd being absorbed.  :class:`StateSampler` takes periodic
snapshots on the engine's clock and exposes them as numpy arrays.

Instantaneous link utilization is the sum of current transmission
rates over cluster capacity — distinct from Section 4.1's cumulative
utilization (bytes over capacity×time), which remains the headline
metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.controller import DistributionController
from repro.sim.engine import Engine
from repro.sim.process import PeriodicTimer


@dataclass
class Snapshot:
    """One sampled instant of cluster state."""

    time: float
    active_streams: int
    instantaneous_rate: float       #: Σ current rates, Mb/s
    reserved_bandwidth: float       #: Σ minimum-flow floors, Mb/s
    mean_buffer: float              #: mean client buffer occupancy, Mb
    paused_streams: int             #: VCR-paused viewers
    per_server_active: Dict[int, int] = field(default_factory=dict)


class TimeSeries:
    """An ordered collection of :class:`Snapshot` with array views."""

    def __init__(self) -> None:
        self.snapshots: List[Snapshot] = []

    def append(self, snap: Snapshot) -> None:
        self.snapshots.append(snap)

    def __len__(self) -> int:
        return len(self.snapshots)

    @property
    def times(self) -> np.ndarray:
        return np.array([s.time for s in self.snapshots])

    @property
    def active_streams(self) -> np.ndarray:
        return np.array([s.active_streams for s in self.snapshots])

    @property
    def instantaneous_utilization(self) -> np.ndarray:
        """Needs the cluster capacity; see :meth:`utilization_series`."""
        return np.array([s.instantaneous_rate for s in self.snapshots])

    def utilization_series(self, total_bandwidth: float) -> np.ndarray:
        if total_bandwidth <= 0:
            raise ValueError(
                f"total bandwidth must be positive, got {total_bandwidth}"
            )
        return self.instantaneous_utilization / total_bandwidth

    @property
    def mean_buffers(self) -> np.ndarray:
        return np.array([s.mean_buffer for s in self.snapshots])

    @property
    def paused_streams(self) -> np.ndarray:
        return np.array([s.paused_streams for s in self.snapshots])

    def window(self, start: float, end: float) -> "TimeSeries":
        """Snapshots with ``start <= time < end``."""
        out = TimeSeries()
        for s in self.snapshots:
            if start <= s.time < end:
                out.append(s)
        return out


class StateSampler:
    """Periodically snapshot a controller's cluster state.

    Args:
        engine: the simulation engine.
        controller: the cluster under observation.
        interval: sampling period, seconds.
        start: first sample time (defaults to one interval from now).
    """

    def __init__(
        self,
        engine: Engine,
        controller: DistributionController,
        interval: float,
        start: Optional[float] = None,
    ) -> None:
        self.engine = engine
        self.controller = controller
        self.series = TimeSeries()
        self._timer = PeriodicTimer(
            engine, interval, self._sample, first=start, name="state-sampler"
        )

    def _sample(self) -> None:
        now = self.engine.now
        active = 0
        rate_sum = 0.0
        reserved = 0.0
        buffers: List[float] = []
        paused = 0
        per_server: Dict[int, int] = {}
        for server in self.controller.servers.values():
            per_server[server.server_id] = server.active_count
            active += server.active_count
            reserved += server.reserved_bandwidth
            for r in server.iter_active():
                rate_sum += r.rate
                # State may be lazily integrated; project to now.
                sent = r.bytes_sent + r.rate * (now - r.last_sync)
                played_until = min(now, r.playback_pause_time)
                viewed = (played_until - r.playback_start) * r.view_bandwidth
                buffers.append(max(0.0, sent - viewed))
                if r.playback_pause_time <= now:
                    paused += 1
        self.series.append(
            Snapshot(
                time=now,
                active_streams=active,
                instantaneous_rate=rate_sum,
                reserved_bandwidth=reserved,
                mean_buffer=float(np.mean(buffers)) if buffers else 0.0,
                paused_streams=paused,
                per_server_active=per_server,
            )
        )

    def stop(self) -> None:
        """Stop sampling (idempotent)."""
        self._timer.stop()
