"""Across-trial statistics.

The paper reports each data point as the result of 5 independent
trials.  We aggregate trial measurements into mean, standard deviation,
standard error and a normal-approximation confidence interval — enough
to judge whether curve separations (e.g. "migration beats no
migration") are real at the simulated scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

#: Two-sided z values for common confidence levels.
_Z = {0.80: 1.2816, 0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass(frozen=True)
class SummaryStats:
    """Aggregate of one measured quantity across trials."""

    n: int
    mean: float
    std: float
    stderr: float
    ci_low: float
    ci_high: float
    minimum: float
    maximum: float

    @property
    def ci_halfwidth(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    def overlaps(self, other: "SummaryStats") -> bool:
        """True when the confidence intervals intersect."""
        return self.ci_low <= other.ci_high and other.ci_low <= self.ci_high

    def __str__(self) -> str:
        return f"{self.mean:.4f} ± {self.ci_halfwidth:.4f} (n={self.n})"


def summarize(values: Sequence[float], confidence: float = 0.95) -> SummaryStats:
    """Summarise trial measurements.

    Uses the sample standard deviation (ddof=1) and a normal z interval;
    with the paper's 5 trials this slightly understates the t interval,
    which is fine for the shape comparisons we make.

    Raises:
        ValueError: for an empty sequence or unknown confidence level.
    """
    if not values:
        raise ValueError("cannot summarise zero trials")
    if confidence not in _Z:
        raise ValueError(
            f"confidence must be one of {sorted(_Z)}, got {confidence}"
        )
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
        std = math.sqrt(var)
    else:
        std = 0.0
    stderr = std / math.sqrt(n)
    half = _Z[confidence] * stderr
    return SummaryStats(
        n=n,
        mean=mean,
        std=std,
        stderr=stderr,
        ci_low=mean - half,
        ci_high=mean + half,
        minimum=min(values),
        maximum=max(values),
    )
