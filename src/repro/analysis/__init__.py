"""Measurement and analysis: metrics, statistics, analytic models, reports.

* :mod:`repro.analysis.metrics` — in-simulation counters (bytes moved,
  admissions, rejections, migrations) and the utilization definition
  from Section 4.1.
* :mod:`repro.analysis.stats` — across-trial aggregation (mean,
  standard error, normal-approximation confidence intervals).
* :mod:`repro.analysis.erlang` — the Erlang-B loss model used for the
  paper's analytical one-server utilization-vs-SVBR expression.
* :mod:`repro.analysis.report` — plain-text tables and series renderers
  for regenerating the paper's figures as ASCII.
"""

from repro.analysis.erlang import (
    erlang_b,
    erlang_b_utilization,
    svbr_utilization_curve,
)
from repro.analysis.metrics import MetricsSink, SimulationMetrics
from repro.analysis.report import render_series, render_table
from repro.analysis.stats import SummaryStats, summarize

__all__ = [
    "MetricsSink",
    "SimulationMetrics",
    "SummaryStats",
    "erlang_b",
    "erlang_b_utilization",
    "render_series",
    "render_table",
    "summarize",
    "svbr_utilization_curve",
]
