"""Exporting experiment results for downstream tooling.

The ASCII renderers in :mod:`repro.analysis.report` are for terminals;
this module writes the same data as CSV so results can be re-plotted
(gnuplot/matplotlib/spreadsheets) without re-running the sweeps.
Columns carry the mean plus the confidence-interval bounds so error
bars survive the round trip.

Every exported result file is accompanied by run metadata: a
``<stem>.meta.json`` sidecar holding the sweep's provenance dict (seed,
scale, ``repro.__version__``, UTC timestamp, ``REPRO_*`` environment
overrides, config hash) so a CSV found on disk later is attributable to
the exact inputs that produced it.  Obs metric registries export via
:func:`snapshot_to_json`.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional, Union

from repro.obs.provenance import run_provenance

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.experiments.base import SweepResult
    from repro.obs.registry import MetricsRegistry


def metadata_path(path: Union[str, Path]) -> Path:
    """The sidecar path for a result file: ``fig5.csv`` → ``fig5.meta.json``."""
    path = Path(path)
    return path.with_name(path.stem + ".meta.json")


def write_metadata(
    path: Union[str, Path], provenance: Optional[Dict[str, Any]] = None
) -> Path:
    """Write the ``.meta.json`` sidecar for the result file at *path*.

    Args:
        path: the result file the metadata describes.
        provenance: dict from
            :func:`repro.obs.provenance.run_provenance`; a fresh one
            (version/timestamp/env only) is generated when None.

    Returns:
        The sidecar path written.
    """
    side = metadata_path(path)
    meta = dict(provenance) if provenance is not None else run_provenance()
    meta["result_file"] = Path(path).name
    with open(side, "w") as fh:
        json.dump(meta, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return side


def snapshot_to_json(
    registry: "MetricsRegistry",
    path: Union[str, Path],
    provenance: Optional[Dict[str, Any]] = None,
) -> None:
    """Write a metrics-registry snapshot (plus provenance) as JSON."""
    payload = {
        "provenance": (
            dict(provenance) if provenance is not None else run_provenance()
        ),
        "metrics": registry.snapshot(),
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def sweep_to_csv(
    result: "SweepResult",
    path: Union[str, Path],
    metadata: bool = True,
) -> None:
    """Write a :class:`~repro.experiments.base.SweepResult` as CSV.

    Layout: one row per x value; per curve three columns
    ``<label>``, ``<label>_ci_low``, ``<label>_ci_high``.

    Unless *metadata* is False, the sweep's provenance is written to a
    ``.meta.json`` sidecar next to the CSV (see :func:`write_metadata`).
    """
    labels = list(result.curves)
    header = [result.x_label]
    for label in labels:
        header.extend([label, f"{label}_ci_low", f"{label}_ci_high"])
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        for i, x in enumerate(result.x_values):
            row = [f"{x:.6g}"]
            for label in labels:
                stats = result.curves[label][i]
                row.extend(
                    [
                        f"{stats.mean:.6f}",
                        f"{stats.ci_low:.6f}",
                        f"{stats.ci_high:.6f}",
                    ]
                )
            writer.writerow(row)
    if metadata:
        write_metadata(path, getattr(result, "provenance", None))


def load_sweep_csv(path: Union[str, Path]) -> dict:
    """Read back a file written by :func:`sweep_to_csv`.

    Returns ``{"x_label", "x_values", "curves": {label: [means]}}`` —
    enough for plotting; CI bounds are under ``curves_ci``.
    """
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        rows = [row for row in reader]
    x_label = header[0]
    labels = [h for h in header[1:] if not h.endswith(("_ci_low", "_ci_high"))]
    out = {
        "x_label": x_label,
        "x_values": [float(r[0]) for r in rows],
        "curves": {label: [] for label in labels},
        "curves_ci": {label: [] for label in labels},
    }
    for row in rows:
        for j, label in enumerate(labels):
            base = 1 + 3 * j
            out["curves"][label].append(float(row[base]))
            out["curves_ci"][label].append(
                (float(row[base + 1]), float(row[base + 2]))
            )
    return out
