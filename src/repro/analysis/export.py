"""Exporting experiment results for downstream tooling.

The ASCII renderers in :mod:`repro.analysis.report` are for terminals;
this module writes the same data as CSV so results can be re-plotted
(gnuplot/matplotlib/spreadsheets) without re-running the sweeps.
Columns carry the mean plus the confidence-interval bounds so error
bars survive the round trip.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.experiments.base import SweepResult


def sweep_to_csv(result: "SweepResult", path: Union[str, Path]) -> None:
    """Write a :class:`~repro.experiments.base.SweepResult` as CSV.

    Layout: one row per x value; per curve three columns
    ``<label>``, ``<label>_ci_low``, ``<label>_ci_high``.
    """
    labels = list(result.curves)
    header = [result.x_label]
    for label in labels:
        header.extend([label, f"{label}_ci_low", f"{label}_ci_high"])
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        for i, x in enumerate(result.x_values):
            row = [f"{x:.6g}"]
            for label in labels:
                stats = result.curves[label][i]
                row.extend(
                    [
                        f"{stats.mean:.6f}",
                        f"{stats.ci_low:.6f}",
                        f"{stats.ci_high:.6f}",
                    ]
                )
            writer.writerow(row)


def load_sweep_csv(path: Union[str, Path]) -> dict:
    """Read back a file written by :func:`sweep_to_csv`.

    Returns ``{"x_label", "x_values", "curves": {label: [means]}}`` —
    enough for plotting; CI bounds are under ``curves_ci``.
    """
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        rows = [row for row in reader]
    x_label = header[0]
    labels = [h for h in header[1:] if not h.endswith(("_ci_low", "_ci_high"))]
    out = {
        "x_label": x_label,
        "x_values": [float(r[0]) for r in rows],
        "curves": {label: [] for label in labels},
        "curves_ci": {label: [] for label in labels},
    }
    for row in rows:
        for j, label in enumerate(labels):
            base = 1 + 3 * j
            out["curves"][label].append(float(row[base]))
            out["curves_ci"][label].append(
                (float(row[base + 1]), float(row[base + 2]))
            )
    return out
