"""In-simulation metrics: the Section 4.1 measurement model.

"We measure the performance of the system in terms of bandwidth
utilization and request rejections.  That is, we sum the size of all
transmissions and divide that number by the total amount of data which
could be sent if all servers were sending data at the maximum bandwidth
for the duration of the simulation."

:class:`SimulationMetrics` is the concrete sink the transmission layer
reports into; :class:`MetricsSink` is the minimal protocol, so tests
can plug in recording fakes.

When built with a :class:`repro.obs.registry.MetricsRegistry`, the
fixed counters additionally *register into* named obs instruments
(``requests.*`` counters, the ``drm.chain_length`` histogram,
``server.<id>.rejections`` per-server counters) so downstream tooling
can read one ``snapshot()`` dict; the dataclass fields remain the fast
source of truth for the paper's measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Protocol, Sequence

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.obs.registry import MetricsRegistry


class MetricsSink(Protocol):
    """What the transmission layer needs from a metrics object."""

    def record_bytes(
        self, server_id: Optional[int], megabits: float, now: float
    ) -> None:
        """Attribute *megabits* of transfer to *server_id* at time *now*."""
        ...  # pragma: no cover - protocol


@dataclass
class SimulationMetrics:
    """Counters for one simulation run.

    All byte quantities are megabits.  ``bytes_per_server`` attributes
    transfers to the server that performed them (migrated streams split
    naturally across their hosts).
    """

    total_megabits: float = 0.0
    bytes_per_server: Dict[int, float] = field(default_factory=dict)

    arrivals: int = 0
    accepted: int = 0
    rejected: int = 0
    rejected_no_replica: int = 0

    migrations: int = 0
    migration_attempts: int = 0
    migration_chains_found: int = 0

    finished: int = 0
    dropped: int = 0

    #: Underrun episodes (a viewer's buffer emptied while transmission
    #: lagged playback) — only reachable under intermittent allocators
    #: with overbooked admission.
    underruns: int = 0

    #: Graceful-degradation accounting (``repro.faults.retry``): every
    #: resubmission attempt is *also* counted in ``arrivals`` (so the
    #: accepted + rejected == arrivals identity holds per attempt);
    #: ``retries`` lets distinct-request measures subtract them out.
    retries: int = 0
    retry_successes: int = 0       #: resubmissions that were admitted
    retry_exhausted: int = 0       #: requests abandoned (max attempts
    #: reached or bounded queue overflow) — permanently denied service.

    #: Fault-injection accounting (``repro.faults.injector``).
    faults_injected: int = 0

    #: Prefix-cache tier accounting (:mod:`repro.prefix`).  A *hit* is
    #: an arrival whose video had a warmed prefix in the cache at
    #: decision time, a *miss* the complement; ``chained`` counts
    #: shared sessions admitted without a dedicated server stream,
    #: ``patched`` the subset that additionally needed a truncated
    #: catch-up transfer.  ``cache_megabits`` is prefix data served
    #: from the proxy tier — deliberately *not* part of
    #: ``total_megabits``, which measures server egress only.
    cache_hits: int = 0
    cache_misses: int = 0
    chained: int = 0
    patched: int = 0
    cache_megabits: float = 0.0

    #: Saturation attribution: how often each server was a full replica
    #: holder at the moment a request was turned away.
    rejections_per_server: Dict[int, int] = field(default_factory=dict)

    #: Optional obs registry the counters mirror into (see module
    #: docstring).  Excluded from equality/repr: it is wiring, not data.
    registry: Optional["MetricsRegistry"] = field(
        default=None, repr=False, compare=False
    )

    def reset(self) -> None:
        """Zero every counter (used at the end of a warmup window so
        measurements cover only the steady state)."""
        self.total_megabits = 0.0
        self.bytes_per_server = {}
        self.arrivals = 0
        self.accepted = 0
        self.rejected = 0
        self.rejected_no_replica = 0
        self.migrations = 0
        self.migration_attempts = 0
        self.migration_chains_found = 0
        self.finished = 0
        self.dropped = 0
        self.underruns = 0
        self.retries = 0
        self.retry_successes = 0
        self.retry_exhausted = 0
        self.faults_injected = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.chained = 0
        self.patched = 0
        self.cache_megabits = 0.0
        self.rejections_per_server = {}
        if self.registry is not None:
            self.registry.reset()

    # ------------------------------------------------------------------
    # Transfer accounting
    # ------------------------------------------------------------------
    def record_bytes(
        self, server_id: Optional[int], megabits: float, now: float
    ) -> None:
        """MetricsSink implementation (``now`` kept for tracing hooks)."""
        if megabits < 0:
            raise ValueError(f"negative transfer: {megabits}")
        self.total_megabits += megabits
        if server_id is not None:
            self.bytes_per_server[server_id] = (
                self.bytes_per_server.get(server_id, 0.0) + megabits
            )

    # ------------------------------------------------------------------
    # Admission accounting
    # ------------------------------------------------------------------
    def record_arrival(self) -> None:
        self.arrivals += 1
        if self.registry is not None:
            self.registry.counter("requests.arrivals").inc()

    def record_accept(self) -> None:
        self.accepted += 1
        if self.registry is not None:
            self.registry.counter("requests.accepted").inc()

    def record_reject(
        self, no_replica: bool = False, holders: Sequence[int] = ()
    ) -> None:
        """Count one rejection.

        Args:
            no_replica: no live server held the video at all.
            holders: server ids of the (saturated) replica holders that
                could not take the request — attributed per server.
        """
        self.rejected += 1
        if no_replica:
            self.rejected_no_replica += 1
        for server_id in holders:
            self.rejections_per_server[server_id] = (
                self.rejections_per_server.get(server_id, 0) + 1
            )
        if self.registry is not None:
            self.registry.counter("requests.rejected").inc()
            if no_replica:
                self.registry.counter("requests.rejected_no_replica").inc()
            for server_id in holders:
                self.registry.counter(f"server.{server_id}.rejections").inc()

    def record_migration(self, chain_length: int) -> None:
        """A successful DRM chain of the given length executed."""
        self.migrations += chain_length
        self.migration_chains_found += 1
        if self.registry is not None:
            self.registry.counter("drm.migrations").inc(chain_length)
            self.registry.histogram("drm.chain_length").observe(chain_length)

    def record_migration_attempt(self) -> None:
        self.migration_attempts += 1
        if self.registry is not None:
            self.registry.counter("drm.attempts").inc()

    def record_relocation(self) -> None:
        """One orphaned stream moved to a new home (failover / shedding).

        Counted in ``migrations`` like any other stream move, but kept
        consistent with the registry's ``drm.migrations`` counter (the
        old failover path bumped the dataclass field directly and let
        the two diverge).
        """
        self.migrations += 1
        if self.registry is not None:
            self.registry.counter("drm.migrations").inc()

    def record_underrun(self) -> None:
        """A stream's client buffer emptied while starved of bandwidth."""
        self.underruns += 1
        if self.registry is not None:
            self.registry.counter("streams.underruns").inc()

    def record_finish(self) -> None:
        """A stream completed transmission and playback hand-off."""
        self.finished += 1
        if self.registry is not None:
            self.registry.counter("requests.finished").inc()

    def record_drop(self) -> None:
        """A live stream was lost (server failure with no rescue slot)."""
        self.dropped += 1
        if self.registry is not None:
            self.registry.counter("requests.dropped").inc()

    # ------------------------------------------------------------------
    # Graceful degradation / fault injection
    # ------------------------------------------------------------------
    def record_retry(self, backoff: float) -> None:
        """One resubmission attempt scheduled after *backoff* seconds."""
        self.retries += 1
        if self.registry is not None:
            self.registry.counter("retry.scheduled").inc()
            self.registry.histogram("retry.backoff_seconds").observe(backoff)

    def record_retry_success(self) -> None:
        """A resubmitted request was admitted."""
        self.retry_successes += 1
        if self.registry is not None:
            self.registry.counter("retry.succeeded").inc()

    def record_retry_exhausted(self) -> None:
        """A request was permanently abandoned by the retry queue."""
        self.retry_exhausted += 1
        if self.registry is not None:
            self.registry.counter("retry.exhausted").inc()

    def record_fault(self, kind: str) -> None:
        """One injected fault of *kind* (``crash``/``degrade``/...)."""
        self.faults_injected += 1
        if self.registry is not None:
            self.registry.counter(f"faults.{kind}").inc()

    # ------------------------------------------------------------------
    # Prefix-cache tier (repro.prefix)
    # ------------------------------------------------------------------
    def record_cache_lookup(self, hit: bool) -> None:
        """One arrival checked against the prefix cache."""
        if hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1
        if self.registry is not None:
            name = "cache.hits" if hit else "cache.misses"
            self.registry.counter(name).inc()

    def record_chained(self, patched: bool) -> None:
        """One arrival admitted as a shared (chained) session."""
        self.chained += 1
        if patched:
            self.patched += 1
        if self.registry is not None:
            self.registry.counter("cache.chained").inc()
            if patched:
                self.registry.counter("cache.patched").inc()

    def record_cache_bytes(self, megabits: float) -> None:
        """Prefix data served from the cache tier (not server egress)."""
        if megabits < 0:
            raise ValueError(f"negative transfer: {megabits}")
        self.cache_megabits += megabits
        if self.registry is not None:
            self.registry.counter("cache.megabits_served").inc(megabits)

    # ------------------------------------------------------------------
    # Derived measures
    # ------------------------------------------------------------------
    def utilization(self, total_bandwidth: float, duration: float) -> float:
        """Data sent over data sendable (Section 4.1's definition)."""
        if total_bandwidth <= 0 or duration <= 0:
            raise ValueError(
                f"need positive capacity and duration, got "
                f"{total_bandwidth}, {duration}"
            )
        return self.total_megabits / (total_bandwidth * duration)

    @property
    def acceptance_ratio(self) -> float:
        """Fraction of arrivals admitted (1.0 when nothing arrived)."""
        return self.accepted / self.arrivals if self.arrivals else 1.0

    @property
    def rejection_ratio(self) -> float:
        return self.rejected / self.arrivals if self.arrivals else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of cache lookups that hit (0.0 with no tier)."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def distinct_arrivals(self) -> int:
        """Arrivals net of retry resubmissions (one per real viewer)."""
        return self.arrivals - self.retries

    @property
    def backoff_success_ratio(self) -> float:
        """Fraction of scheduled retries that ended in admission
        (1.0 when no retries were needed)."""
        return self.retry_successes / self.retries if self.retries else 1.0

    def availability(self, pending_retries: int = 0) -> float:
        """Fraction of distinct requests not permanently denied service.

        With a retry queue attached every rejection/drop re-enters the
        queue, so the only permanently lost requests are the exhausted
        ones plus whatever is still *pending* in the queue at the end of
        the run (conservatively counted as denied).  Without a retry
        queue this degenerates to ``1 - (rejected + dropped)/arrivals``.
        """
        distinct = self.distinct_arrivals
        if distinct <= 0:
            return 1.0
        if self.retries or self.retry_exhausted or pending_retries:
            denied = self.retry_exhausted + pending_retries
        else:
            denied = self.rejected + self.dropped
        return max(0.0, 1.0 - denied / distinct)

    def server_utilization(
        self, server_id: int, bandwidth: float, duration: float
    ) -> float:
        """Per-server utilization."""
        sent = self.bytes_per_server.get(server_id, 0.0)
        return sent / (bandwidth * duration)

    def load_imbalance(
        self, bandwidths: Dict[int, float], duration: float
    ) -> float:
        """Coefficient of variation of per-server utilization.

        0 means perfectly balanced load; rises as some servers carry
        disproportionate traffic — the quantity the §4.6 heterogeneity
        discussion is implicitly about ("variabilities are spread out
        over a larger number of servers").
        """
        if not bandwidths:
            raise ValueError("need at least one server")
        utils = [
            self.server_utilization(sid, bw, duration)
            for sid, bw in bandwidths.items()
        ]
        n = len(utils)
        mean = sum(utils) / n
        if mean == 0.0:
            return 0.0
        var = sum((u - mean) ** 2 for u in utils) / n
        return (var ** 0.5) / mean

    def sanity_check(self) -> None:
        """Internal-consistency assertions (used by tests and at the end
        of every run)."""
        if self.accepted + self.rejected != self.arrivals:
            raise AssertionError(
                f"accepted({self.accepted}) + rejected({self.rejected}) "
                f"!= arrivals({self.arrivals})"
            )
        per_server_sum = sum(self.bytes_per_server.values())
        if abs(per_server_sum - self.total_megabits) > 1e-3:
            raise AssertionError(
                f"per-server bytes {per_server_sum} != total "
                f"{self.total_megabits}"
            )
