"""Erlang-B loss model: the paper's analytic one-server expression.

Section 3.2: "We also show an analytical expression which gives the
expected utilization as a function of the SVBR for a one server system.
The fact that the analytical results are very close to the empirical
results … validates the accuracy of our experimental results."

A single server under **continuous** transmission (no staging, no
migration) with Poisson arrivals and a per-stream bandwidth reservation
is exactly an M/G/m/m loss system with ``m = SVBR`` circuits.  By the
Erlang insensitivity property the blocking probability depends on the
service-time distribution only through its mean, so Erlang B applies
despite the uniform (not exponential) video lengths::

    B(m, a) = (a^m / m!) / sum_{k=0}^{m} a^k / k!

With offered load ``a`` erlangs the carried load is ``a (1 - B)`` and
link utilization is ``a (1 - B) / m``.  At the paper's operating point
(offered load = capacity) ``a = m`` and utilization is ``1 - B(m, m)``.

The recursion ``B(0) = 1; B(k) = a B(k-1) / (k + a B(k-1))`` is used —
numerically stable for any m (factorials would overflow at SVBR 100).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def erlang_b(servers: int, offered_load: float) -> float:
    """Blocking probability B(m, a) of an M/G/m/m loss system.

    Args:
        servers: m, number of circuits (here: SVBR stream slots).
        offered_load: a, offered traffic in erlangs (λ × mean holding
            time).

    Returns:
        Probability an arrival finds all m circuits busy.
    """
    if servers < 0:
        raise ValueError(f"servers must be >= 0, got {servers}")
    if offered_load < 0:
        raise ValueError(f"offered load must be >= 0, got {offered_load}")
    if offered_load == 0.0:
        return 0.0 if servers > 0 else 1.0
    b = 1.0
    for k in range(1, servers + 1):
        b = offered_load * b / (k + offered_load * b)
    return b


def erlang_b_utilization(svbr: int, load: float = 1.0) -> float:
    """Expected link utilization of one server at the given offered load.

    Args:
        svbr: server-to-view bandwidth ratio (concurrent stream slots).
        load: offered load as a fraction of link capacity (paper: 1.0).

    Returns:
        Carried load over capacity: ``a (1 - B(m, a)) / m`` with
        ``a = load * m``.
    """
    if svbr < 1:
        raise ValueError(f"svbr must be >= 1, got {svbr}")
    a = load * svbr
    return a * (1.0 - erlang_b(svbr, a)) / svbr


def svbr_utilization_curve(
    svbr_values: Sequence[int], load: float = 1.0
) -> List[Tuple[int, float]]:
    """Analytic utilization-vs-SVBR series (the EXT-SVBR reference
    curve)."""
    return [(int(m), erlang_b_utilization(int(m), load)) for m in svbr_values]


def erlang_b_inverse(
    blocking_target: float, offered_load: float, max_servers: int = 100_000
) -> int:
    """Smallest m with B(m, a) <= target — the capacity-planning helper
    used by the ``capacity_planning`` example.

    Raises:
        ValueError: if the target cannot be met within *max_servers*.
    """
    if not 0 < blocking_target < 1:
        raise ValueError(
            f"blocking target must be in (0, 1), got {blocking_target}"
        )
    b = 1.0
    a = offered_load
    if a == 0.0:
        return 0
    for m in range(1, max_servers + 1):
        b = a * b / (m + a * b)
        if b <= blocking_target:
            return m
    raise ValueError(
        f"no m <= {max_servers} achieves B <= {blocking_target} at "
        f"a={offered_load}"
    )
