"""Physical units and conversion constants used throughout the library.

The paper mixes megabits per second (link bandwidths, the 3 Mb/s view
rate) with gigabytes (disk capacities).  To avoid unit bugs the whole
library standardises on:

* **time** — seconds
* **bandwidth** — megabits per second (Mb/s)
* **data size** — megabits (Mb)

Disk capacities quoted in gigabytes are converted with the decimal
convention (1 GB = 8000 Mb) which matches how storage vendors — and the
paper — count bytes.
"""

from __future__ import annotations

#: Megabits per decimal gigabyte (1 GB = 10**9 bytes = 8 * 10**3 Mb).
MB_PER_GB: float = 8000.0

#: Seconds per minute / hour, for readable workload definitions.
SECONDS_PER_MINUTE: float = 60.0
SECONDS_PER_HOUR: float = 3600.0

#: The paper's view (playback) bandwidth for all videos, Mb/s (Section 4.1).
DEFAULT_VIEW_BANDWIDTH: float = 3.0

#: Client receive-bandwidth cap used in the staging experiments, Mb/s
#: (Section 4.3: "we restrict the amount of bandwidth which can be used to
#: send data to a single client to 30 Mb per second").
DEFAULT_CLIENT_RECEIVE_BANDWIDTH: float = 30.0


def gb_to_mb(gigabytes: float) -> float:
    """Convert decimal gigabytes to megabits."""
    return gigabytes * MB_PER_GB


def mb_to_gb(megabits: float) -> float:
    """Convert megabits to decimal gigabytes."""
    return megabits / MB_PER_GB


def minutes(value: float) -> float:
    """Convert minutes to seconds."""
    return value * SECONDS_PER_MINUTE


def hours(value: float) -> float:
    """Convert hours to seconds."""
    return value * SECONDS_PER_HOUR


def mbps_hours(bandwidth_mbps: float, duration_hours: float) -> float:
    """Total megabits a link at *bandwidth_mbps* can move in *duration_hours*."""
    return bandwidth_mbps * hours(duration_hours)
