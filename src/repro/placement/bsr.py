"""Bandwidth-to-space-ratio (BSR) greedy placement baseline.

After Dan & Sitaram, "An online video placement policy based on
bandwidth to space ratio", SIGMOD '95 — reference [10] of the paper and
its closest related-work comparator.  The idea: a video's *bandwidth
demand* (popularity × view rate) and *space demand* (its size) should
be matched to the servers' bandwidth-to-space ratios so neither
resource strands the other.

This implementation:

1. sizes replica counts proportional to **bandwidth demand** (like the
   predictive oracle — BSR also assumes popularity knowledge);
2. places copies greedily on the server whose *remaining*
   bandwidth-to-space ratio best matches the video's own BSR, instead
   of randomly.

It serves as a "sophisticated placement" comparator demonstrating the
paper's claim that sophistication is unnecessary once staging + DRM are
available.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.cluster.server import DataServer
from repro.placement.base import PlacementMap, PlacementPolicy, PlacementResult
from repro.placement.predictive import proportional_counts
from repro.workload.catalog import VideoCatalog
from repro.workload.zipf import ZipfPopularity


class BSRPlacement(PlacementPolicy):
    """Greedy bandwidth-to-space matching placement."""

    name = "bsr"

    def copy_counts(
        self,
        catalog: VideoCatalog,
        popularity: ZipfPopularity,
        total_copies: int,
        n_servers: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        return proportional_counts(
            popularity.probabilities, total_copies, n_servers, rng
        )

    def allocate(
        self,
        catalog: VideoCatalog,
        popularity: ZipfPopularity,
        servers: Sequence[DataServer],
        total_copies: int,
        rng: np.random.Generator,
    ) -> PlacementResult:
        counts = self.copy_counts(
            catalog, popularity, total_copies, len(servers), rng
        )
        # Remaining per-server budgets.  Bandwidth budget is virtual
        # (expected concurrent streams × view rate); space budget is the
        # physical disk.
        bw_left = {s.server_id: s.bandwidth for s in servers}
        holders: Dict[int, List[int]] = {int(v): [] for v in range(len(catalog))}
        shortfall = 0
        # Hottest first so the scarce well-matched slots go to the
        # videos that need them; two passes so a tight disk sheds extra
        # replicas before leaving any video uncovered.
        order = [int(v) for v in np.argsort(-popularity.probabilities, kind="stable")]

        def place_one(vid: int) -> bool:
            video = catalog[vid]
            placed = holders[vid]
            candidates = [
                s
                for s in servers
                if s.can_store(video) and s.server_id not in placed
            ]
            if not candidates:
                return False
            # Bandwidth this video will demand per replica if demand is
            # split evenly across its copies.
            demand_bw = (
                popularity.probabilities[vid]
                * video.view_bandwidth
                / max(int(counts[vid]), 1)
            )
            video_bsr = demand_bw / video.size

            def mismatch(s: DataServer) -> Tuple[float, int]:
                space = max(s.storage_free, 1e-9)
                server_bsr = max(bw_left[s.server_id], 0.0) / space
                return (abs(server_bsr - video_bsr), s.server_id)

            best = min(candidates, key=mismatch)
            best.store_replica(video)
            bw_left[best.server_id] -= demand_bw
            placed.append(best.server_id)
            return True

        for vid in order:  # pass 1: coverage
            if int(counts[vid]) >= 1 and not place_one(vid):
                shortfall += 1
        for vid in order:  # pass 2: replication (the remaining copies)
            for _ in range(int(counts[vid]) - min(1, int(counts[vid]))):
                if not place_one(vid):
                    shortfall += 1
        placement = PlacementMap(
            {vid: tuple(srvs) for vid, srvs in holders.items()}
        )
        return PlacementResult(
            placement=placement,
            requested_copies=np.asarray(counts, dtype=np.int64),
            shortfall=shortfall,
        )
