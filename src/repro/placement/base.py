"""Placement abstractions: the replica map and the policy interface."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.cluster.server import DataServer
from repro.workload.catalog import VideoCatalog
from repro.workload.zipf import ZipfPopularity


class PlacementMap:
    """Immutable-ish mapping video id → holder server ids.

    Built once before the simulation starts (static placement,
    Section 4.1).  Provides the lookups the admission path needs.
    """

    def __init__(self, holders: Dict[int, Tuple[int, ...]]) -> None:
        self._holders: Dict[int, Tuple[int, ...]] = {
            vid: tuple(sorted(set(srvs))) for vid, srvs in holders.items()
        }

    def holders(self, video_id: int) -> Tuple[int, ...]:
        """Server ids holding a replica of *video_id* (possibly empty)."""
        return self._holders.get(video_id, ())

    def add_holder(self, video_id: int, server_id: int) -> None:
        """Register a new replica (dynamic replication extension).

        Static placements never call this; see
        :mod:`repro.core.replication`.
        """
        current = self._holders.get(video_id, ())
        if server_id not in current:
            self._holders[video_id] = tuple(sorted((*current, server_id)))

    def remove_holder(self, video_id: int, server_id: int) -> None:
        """Deregister a replica (de-replication / eviction)."""
        current = self._holders.get(video_id, ())
        if server_id in current:
            self._holders[video_id] = tuple(
                s for s in current if s != server_id
            )

    def copies(self, video_id: int) -> int:
        """Replica count of *video_id*."""
        return len(self._holders.get(video_id, ()))

    def total_copies(self) -> int:
        return sum(len(s) for s in self._holders.values())

    def videos(self) -> List[int]:
        """All placed video ids, sorted."""
        return sorted(self._holders)

    def videos_on(self, server_id: int) -> List[int]:
        """Video ids with a replica on *server_id*, sorted."""
        return sorted(
            vid for vid, srvs in self._holders.items() if server_id in srvs
        )

    def copy_counts(self, n_videos: int) -> np.ndarray:
        """Vector of replica counts indexed by video id."""
        counts = np.zeros(n_videos, dtype=np.int64)
        for vid, srvs in self._holders.items():
            counts[vid] = len(srvs)
        return counts

    def __len__(self) -> int:
        return len(self._holders)


@dataclass
class PlacementResult:
    """A placement plus bookkeeping about how it was achieved.

    Attributes:
        placement: the replica map.
        requested_copies: copies the policy wanted per video id.
        shortfall: copies that could not be placed for lack of disk
            space (0 in the paper's feasible configurations).
    """

    placement: PlacementMap
    requested_copies: np.ndarray
    shortfall: int = 0

    @property
    def placed_copies(self) -> int:
        return self.placement.total_copies()


class PlacementPolicy(abc.ABC):
    """Interface: decide per-video replica counts, then place them.

    Subclasses implement :meth:`copy_counts`; the shared capacity-aware
    random assignment (``repro.placement.capacity``) turns counts into a
    :class:`PlacementMap`.

    Every policy is additionally **membership-capable**: the elastic
    scaler (:mod:`repro.core.elastic`) consults :meth:`warm_targets`
    when a server joins mid-run and :meth:`on_server_depart` when one
    leaves.  ``repro list`` prints :meth:`lifecycle_hooks` per entry.
    """

    name: str = "abstract"

    #: Membership lifecycle hook names (in call order over a server's
    #: life); :meth:`lifecycle_hooks` reports which a class provides.
    _LIFECYCLE_HOOKS = ("warm_targets", "on_server_depart")

    @classmethod
    def lifecycle_hooks(cls) -> Tuple[str, ...]:
        """Names of the membership hooks this policy implements."""
        return tuple(
            name
            for name in cls._LIFECYCLE_HOOKS
            if callable(getattr(cls, name, None))
        )

    def warm_targets(
        self,
        catalog: VideoCatalog,
        popularity: ZipfPopularity,
        placement: PlacementMap,
        server: DataServer,
        limit: int,
    ) -> List[int]:
        """Videos worth warming onto a joining *server*, hottest first.

        The default seeds the most popular videos (id order is rank
        order) the server does not yet hold, respecting its free disk;
        subclasses may reorder (e.g. a prefix-caching policy would warm
        prefixes instead).  Deterministic: no RNG involved.
        """
        targets: List[int] = []
        budget = server.storage_free
        for vid in range(len(catalog)):
            if len(targets) >= limit:
                break
            if server.holds(vid):
                continue
            size = catalog[vid].size
            if size > budget:
                continue
            targets.append(vid)
            budget -= size
        return targets

    def on_server_depart(
        self, placement: PlacementMap, server: DataServer
    ) -> None:
        """Hook: *server*'s replicas are about to leave *placement*.

        The base implementation does nothing — the elastic scaler
        removes the holder entries itself; policies that keep side
        state (caches, shard maps) override this to stay consistent.
        """

    @abc.abstractmethod
    def copy_counts(
        self,
        catalog: VideoCatalog,
        popularity: ZipfPopularity,
        total_copies: int,
        n_servers: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return an integer vector of desired replica counts.

        Implementations must return counts in ``[1, n_servers]`` per
        video summing (approximately) to *total_copies*.
        """

    def allocate(
        self,
        catalog: VideoCatalog,
        popularity: ZipfPopularity,
        servers: Sequence[DataServer],
        total_copies: int,
        rng: np.random.Generator,
    ) -> PlacementResult:
        """Compute counts and place replicas on *servers* (mutating their
        disks).  See :func:`repro.placement.capacity.assign_copies_randomly`.
        """
        from repro.placement.capacity import assign_copies_randomly

        counts = self.copy_counts(
            catalog, popularity, total_copies, len(servers), rng
        )
        counts = np.asarray(counts, dtype=np.int64)
        if counts.shape != (len(catalog),):
            raise ValueError(
                f"{self.name}: expected {len(catalog)} counts, got {counts.shape}"
            )
        if (counts < 1).any():
            raise ValueError(f"{self.name}: every video needs >= 1 copy")
        if (counts > len(servers)).any():
            raise ValueError(
                f"{self.name}: copy count exceeds server count "
                f"(replicas must sit on distinct servers)"
            )
        placement, shortfall = assign_copies_randomly(
            catalog, counts, servers, rng
        )
        return PlacementResult(
            placement=placement, requested_copies=counts, shortfall=shortfall
        )


def clamp_counts_to_total(
    counts: np.ndarray, total: int, n_servers: int, rng: np.random.Generator
) -> np.ndarray:
    """Adjust integer *counts* so they sum to *total*, respecting bounds.

    Adds/removes single copies from randomly chosen eligible videos.
    Used by the proportional policies after rounding.  If the bounds
    make *total* unreachable (e.g. fewer videos×servers than total) the
    closest achievable sum is returned.
    """
    counts = counts.astype(np.int64).copy()
    n = len(counts)
    guard = 0
    while counts.sum() != total and guard < 10 * n + total:
        guard += 1
        diff = total - int(counts.sum())
        if diff > 0:
            eligible = np.flatnonzero(counts < n_servers)
            if eligible.size == 0:
                break
            counts[rng.choice(eligible)] += 1
        else:
            eligible = np.flatnonzero(counts > 1)
            if eligible.size == 0:
                break
            counts[rng.choice(eligible)] -= 1
    return counts
