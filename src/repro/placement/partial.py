"""Partial predictive allocation (Section 4.4).

"A more practical scenario is that we have some, but not complete
ability to predict how popular the videos will be … we introduce a very
mildly skewed allocation which makes a few extra copies of the most
popular videos."

The scheme needs only an *ordering* of the likely-hot titles — not
their probabilities — which is exactly the paper's point: "It is only
necessary to identify the ones that are likely to be more popular."
Starting from the even allocation, the i-th hottest of the ``top_k``
identified titles gets extra copies decaying harmonically from full
replication::

    extra_i = ceil((n_servers - base) / (i + 1)),   i = 0 .. top_k-1

i.e. the presumed-hottest title lands on every server and the boost
falls off like 1/rank — the shape of *any* Zipf-like demand, with no
skew parameter required.  The boost is paid for by removing copies from
randomly chosen cold titles so the replica budget is unchanged.  A
constant per-title boost is also supported (``boost=...``) for
sensitivity studies.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.placement.base import PlacementPolicy
from repro.placement.even import EvenPlacement
from repro.workload.catalog import VideoCatalog
from repro.workload.zipf import ZipfPopularity


class PartialPredictivePlacement(PlacementPolicy):
    """Even allocation plus rank-decayed extra copies for the hot set.

    Args:
        top_fraction: fraction of the catalog treated as "likely
            popular" (default 5 %).
        boost: constant extra replicas per top video; ``None`` (default)
            uses the harmonic decay from full replication described in
            the module docstring.
    """

    name = "partial"

    def __init__(
        self, top_fraction: float = 0.05, boost: Optional[int] = None
    ) -> None:
        if not 0 < top_fraction <= 1:
            raise ValueError(
                f"top_fraction must be in (0, 1], got {top_fraction}"
            )
        if boost is not None and boost < 1:
            raise ValueError(f"boost must be >= 1 or None, got {boost}")
        self.top_fraction = float(top_fraction)
        self.boost = boost

    def copy_counts(
        self,
        catalog: VideoCatalog,
        popularity: ZipfPopularity,
        total_copies: int,
        n_servers: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        counts = EvenPlacement().copy_counts(
            catalog, popularity, total_copies, n_servers, rng
        )
        n = len(catalog)
        top_k = max(1, int(round(self.top_fraction * n)))
        base = max(1, total_copies // n)
        # Ranking by demand; catalog index order *is* rank order, but we
        # sort by probability so the policy stays correct for reordered
        # or non-Zipf demand models.
        hot = np.argsort(-popularity.probabilities, kind="stable")[:top_k]
        moved = 0
        for i, vid in enumerate(hot):
            if self.boost is not None:
                extra = self.boost
            else:
                extra = math.ceil(max(n_servers - base, 0) / (i + 1))
            give = min(extra, n_servers - int(counts[vid]))
            counts[vid] += give
            moved += give
        # Pay for the boost by removing copies from random cold videos,
        # keeping the total replica budget fixed.
        cold_mask = np.ones(n, dtype=bool)
        cold_mask[hot] = False
        while moved > 0:
            eligible = np.flatnonzero(cold_mask & (counts > 1))
            if eligible.size == 0:
                break  # cannot pay fully; accept a slightly larger budget
            take = rng.choice(eligible)
            counts[take] -= 1
            moved -= 1
        return counts
