"""Capacity-aware random assignment of replicas to servers.

Section 4.1: "a subset of the servers is chosen at random for each
video and copies of that video are placed on the selected servers."

We honour disk capacities: a server with insufficient free space is not
a candidate.  When fewer candidates than requested copies exist, the
video gets as many replicas as fit and the deficit is reported as
``shortfall`` (the paper's configurations are feasible, so this is 0 in
the reproduced experiments; it matters for stress tests).

Videos are placed in descending size order — the classic first-fit-
decreasing trick — so large videos are not squeezed out by earlier
small ones.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.cluster.server import DataServer
from repro.placement.base import PlacementMap
from repro.workload.catalog import VideoCatalog


def assign_copies_randomly(
    catalog: VideoCatalog,
    counts: np.ndarray,
    servers: Sequence[DataServer],
    rng: np.random.Generator,
) -> Tuple[PlacementMap, int]:
    """Place ``counts[v]`` replicas of each video on random servers.

    Args:
        catalog: the videos.
        counts: desired replicas per video id, each in [1, n_servers].
        servers: the cluster's servers; their disks are mutated.
        rng: placement random stream.

    Placement is two-phase so that a tight disk budget sheds *extra*
    replicas before it ever leaves a video without any copy (Section
    3.2: the policies are "required to make at least one copy of each
    video, assuming the availability of storage"):

    1. one copy of every video, largest first (first-fit decreasing);
    2. the remaining ``counts[v] - 1`` copies, largest first.

    Returns:
        (placement map, shortfall) where shortfall counts replicas that
        did not fit anywhere.
    """
    if len(counts) != len(catalog):
        raise ValueError(
            f"counts length {len(counts)} != catalog size {len(catalog)}"
        )
    holders: Dict[int, List[int]] = {vid: [] for vid in range(len(catalog))}
    shortfall = 0
    # First-fit-decreasing over video size; ties broken by id for
    # determinism.
    order = sorted(range(len(catalog)), key=lambda v: (-catalog[v].size, v))

    def place(vid: int, want: int) -> int:
        """Place up to *want* replicas of *vid*; returns the deficit."""
        if want <= 0:
            return 0
        video = catalog[vid]
        candidates = [s for s in servers if s.can_store(video)]
        placed_now = min(want, len(candidates))
        if placed_now > 0:
            chosen = rng.choice(len(candidates), size=placed_now, replace=False)
            for idx in np.atleast_1d(chosen):
                server = candidates[int(idx)]
                server.store_replica(video)
                holders[vid].append(server.server_id)
        return want - placed_now

    for vid in order:  # phase 1: coverage (attempt one copy each)
        shortfall += place(vid, min(1, int(counts[vid])))
    for vid in order:  # phase 2: replication (the remaining copies)
        shortfall += place(vid, int(counts[vid]) - min(1, int(counts[vid])))
    return (
        PlacementMap({vid: tuple(srvs) for vid, srvs in holders.items()}),
        shortfall,
    )


def storage_feasible(
    catalog: VideoCatalog, counts: np.ndarray, servers: Sequence[DataServer]
) -> bool:
    """Quick aggregate check: does the total replica volume fit the
    cluster's total disk?  Necessary but not sufficient (fragmentation
    across servers can still cause shortfall)."""
    total_volume = float(np.dot(counts, catalog.sizes))
    total_disk = sum(s.disk_capacity for s in servers)
    return total_volume <= total_disk
