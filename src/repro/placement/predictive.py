"""Predictive allocation: copies proportional to known popularity.

Section 3.2: "The number of copies of each object is proportional to
its predicted popularity."  The paper's predictive scheme is an oracle:
it knows the Zipf demand exactly and is "required to make at least one
copy of each video".  Rounding uses largest-remainder so the total is
hit exactly (then clamped to [1, n_servers] and re-balanced).
"""

from __future__ import annotations

import numpy as np

from repro.placement.base import PlacementPolicy, clamp_counts_to_total
from repro.workload.catalog import VideoCatalog
from repro.workload.zipf import ZipfPopularity


def proportional_counts(
    probabilities: np.ndarray,
    total_copies: int,
    n_servers: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Largest-remainder apportionment of *total_copies* by probability,
    with every count clamped to [1, n_servers]."""
    n = len(probabilities)
    ideal = probabilities * total_copies
    counts = np.floor(ideal).astype(np.int64)
    counts = np.clip(counts, 1, n_servers)
    # Distribute what's left to the largest fractional remainders among
    # videos that can still take a copy.
    deficit = total_copies - int(counts.sum())
    if deficit > 0:
        remainders = ideal - np.floor(ideal)
        order = np.argsort(-remainders, kind="stable")
        for vid in order:
            if deficit == 0:
                break
            if counts[vid] < n_servers:
                counts[vid] += 1
                deficit -= 1
    return clamp_counts_to_total(counts, total_copies, n_servers, rng)


class PredictivePlacement(PlacementPolicy):
    """Oracle placement: replicas proportional to true demand."""

    name = "predictive"

    def copy_counts(
        self,
        catalog: VideoCatalog,
        popularity: ZipfPopularity,
        total_copies: int,
        n_servers: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        if total_copies < len(catalog):
            raise ValueError(
                f"total_copies={total_copies} cannot give each of "
                f"{len(catalog)} videos a replica"
            )
        return proportional_counts(
            popularity.probabilities, total_copies, n_servers, rng
        )
