"""Even allocation: the popularity-oblivious placement (Section 3.2).

"This strategy allocates the same number of copies to each video (with
rounding done at random)."  With an average of 2.2 copies per video,
each video gets 2 copies and a random 20 % of videos get a third.
"""

from __future__ import annotations

import numpy as np

from repro.placement.base import PlacementPolicy
from repro.workload.catalog import VideoCatalog
from repro.workload.zipf import ZipfPopularity


class EvenPlacement(PlacementPolicy):
    """Same copy count for every video, random rounding."""

    name = "even"

    def copy_counts(
        self,
        catalog: VideoCatalog,
        popularity: ZipfPopularity,
        total_copies: int,
        n_servers: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        n = len(catalog)
        if total_copies < n:
            raise ValueError(
                f"total_copies={total_copies} cannot give each of {n} "
                f"videos a replica"
            )
        base = total_copies // n
        base = max(1, min(base, n_servers))
        counts = np.full(n, base, dtype=np.int64)
        remainder = total_copies - base * n
        if remainder > 0 and base < n_servers:
            lucky = rng.choice(n, size=min(remainder, n), replace=False)
            counts[lucky] += 1
        return counts
