"""Static video placement strategies (paper Sections 3.2 and 4.4).

A placement decides how many replicas each video gets and which servers
hold them, before any request arrives.  The paper's headline result is
that with staging + DRM the *simplest* scheme suffices:

* :mod:`repro.placement.even` — same number of copies for every video,
  rounding at random (popularity-oblivious).
* :mod:`repro.placement.predictive` — copies proportional to (perfectly
  known) popularity, at least one each.
* :mod:`repro.placement.partial` — "partial predictive": a few extra
  copies for the most popular titles only (Section 4.4).
* :mod:`repro.placement.bsr` — bandwidth-to-space-ratio greedy baseline
  after Dan & Sitaram [10], as a related-work comparator.

All schemes share the capacity-aware random server assignment in
:mod:`repro.placement.capacity`.
"""

from repro.placement.base import PlacementMap, PlacementPolicy, PlacementResult
from repro.placement.bsr import BSRPlacement
from repro.placement.capacity import assign_copies_randomly
from repro.placement.even import EvenPlacement
from repro.placement.partial import PartialPredictivePlacement
from repro.placement.predictive import PredictivePlacement
from repro.registry import Registry

#: Placement registry used by the simulation config layer; unknown keys
#: raise an actionable :class:`repro.registry.UnknownKeyError`.
PLACEMENTS: Registry[type] = Registry("placement")
PLACEMENTS.register(
    "even", EvenPlacement,
    help="same number of copies per video, rounding at random "
         "(popularity-oblivious; the paper's headline scheme)",
)
PLACEMENTS.register(
    "predictive", PredictivePlacement,
    help="copies proportional to perfectly known popularity",
)
PLACEMENTS.register(
    "partial", PartialPredictivePlacement,
    help="partial predictive: extra copies for the hottest titles only "
         "(Section 4.4)",
)
PLACEMENTS.register(
    "bsr", BSRPlacement,
    help="bandwidth-to-space-ratio greedy baseline (Dan & Sitaram)",
)

__all__ = [
    "BSRPlacement",
    "EvenPlacement",
    "PLACEMENTS",
    "PartialPredictivePlacement",
    "PlacementMap",
    "PlacementPolicy",
    "PlacementResult",
    "PredictivePlacement",
    "assign_copies_randomly",
]
