"""Generator-based processes and periodic timers on top of the engine.

Workload generators (Poisson arrivals, failure injectors, popularity
shifts) read most naturally as coroutines that alternate "wait some
time" / "do something".  :class:`Process` runs a generator that yields
non-negative delays; :class:`PeriodicTimer` is the fixed-interval
special case used by statistics samplers.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.sim.engine import Engine, SimulationError
from repro.sim.events import Event


class ProcessExit(Exception):
    """Throw inside a process generator to terminate it early."""


class Process:
    """Drive a generator of delays on an engine.

    The generator yields non-negative floats (seconds to sleep).  When it
    returns (StopIteration) the process completes; :meth:`stop` cancels
    the pending sleep and closes the generator.

    Example:
        >>> eng = Engine()
        >>> ticks = []
        >>> def gen():
        ...     for _ in range(3):
        ...         yield 1.0
        ...         ticks.append(eng.now)
        >>> p = Process(eng, gen())
        >>> eng.run()
        >>> ticks
        [1.0, 2.0, 3.0]
    """

    def __init__(
        self,
        engine: Engine,
        generator: Generator[float, None, None],
        name: str = "process",
    ) -> None:
        self.engine = engine
        self.name = name
        self._gen = generator
        self._pending: Optional[Event] = None
        self._done = False
        self._advance()

    @property
    def done(self) -> bool:
        """True once the generator has finished or been stopped."""
        return self._done

    def _advance(self) -> None:
        try:
            delay = next(self._gen)
        except StopIteration:
            self._done = True
            self._pending = None
            return
        if not isinstance(delay, (int, float)) or not delay >= 0.0:
            self._done = True
            raise SimulationError(
                f"process {self.name!r} yielded invalid delay {delay!r}"
            )
        self._pending = self.engine.schedule(
            float(delay), self._advance, kind=f"process:{self.name}"
        )

    def stop(self) -> None:
        """Cancel the pending wakeup and close the generator."""
        if self._done:
            return
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        close = getattr(self._gen, "close", None)
        if close is not None:  # plain iterators have no close()
            close()
        self._done = True


class PeriodicTimer:
    """Call a function every ``interval`` seconds until stopped.

    The first call happens at ``now + interval`` (or at ``first`` when
    given).  Used by the statistics sampler to take utilization
    snapshots.
    """

    def __init__(
        self,
        engine: Engine,
        interval: float,
        action: Callable[[], None],
        first: Optional[float] = None,
        name: str = "timer",
    ) -> None:
        if not interval > 0.0:
            raise SimulationError(f"interval must be positive, got {interval!r}")
        self.engine = engine
        self.interval = float(interval)
        self.action = action
        self.name = name
        self._stopped = False
        delay = self.interval if first is None else float(first) - engine.now
        self._pending: Optional[Event] = engine.schedule(
            delay, self._tick, kind=f"timer:{name}"
        )

    @property
    def stopped(self) -> bool:
        return self._stopped

    def _tick(self) -> None:
        if self._stopped:
            return
        self.action()
        if not self._stopped:  # action may stop us
            self._pending = self.engine.schedule(
                self.interval, self._tick, kind=f"timer:{self.name}"
            )

    def stop(self) -> None:
        """Stop ticking; idempotent."""
        self._stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
