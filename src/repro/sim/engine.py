"""The discrete-event simulation engine.

The engine owns the simulation clock and the event agenda (a binary
heap).  Design decisions that matter for the reproduction:

* **Determinism** — events at equal timestamps fire in scheduling order
  (FIFO via a sequence counter).  Combined with named RNG substreams
  (:mod:`repro.sim.rng`) this makes every experiment bit-reproducible
  from its seed.
* **Lazy cancellation** — the admission/EFTF machinery reschedules a
  request's "next event" every time its bandwidth allocation changes; a
  naive heap-removal would be O(n).  Cancelled events are skipped when
  popped instead.
* **Bounded runs** — ``run_until(t)`` advances the clock to exactly
  ``t`` even if the agenda empties earlier, so utilization denominators
  are well-defined.

The engine deliberately knows nothing about video servers; it is a
general substrate (and is tested as one).
"""

from __future__ import annotations

import heapq
import warnings
from time import perf_counter
from typing import Any, Callable, Iterator, List, Optional

from repro.sim.events import Event, EventState

#: Module-level binding: the hot loop tests ``event._state is _PENDING``
#: directly rather than through the ``Event.pending`` property (a
#: descriptor call per event is measurable at millions of events).
_PENDING = EventState.PENDING


class SimulationError(RuntimeError):
    """Raised for misuse of the engine (e.g. scheduling in the past)."""


class Engine:
    """Event loop with a monotonic clock.

    Example:
        >>> eng = Engine()
        >>> fired = []
        >>> _ = eng.schedule(5.0, lambda: fired.append(eng.now))
        >>> eng.run_until(10.0)
        >>> eng.now, fired
        (10.0, [5.0])
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[Event] = []
        self._seq = 0
        self._events_fired = 0
        self._events_cancelled = 0
        self._running = False
        #: Subscribers called as ``fn(event)`` just before each event
        #: fires — debugging, test instrumentation, and the obs tracer
        #: coexist here.  Manage via :meth:`add_trace`/:meth:`remove_trace`.
        self._trace_fns: List[Callable[[Event], None]] = []
        self._trace_shim: Optional[Callable[[Event], None]] = None
        #: Optional :class:`repro.obs.profiler.EventProfiler`; when set,
        #: each callback's wall-clock is accounted per event kind.  The
        #: off-path cost is a single ``is None`` check.
        self.profiler = None

    # ------------------------------------------------------------------
    # Clock & introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far."""
        return self._events_fired

    @property
    def events_cancelled(self) -> int:
        """Number of cancelled events skipped so far."""
        return self._events_cancelled

    @property
    def pending_count(self) -> int:
        """Number of events currently on the agenda (including cancelled
        handles not yet popped)."""
        return len(self._heap)

    # ------------------------------------------------------------------
    # Trace subscribers
    # ------------------------------------------------------------------
    def add_trace(self, fn: Callable[[Event], None]) -> None:
        """Subscribe *fn* to be called with each event before it fires.

        Multiple subscribers coexist and run in subscription order.
        """
        self._trace_fns.append(fn)

    def remove_trace(self, fn: Callable[[Event], None]) -> None:
        """Unsubscribe *fn* (ValueError if not subscribed)."""
        self._trace_fns.remove(fn)
        if fn is self._trace_shim:
            self._trace_shim = None

    @property
    def trace(self) -> Optional[Callable[[Event], None]]:
        """Deprecated single-subscriber view of the trace hooks.

        Assigning replaces only the previously *assigned* hook;
        subscribers added via :meth:`add_trace` are unaffected.  Use
        :meth:`add_trace`/:meth:`remove_trace` in new code.
        """
        return self._trace_shim

    @trace.setter
    def trace(self, fn: Optional[Callable[[Event], None]]) -> None:
        warnings.warn(
            "Engine.trace is deprecated; use add_trace()/remove_trace()",
            DeprecationWarning,
            stacklevel=2,
        )
        if self._trace_shim is not None:
            self._trace_fns.remove(self._trace_shim)
        self._trace_shim = fn
        if fn is not None:
            self._trace_fns.append(fn)

    def peek_time(self) -> Optional[float]:
        """Time of the next *live* event, or None if the agenda is empty.

        Pops and discards dead (cancelled) handles encountered on the way.
        """
        heap = self._heap
        while heap:
            head = heap[0]
            if head._state is _PENDING:
                return head.time
            heapq.heappop(heap)
            self._events_cancelled += 1
        return None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        payload: Any = None,
        kind: str = "",
    ) -> Event:
        """Schedule *callback* to run ``delay`` seconds from now.

        Args:
            delay: non-negative offset from the current clock.
            callback: zero-argument callable.
            payload: opaque annotation carried on the handle.
            kind: string tag for tracing.

        Returns:
            The :class:`Event` handle (cancellable).

        Raises:
            SimulationError: if *delay* is negative or NaN.
        """
        if not delay >= 0.0:  # also catches NaN
            raise SimulationError(f"cannot schedule in the past (delay={delay!r})")
        return self.schedule_at(self._now + delay, callback, payload, kind)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        payload: Any = None,
        kind: str = "",
    ) -> Event:
        """Schedule *callback* at absolute simulation *time* (>= now)."""
        if not time >= self._now:  # also catches NaN
            raise SimulationError(
                f"cannot schedule at t={time!r} before now={self._now!r}"
            )
        self._seq += 1
        event = Event(float(time), self._seq, callback, payload, kind)
        heapq.heappush(self._heap, event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next live event, advancing the clock to it.

        Returns:
            True if an event fired, False if the agenda was empty.
        """
        heap = self._heap
        pop = heapq.heappop
        while heap:
            event = pop(heap)
            if event._state is not _PENDING:
                self._events_cancelled += 1
                continue
            self._now = event.time
            if self._trace_fns:
                for fn in self._trace_fns:
                    fn(event)
            self._events_fired += 1
            profiler = self.profiler
            if profiler is None:
                event._fire()
            else:
                t0 = perf_counter()
                event._fire()
                profiler.record(event.kind, perf_counter() - t0)
            return True
        return False

    def run_until(self, until: float) -> None:
        """Run events with ``time <= until`` and leave the clock at *until*.

        Events scheduled exactly at *until* do fire.  The clock never
        moves backwards: if *until* is in the past this raises.

        This is the simulator's outermost hot loop, so the peek/step
        pair is fused into a single heap pass: each head is examined
        exactly once — dead handles are popped and counted, the first
        live head beyond *until* ends the run while staying on the
        agenda, and everything else fires.  The cancellation accounting
        is identical to interleaved :meth:`peek_time`/:meth:`step`
        calls (each dead handle counted exactly once).
        """
        if not until >= self._now:
            raise SimulationError(
                f"run_until({until!r}) is before now={self._now!r}"
            )
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        timer = perf_counter
        try:
            while heap:
                event = heap[0]
                if event._state is not _PENDING:
                    pop(heap)
                    self._events_cancelled += 1
                    continue
                if event.time > until:
                    break
                pop(heap)
                self._now = event.time
                trace_fns = self._trace_fns
                if trace_fns:
                    for fn in trace_fns:
                        fn(event)
                self._events_fired += 1
                profiler = self.profiler
                if profiler is None:
                    event._fire()
                else:
                    t0 = timer()
                    event._fire()
                    profiler.record(event.kind, timer() - t0)
            self._now = float(until)
        finally:
            self._running = False

    def run(self) -> None:
        """Run until the agenda is exhausted."""
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        try:
            while self.step():
                pass
        finally:
            self._running = False

    # ------------------------------------------------------------------
    # Debug helpers
    # ------------------------------------------------------------------
    def iter_pending(self) -> Iterator[Event]:
        """Yield pending events in an unspecified order (debug only)."""
        return (e for e in self._heap if e.pending)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Engine now={self._now:.6g} pending={self.pending_count} "
            f"fired={self._events_fired}>"
        )
