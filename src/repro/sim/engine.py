"""The discrete-event simulation engine.

The engine owns the simulation clock and delegates the event agenda to
a pluggable :class:`~repro.sim.scheduler.EventScheduler` (a binary heap
by default; a calendar queue for very deep agendas — select via
``Engine(scheduler=...)`` or the ``REPRO_SCHEDULER`` environment
variable).  Design decisions that matter for the reproduction:

* **Determinism** — events at equal timestamps fire in scheduling order
  (FIFO via a sequence counter).  Agenda entries are ``(time, seq,
  event)`` tuples, so every ordering comparison runs in C and every
  scheduler implementation pops the identical ``(time, seq)`` sequence
  (enforced by a hypothesis property).  Combined with named RNG
  substreams (:mod:`repro.sim.rng`) this makes every experiment
  bit-reproducible from its seed.
* **Lazy cancellation** — the admission/EFTF machinery reschedules a
  request's "next event" every time its bandwidth allocation changes; a
  naive in-structure removal would be O(n).  Cancelled events are
  skipped (and counted) when popped instead.
* **Bounded runs** — ``run_until(t)`` advances the clock to exactly
  ``t`` even if the agenda empties earlier, so utilization denominators
  are well-defined.

Hot-path notes: ``run_until`` dispatches to the scheduler's
:meth:`~repro.sim.scheduler.EventScheduler.drain` loop (specialized per
structure — see that module's docstring for why), and ``schedule``
constructs :class:`Event` handles without a Python-level ``__init__``
call.  Engine state accessed per event lives in ``__slots__``.  The
``_trace_fns`` list object is never reassigned after construction —
drain loops bind it once and rely on mutations (``add_trace`` /
``remove_trace``) staying visible mid-run.

The engine deliberately knows nothing about video servers; it is a
general substrate (and is tested as one).
"""

from __future__ import annotations

import warnings
from heapq import heappush as _heappush
from time import perf_counter
from typing import Any, Callable, Iterator, List, Optional

from repro.sim.events import Event, EventState
from repro.sim.scheduler import (
    EventScheduler,
    HeapScheduler,
    resolve_scheduler,
)

#: Module-level bindings: the hot paths test ``event._state is
#: _PENDING`` directly rather than through the ``Event.pending``
#: property (a descriptor call per event is measurable at millions of
#: events), and build handles via ``object.__new__`` (skipping the
#: ``Event.__init__`` frame, also measurable).
_PENDING = EventState.PENDING
_new_event = object.__new__


class SimulationError(RuntimeError):
    """Raised for misuse of the engine (e.g. scheduling in the past)."""


class Engine:
    """Event loop with a monotonic clock.

    Args:
        start_time: initial clock value.
        scheduler: agenda implementation — an
            :class:`~repro.sim.scheduler.EventScheduler` instance, a
            registry key (``"heap"``, ``"calendar"``), or None to use
            ``REPRO_SCHEDULER`` / the heap default.

    Example:
        >>> eng = Engine()
        >>> fired = []
        >>> _ = eng.schedule(5.0, lambda: fired.append(eng.now))
        >>> eng.run_until(10.0)
        >>> eng.now, fired
        (10.0, [5.0])
    """

    __slots__ = (
        "_now", "_sched", "_heap", "_seq", "_events_fired",
        "_events_cancelled", "_running", "_trace_fns", "_trace_shim",
        "profiler",
    )

    def __init__(self, start_time: float = 0.0, scheduler=None) -> None:
        self._now = float(start_time)
        self._sched: EventScheduler = resolve_scheduler(scheduler)
        #: Fast-path seam: when the agenda is a plain HeapScheduler,
        #: ``schedule``/``schedule_at`` push straight onto its list with
        #: the C ``heappush`` instead of a Python method call.  Any
        #: subclass (or other scheduler) goes through ``push()``.
        self._heap = (
            self._sched._heap if type(self._sched) is HeapScheduler else None
        )
        self._seq = 0
        self._events_fired = 0
        self._events_cancelled = 0
        self._running = False
        #: Subscribers called as ``fn(event)`` just before each event
        #: fires — debugging, test instrumentation, and the obs tracer
        #: coexist here.  Manage via :meth:`add_trace`/:meth:`remove_trace`.
        #: The list object is never replaced (drain loops bind it once).
        self._trace_fns: List[Callable[[Event], None]] = []
        self._trace_shim: Optional[Callable[[Event], None]] = None
        #: Optional :class:`repro.obs.profiler.EventProfiler`; when set,
        #: each callback's wall-clock is accounted per event kind.  The
        #: off-path cost is a single ``is None`` check.
        self.profiler = None

    # ------------------------------------------------------------------
    # Clock & introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def scheduler(self) -> EventScheduler:
        """The agenda implementation in use."""
        return self._sched

    @property
    def events_fired(self) -> int:
        """Number of events executed so far."""
        return self._events_fired

    @property
    def events_cancelled(self) -> int:
        """Number of cancelled events skipped so far."""
        return self._events_cancelled

    @property
    def pending_count(self) -> int:
        """Number of events currently on the agenda (including cancelled
        handles not yet popped)."""
        return len(self._sched)

    # ------------------------------------------------------------------
    # Trace subscribers
    # ------------------------------------------------------------------
    def add_trace(self, fn: Callable[[Event], None]) -> None:
        """Subscribe *fn* to be called with each event before it fires.

        Multiple subscribers coexist and run in subscription order.
        """
        self._trace_fns.append(fn)

    def remove_trace(self, fn: Callable[[Event], None]) -> None:
        """Unsubscribe *fn* (ValueError if not subscribed)."""
        self._trace_fns.remove(fn)
        if fn is self._trace_shim:
            self._trace_shim = None

    @property
    def trace(self) -> Optional[Callable[[Event], None]]:
        """Deprecated single-subscriber view of the trace hooks.

        Assigning replaces only the previously *assigned* hook;
        subscribers added via :meth:`add_trace` are unaffected.  Use
        :meth:`add_trace`/:meth:`remove_trace` in new code.
        """
        return self._trace_shim

    @trace.setter
    def trace(self, fn: Optional[Callable[[Event], None]]) -> None:
        warnings.warn(
            "Engine.trace is deprecated; use add_trace()/remove_trace()",
            DeprecationWarning,
            stacklevel=2,
        )
        if self._trace_shim is not None:
            self._trace_fns.remove(self._trace_shim)
        self._trace_shim = fn
        if fn is not None:
            self._trace_fns.append(fn)

    def peek_time(self) -> Optional[float]:
        """Time of the next *live* event, or None if the agenda is empty.

        Pops and discards dead (cancelled) handles encountered on the way.
        """
        sched = self._sched
        while True:
            entry = sched.peek()
            if entry is None:
                return None
            if entry[2]._state is _PENDING:
                return entry[0]
            sched.pop()
            self._events_cancelled += 1

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        payload: Any = None,
        kind: str = "",
    ) -> Event:
        """Schedule *callback* to run ``delay`` seconds from now.

        Args:
            delay: non-negative offset from the current clock.
            callback: zero-argument callable.
            payload: opaque annotation carried on the handle.
            kind: string tag for tracing.

        Returns:
            The :class:`Event` handle (cancellable).

        Raises:
            SimulationError: if *delay* is negative or NaN.
        """
        if not delay >= 0.0:  # also catches NaN
            raise SimulationError(f"cannot schedule in the past (delay={delay!r})")
        # Inlined schedule_at: this is called once per event fired, so
        # the extra frame and the Event.__init__ frame are both skipped.
        time = float(self._now + delay)
        self._seq = seq = self._seq + 1
        event = _new_event(Event)
        event.time = time
        event.seq = seq
        event.callback = callback
        event.payload = payload
        event.kind = kind
        event._state = _PENDING
        heap = self._heap
        if heap is not None:
            _heappush(heap, (time, seq, event))
        else:
            self._sched.push((time, seq, event))
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        payload: Any = None,
        kind: str = "",
    ) -> Event:
        """Schedule *callback* at absolute simulation *time* (>= now)."""
        if not time >= self._now:  # also catches NaN
            raise SimulationError(
                f"cannot schedule at t={time!r} before now={self._now!r}"
            )
        time = float(time)
        self._seq = seq = self._seq + 1
        event = _new_event(Event)
        event.time = time
        event.seq = seq
        event.callback = callback
        event.payload = payload
        event.kind = kind
        event._state = _PENDING
        heap = self._heap
        if heap is not None:
            _heappush(heap, (time, seq, event))
        else:
            self._sched.push((time, seq, event))
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next live event, advancing the clock to it.

        Returns:
            True if an event fired, False if the agenda was empty.
        """
        sched = self._sched
        while True:
            entry = sched.pop()
            if entry is None:
                return False
            event = entry[2]
            if event._state is not _PENDING:
                self._events_cancelled += 1
                continue
            self._now = entry[0]
            if self._trace_fns:
                for fn in self._trace_fns:
                    fn(event)
            self._events_fired += 1
            profiler = self.profiler
            if profiler is None:
                event._fire()
            else:
                t0 = perf_counter()
                event._fire()
                profiler.record(event.kind, perf_counter() - t0)
            return True

    def run_until(self, until: float) -> None:
        """Run events with ``time <= until`` and leave the clock at *until*.

        Events scheduled exactly at *until* do fire.  The clock never
        moves backwards: if *until* is in the past this raises.

        This is the simulator's outermost hot loop; the actual pass is
        the scheduler's :meth:`~repro.sim.scheduler.EventScheduler.drain`,
        specialized per agenda structure.  The contract (identical for
        every scheduler, enforced by tests): each agenda head is
        examined exactly once — dead handles are popped and counted,
        the first live head beyond *until* ends the run while staying
        on the agenda, and everything else fires.
        """
        if not until >= self._now:
            raise SimulationError(
                f"run_until({until!r}) is before now={self._now!r}"
            )
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        try:
            self._sched.drain(self, until)
            self._now = float(until)
        finally:
            self._running = False

    def run(self) -> None:
        """Run until the agenda is exhausted."""
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        try:
            while self.step():
                pass
        finally:
            self._running = False

    # ------------------------------------------------------------------
    # Debug helpers
    # ------------------------------------------------------------------
    def iter_pending(self) -> Iterator[Event]:
        """Yield pending events in an unspecified order (debug only)."""
        return (
            entry[2] for entry in self._sched.entries() if entry[2].pending
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Engine now={self._now:.6g} pending={self.pending_count} "
            f"fired={self._events_fired}>"
        )
