"""Named, independently-seeded random substreams.

Reproducible experiments need more than a single seed: if the arrival
process and the placement shuffle shared one generator, changing the
number of placement draws would perturb every subsequent arrival.  Each
component therefore gets its own :class:`numpy.random.Generator` derived
from a root :class:`numpy.random.SeedSequence` and a stable string key,
so streams are statistically independent *and* stable across unrelated
code changes.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RandomStreams:
    """A factory of named, decoupled random generators.

    Example:
        >>> streams = RandomStreams(seed=42)
        >>> a1 = streams.get("arrivals").random()
        >>> streams2 = RandomStreams(seed=42)
        >>> _ = streams2.get("placement").random()  # unrelated draw
        >>> a2 = streams2.get("arrivals").random()
        >>> a1 == a2
        True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._root = np.random.SeedSequence(self.seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @staticmethod
    def _key_to_int(key: str) -> int:
        """Map a stream name to a stable 32-bit integer (crc32)."""
        return zlib.crc32(key.encode("utf-8")) & 0xFFFFFFFF

    def get(self, key: str) -> np.random.Generator:
        """Return the generator for *key*, creating it on first use.

        The same (seed, key) pair always yields an identical stream,
        independent of access order and of other keys.
        """
        gen = self._streams.get(key)
        if gen is None:
            child = np.random.SeedSequence(
                entropy=self.seed, spawn_key=(self._key_to_int(key),)
            )
            gen = np.random.default_rng(child)
            self._streams[key] = gen
        return gen

    def child(self, key: str) -> "RandomStreams":
        """Derive a whole sub-factory (e.g. one per trial).

        ``RandomStreams(s).child(k)`` is deterministic in (s, k) and its
        streams are independent of the parent's.
        """
        derived_seed = (self.seed * 1_000_003 + self._key_to_int(key)) % (2**63)
        return RandomStreams(seed=derived_seed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RandomStreams seed={self.seed} streams={sorted(self._streams)}>"
