"""Pluggable event schedulers: the engine's agenda data structure.

The agenda is the innermost data structure of the whole simulator —
every event goes through one ``push`` and one ``pop`` — so its entries
are plain ``(time, seq, event)`` tuples.  Tuple entries mean every
ordering comparison (heap sift, bucket sort) runs entirely in C on the
``(time, seq)`` prefix: ``seq`` is unique per engine, so the third
element is never compared and the order is the engine's deterministic
``(time, FIFO)`` contract, identical across scheduler implementations
(enforced by a hypothesis property in ``tests/test_scheduler.py``).

Two implementations:

* :class:`HeapScheduler` — a binary heap (``heapq``).  O(log n)
  push/pop with C-speed comparisons; the fastest structure at the
  shallow agenda depths these simulations produce (one boundary event
  per server plus a handful of arrival/fault timers), and the default.
* :class:`CalendarScheduler` — a calendar queue (bucketed by time,
  lazily sorted per bucket).  O(1) push and amortized O(1) pop
  independent of depth; overtakes the heap once the agenda holds
  ~10k+ pending events (see ``benchmarks/bench_scheduler.py`` for the
  measured crossover on the committed hardware).

**Why each scheduler owns its drain loop.**  ``Engine.run_until`` is
the simulator's outermost hot loop; funnelling it through a generic
``push``/``pop`` method interface would cost two Python method calls
per event — roughly a third of the engine's per-event budget.  Instead
the narrow interface (push/pop/peek/…) serves the cold paths
(``schedule``, ``step``, ``peek_time``), and each scheduler implements
:meth:`EventScheduler.drain` — the fused run-until loop — inline
against its own structure.  The two loops must stay behaviourally
identical; the equivalence is pinned by tests (same pop order, same
cancellation accounting, byte-identical fig4 traces).

Selection: ``Engine(scheduler=...)`` takes a registry key or an
instance; the ``REPRO_SCHEDULER`` environment variable changes the
default (``heap``).
"""

from __future__ import annotations

import abc
import os
from heapq import heapify, heappop, heappush
from time import perf_counter
from typing import Iterator, List, Optional, Tuple

from repro.registry import Registry
from repro.sim.events import Event, EventState

#: Module-level binding shared with the engine: the drain loops test
#: ``event._state is _PENDING`` directly (a descriptor call per event
#: is measurable at millions of events).
_PENDING = EventState.PENDING
_FIRED = EventState.FIRED

#: An agenda entry.  ``seq`` is unique, so tuple comparison never
#: reaches the (uncomparable-by-design) event object.
Entry = Tuple[float, int, Event]


class EventScheduler(abc.ABC):
    """Priority structure over ``(time, seq, event)`` entries.

    Entries are popped in ascending ``(time, seq)`` order — cancelled
    events included (the caller filters and counts them; lazy
    cancellation is an engine-level contract, not a structural one).
    """

    name: str = "abstract"

    @abc.abstractmethod
    def push(self, entry: Entry) -> None:
        """Add an entry."""

    @abc.abstractmethod
    def pop(self) -> Optional[Entry]:
        """Remove and return the minimum entry, or None when empty."""

    @abc.abstractmethod
    def peek(self) -> Optional[Entry]:
        """Return the minimum entry without removing it."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of entries (cancelled handles included)."""

    @abc.abstractmethod
    def entries(self) -> Iterator[Entry]:
        """Iterate entries in an unspecified order (debug only)."""

    @abc.abstractmethod
    def drain(self, engine, until: float) -> None:
        """Fire every event with ``time <= until`` in agenda order.

        The specialized hot loop: implementations must replicate the
        engine contract exactly — dead handles at the head are popped
        and counted (even beyond *until*), ``engine._now`` tracks each
        fired event, trace subscribers and the profiler are honoured,
        and the first live entry beyond *until* stays on the agenda.
        Counter updates may be batched locally but must be written back
        to the engine even when a callback raises.
        """


class HeapScheduler(EventScheduler):
    """Binary-heap agenda (``heapq`` on tuple entries).

    The default: at the shallow depths these simulations produce the
    C-compared heap beats every bucketed structure (see
    ``benchmarks/bench_scheduler.py``).
    """

    name = "heap"

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[Entry] = []

    def push(self, entry: Entry) -> None:
        heappush(self._heap, entry)

    def pop(self) -> Optional[Entry]:
        if not self._heap:
            return None
        return heappop(self._heap)

    def peek(self) -> Optional[Entry]:
        if not self._heap:
            return None
        return self._heap[0]

    def __len__(self) -> int:
        return len(self._heap)

    def entries(self) -> Iterator[Entry]:
        return iter(self._heap)

    def drain(self, engine, until: float) -> None:
        # The engine's hottest loop: pop-first (no separate peek), one
        # push-back per run_until call for the single overshoot entry,
        # counters batched in locals and written back in ``finally``.
        heap = self._heap
        pop = heappop
        push = heappush
        trace_fns = engine._trace_fns  # list identity is stable; see Engine
        fired = engine._events_fired
        cancelled = engine._events_cancelled
        timer = perf_counter
        try:
            while heap:
                entry = pop(heap)
                event = entry[2]
                if event._state is not _PENDING:
                    cancelled += 1
                    continue
                t = entry[0]
                if t > until:
                    push(heap, entry)  # stays on the agenda
                    break
                engine._now = t
                if trace_fns:
                    engine._events_fired = fired
                    engine._events_cancelled = cancelled
                    for fn in trace_fns:
                        fn(event)
                fired += 1
                event._state = _FIRED
                profiler = engine.profiler
                if profiler is None:
                    event.callback()
                else:
                    t0 = timer()
                    event.callback()
                    profiler.record(event.kind, timer() - t0)
        finally:
            engine._events_fired = fired
            engine._events_cancelled = cancelled


class CalendarScheduler(EventScheduler):
    """Calendar queue: buckets of fixed time width, lazily sorted.

    An entry at time *t* lands in bucket ``int(t / width) % n_buckets``
    with a plain ``list.append`` — no comparisons at push.  Pop walks
    the current *epoch* (``int(now / width)``): the active bucket is
    sorted once (C timsort, cheap on the nearly-FIFO runs pushes
    produce) and consumed through a cursor; entries that wrapped in
    from a later epoch are left in place and re-examined when their
    epoch arrives.  Push and pop are O(1) amortized regardless of
    depth, which is where this structure earns its keep: past roughly
    10k pending events the heap's O(log n) sift overtakes it (measured
    crossover in ``benchmarks/bench_scheduler.py``).

    Determinism: within a bucket the sort key is the entry tuple
    itself, i.e. ``(time, seq)`` — exactly the heap's order, so the two
    schedulers pop identical sequences (hypothesis-tested).

    Two tuning knobs, both deterministic:

    * ``bucket_width`` — seconds per bucket; ideally the typical gap
      between successive events (the transmission workload's boundary
      events cluster at sub-second to tens-of-seconds gaps, so the
      default of 1.0 keeps active buckets small).
    * ``n_buckets`` — ring size (rounded up to a power of two).  The
      ring resizes (doubles) when the population exceeds four entries
      per bucket, so collisions from far-future wrap-around stay rare.
    """

    name = "calendar"

    __slots__ = (
        "_buckets", "_mask", "_width", "_inv_width", "_epoch", "_cursor",
        "_count", "_sorted",
    )

    def __init__(self, bucket_width: float = 1.0, n_buckets: int = 256):
        if not bucket_width > 0.0:
            raise ValueError(
                f"bucket_width must be positive, got {bucket_width!r}"
            )
        n = 1
        while n < n_buckets:
            n <<= 1
        self._buckets: List[List[Entry]] = [[] for _ in range(n)]
        self._mask = n - 1
        self._width = float(bucket_width)
        self._inv_width = 1.0 / float(bucket_width)
        #: Epoch currently being drained = ``int(t * inv_width)`` of the
        #: last pop (pops never go backwards in time).
        self._epoch = 0
        #: Consumption cursor into the sorted active bucket.
        self._cursor = 0
        self._count = 0
        #: True once the active bucket is sorted and cursor-consumable.
        self._sorted = False

    # -- structure maintenance ----------------------------------------
    def _grow(self) -> None:
        """Double the ring (same width), re-slotting every entry."""
        old: List[Entry] = []
        for b in self._buckets:
            old.extend(b)
        n = (self._mask + 1) << 1
        self._buckets = [[] for _ in range(n)]
        self._mask = n - 1
        self._cursor = 0
        self._sorted = False
        inv = self._inv_width
        buckets = self._buckets
        mask = self._mask
        for entry in old:
            buckets[int(entry[0] * inv) & mask].append(entry)

    def push(self, entry: Entry) -> None:
        i = int(entry[0] * self._inv_width)
        if i < self._epoch:
            # Landing before the active epoch.  Legal: ``peek`` walks
            # the epoch forward to find the minimum without firing
            # anything, so the engine may still schedule below the
            # peeked time (its floor is ``now``, which only pops
            # advance).  Flush the active bucket's consumed prefix and
            # rewind so the new minimum is the next pop.
            if self._sorted and self._cursor:
                b = self._buckets[self._epoch & self._mask]
                del b[: self._cursor]
            self._cursor = 0
            self._sorted = False
            self._epoch = i
        elif self._sorted and (i & self._mask) == (self._epoch & self._mask):
            # Landing in the active bucket: its sorted prefix is stale.
            b = self._buckets[i & self._mask]
            if self._cursor:
                del b[: self._cursor]
                self._cursor = 0
            self._sorted = False
        self._buckets[i & self._mask].append(entry)
        self._count += 1
        if self._count > 4 * (self._mask + 1):
            self._grow()

    def _advance(self) -> Optional[Entry]:
        """Find the minimum entry, advancing the epoch cursor.

        Returns the entry (leaving it consumable at the cursor) or None
        when the queue is empty.  Walking epoch-by-epoch is O(gap /
        width); after a full fruitless lap the epoch is recomputed
        directly from the minimum entry (handles sparse far-future
        agendas without spinning).
        """
        if not self._count:
            return None
        buckets = self._buckets
        mask = self._mask
        width = self._width
        epoch = self._epoch
        laps = 0
        while True:
            b = buckets[epoch & mask]
            if b:
                if not self._sorted or epoch != self._epoch:
                    b.sort()
                    self._cursor = 0
                    self._sorted = True
                    self._epoch = epoch
                if self._cursor < len(b):
                    entry = b[self._cursor]
                    # Wrapped entries from a later epoch sort after
                    # every current-epoch entry; if the head is one,
                    # this epoch is exhausted.
                    if entry[0] < (epoch + 1) * width:
                        return entry
                # Epoch exhausted: drop its consumed prefix before
                # moving on, so leftover (wrapped) entries are not
                # re-counted behind a stale cursor next lap.
                if self._cursor:
                    del b[: self._cursor]
                    self._cursor = 0
            epoch += 1
            self._sorted = False
            laps += 1
            if laps > mask:
                # Sparse agenda: jump straight to the minimum epoch.
                inv = self._inv_width
                epoch = min(
                    int(e[0] * inv)
                    for bucket in buckets for e in bucket
                )
                laps = -mask  # the jump target is guaranteed non-empty

    def pop(self) -> Optional[Entry]:
        entry = self._advance()
        if entry is None:
            return None
        self._cursor += 1
        self._count -= 1
        b = self._buckets[self._epoch & self._mask]
        if self._cursor >= len(b):
            b.clear()
            self._cursor = 0
        return entry

    def peek(self) -> Optional[Entry]:
        return self._advance()

    def __len__(self) -> int:
        return self._count

    def entries(self) -> Iterator[Entry]:
        for i, b in enumerate(self._buckets):
            start = self._cursor if (
                self._sorted and i == (self._epoch & self._mask)
            ) else 0
            for entry in b[start:]:
                yield entry

    def drain(self, engine, until: float) -> None:
        # Same contract as HeapScheduler.drain; the pop is inlined
        # against the bucket/cursor structure so the common case (next
        # event in the already-sorted active bucket) touches no method
        # calls.  Cold steps (epoch advance, resort) go through
        # _advance().
        trace_fns = engine._trace_fns
        fired = engine._events_fired
        cancelled = engine._events_cancelled
        timer = perf_counter
        try:
            while self._count:
                if self._sorted:
                    b = self._buckets[self._epoch & self._mask]
                    cursor = self._cursor
                    if cursor < len(b):
                        entry = b[cursor]
                        if entry[0] < (self._epoch + 1) * self._width:
                            self._cursor = cursor + 1
                            self._count -= 1
                            if self._cursor >= len(b):
                                b.clear()
                                self._cursor = 0
                            event = entry[2]
                            if event._state is not _PENDING:
                                cancelled += 1
                                continue
                            t = entry[0]
                            if t > until:
                                # Push back; stays on the agenda.
                                self.push(entry)
                                break
                            engine._now = t
                            if trace_fns:
                                engine._events_fired = fired
                                engine._events_cancelled = cancelled
                                for fn in trace_fns:
                                    fn(event)
                            fired += 1
                            event._state = _FIRED
                            profiler = engine.profiler
                            if profiler is None:
                                event.callback()
                            else:
                                t0 = timer()
                                event.callback()
                                profiler.record(event.kind, timer() - t0)
                            continue
                entry = self._advance()
                if entry is None:
                    break
                if entry[0] > until and entry[2]._state is _PENDING:
                    break  # live overshoot: leave in place
                # Dead handle (count it) or consumable head: take the
                # slow pop and loop back into the fast path.
                self.pop()
                event = entry[2]
                if event._state is not _PENDING:
                    cancelled += 1
                    continue
                t = entry[0]
                engine._now = t
                if trace_fns:
                    engine._events_fired = fired
                    engine._events_cancelled = cancelled
                    for fn in trace_fns:
                        fn(event)
                fired += 1
                event._state = _FIRED
                profiler = engine.profiler
                if profiler is None:
                    event.callback()
                else:
                    t0 = timer()
                    event.callback()
                    profiler.record(event.kind, timer() - t0)
        finally:
            engine._events_fired = fired
            engine._events_cancelled = cancelled


#: Scheduler registry; unknown keys raise an actionable
#: :class:`repro.registry.UnknownKeyError` naming the valid choices.
SCHEDULERS: Registry[type] = Registry("event-scheduler")
SCHEDULERS.register(
    "heap", HeapScheduler,
    help="binary heap (heapq): fastest at the shallow agenda depths "
         "typical of these simulations (default)",
)
SCHEDULERS.register(
    "calendar", CalendarScheduler,
    help="calendar queue (time buckets, lazily sorted): O(1) push/pop "
         "independent of depth; wins past ~10k pending events",
)


def resolve_scheduler(spec=None) -> EventScheduler:
    """Build the engine's scheduler from *spec*.

    Accepts an :class:`EventScheduler` instance (used as-is), a registry
    key, or None — which falls back to the ``REPRO_SCHEDULER``
    environment variable and then to ``"heap"``.
    """
    if isinstance(spec, EventScheduler):
        return spec
    if spec is None:
        spec = os.environ.get("REPRO_SCHEDULER") or "heap"
    return SCHEDULERS.get(spec)()


def heapify_entries(entries: List[Entry]) -> List[Entry]:
    """Helper for benchmarks/tests: heapify a raw entry list in place."""
    heapify(entries)
    return entries
