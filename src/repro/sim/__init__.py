"""Discrete-event simulation kernel.

A small, deterministic, SimPy-class engine built from scratch (the offline
environment has no SimPy).  It provides:

* :class:`~repro.sim.engine.Engine` — the event loop: a pluggable agenda
  with stable FIFO tie-breaking at equal timestamps, O(1) lazy
  cancellation, and bounded runs (``run_until``).
* :mod:`~repro.sim.scheduler` — the agenda implementations behind the
  engine: a binary heap (default) and a calendar queue for very deep
  agendas, registered in :data:`~repro.sim.scheduler.SCHEDULERS` and
  selectable via ``Engine(scheduler=...)`` or ``REPRO_SCHEDULER``.
  Every implementation pops the identical ``(time, seq)`` sequence
  (hypothesis-tested), so the choice never affects results.
* :class:`~repro.sim.events.Event` — a scheduled callback handle.
* :mod:`~repro.sim.process` — generator-based processes and periodic
  timers layered on the engine, used by workload generators.
* :mod:`~repro.sim.rng` — named, independently-seeded random substreams so
  that experiments are reproducible and components are decoupled.
"""

from repro.sim.engine import Engine, SimulationError
from repro.sim.events import Event, EventState
from repro.sim.process import PeriodicTimer, Process, ProcessExit
from repro.sim.rng import RandomStreams
from repro.sim.scheduler import (
    SCHEDULERS,
    CalendarScheduler,
    EventScheduler,
    HeapScheduler,
)

__all__ = [
    "CalendarScheduler",
    "Engine",
    "Event",
    "EventScheduler",
    "EventState",
    "HeapScheduler",
    "PeriodicTimer",
    "Process",
    "ProcessExit",
    "RandomStreams",
    "SCHEDULERS",
    "SimulationError",
]
