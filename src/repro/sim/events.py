"""Event handles for the simulation engine.

An :class:`Event` is a single scheduled callback.  Events are ordered by
``(time, seq)`` where ``seq`` is a monotonically increasing sequence
number assigned at scheduling time, giving deterministic FIFO ordering
for events scheduled at the same timestamp — essential for reproducible
simulations.

Cancellation is *lazy*: cancelling marks the handle and the engine skips
it when popped, so cancel is O(1) and the heap never needs re-sifting.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Optional


class EventState(enum.Enum):
    """Lifecycle of an event handle."""

    PENDING = "pending"      #: scheduled, not yet fired
    FIRED = "fired"          #: callback has run
    CANCELLED = "cancelled"  #: cancelled before firing


class Event:
    """A scheduled callback.

    Instances are created by :meth:`repro.sim.engine.Engine.schedule`;
    user code normally only keeps them around to call :meth:`cancel`.

    Attributes:
        time: absolute simulation time at which the event fires.
        seq: engine-assigned tie-break sequence number.
        callback: zero-argument callable invoked at ``time`` (payload is
            bound by the scheduler via ``functools.partial`` or a closure).
        payload: optional opaque annotation, useful for tracing.
        kind: optional string tag for tracing/statistics.
    """

    __slots__ = ("time", "seq", "callback", "payload", "kind", "_state")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        payload: Any = None,
        kind: str = "",
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.payload = payload
        self.kind = kind
        self._state = EventState.PENDING

    @property
    def state(self) -> EventState:
        return self._state

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and not yet fired/cancelled."""
        return self._state is EventState.PENDING

    def cancel(self) -> bool:
        """Cancel the event if still pending.

        Returns:
            True if the event was pending and is now cancelled, False if
            it had already fired or been cancelled (idempotent).
        """
        if self._state is EventState.PENDING:
            self._state = EventState.CANCELLED
            return True
        return False

    def _fire(self) -> None:
        """Engine-internal: run the callback exactly once."""
        self._state = EventState.FIRED
        self.callback()

    def __lt__(self, other: "Event") -> bool:
        # Tuple-free compare: heapq calls this O(log n) times per push
        # and pop, so the two-tuple allocation was measurable.  Times
        # are never NaN (the engine rejects NaN at scheduling), so this
        # is exactly ``(time, seq) < (other.time, other.seq)``.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tag = f" kind={self.kind!r}" if self.kind else ""
        return f"<Event t={self.time:.6g} seq={self.seq} {self._state.value}{tag}>"


# Convenience alias used in type hints.
OptionalEvent = Optional[Event]
