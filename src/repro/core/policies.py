"""The Figure 6 policy matrix: P1–P8.

Each policy is a (placement, migration, staging) triple::

    Policy  Allocation   Migration  Client Staging
    P1      Even         No Migr    0% Buffer
    P2      Even         No Migr    20% Buffer
    P3      Even         Migr       0% Buffer
    P4      Even         Migr       20% Buffer
    P5      Predictive   No Migr    0% Buffer
    P6      Predictive   No Migr    20% Buffer
    P7      Predictive   Migr       0% Buffer
    P8      Predictive   Migr       20% Buffer

The paper's headline comparison (Figure 7): P4 ≈ P8 for θ ∈ [0, 1] —
i.e. an oblivious placement with staging + DRM matches a clairvoyant
one — while for θ < 0 the predictive policies win.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.migration import MigrationPolicy
from repro.registry import Registry


@dataclass(frozen=True)
class Policy:
    """One cell of the Figure 6 matrix.

    Attributes:
        name: e.g. ``"P4"``.
        placement: placement registry key (``"even"``/``"predictive"``…).
        migration: whether DRM is enabled (paper default settings:
            chain length 1, one hop per request).
        staging_fraction: client staging buffer as a fraction of the
            average video size.
    """

    name: str
    placement: str
    migration: bool
    staging_fraction: float

    def migration_policy(self) -> MigrationPolicy:
        """The concrete DRM configuration this policy implies."""
        if self.migration:
            return MigrationPolicy.paper_default()
        return MigrationPolicy.disabled()

    def describe(self) -> str:
        """Figure 6-style row text."""
        migr = "Migr" if self.migration else "No Migr"
        return (
            f"{self.name}: {self.placement.capitalize():<11} {migr:<8} "
            f"{self.staging_fraction:.0%} Buffer"
        )


#: Figure 6 verbatim, in matrix order (iteration preserves it); unknown
#: policy names raise an actionable error listing P1–P8.
PAPER_POLICIES: Registry[Policy] = Registry("policy")
for _name, _placement, _migration, _staging in (
    ("P1", "even", False, 0.0),
    ("P2", "even", False, 0.2),
    ("P3", "even", True, 0.0),
    ("P4", "even", True, 0.2),
    ("P5", "predictive", False, 0.0),
    ("P6", "predictive", False, 0.2),
    ("P7", "predictive", True, 0.0),
    ("P8", "predictive", True, 0.2),
):
    _policy = Policy(
        name=_name,
        placement=_placement,
        migration=_migration,
        staging_fraction=_staging,
    )
    PAPER_POLICIES.register(_name, _policy, help=_policy.describe())
del _name, _placement, _migration, _staging, _policy
