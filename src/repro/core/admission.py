"""Admission control: least-loaded assignment with a DRM fallback.

Section 3.2: "The request assignment algorithm assigns each newly
arrived request to the server which has a copy of the requested video
and has the fewest current requests.  A very limited amount of request
migration is attempted if all servers which hold a copy of the
requested video are full.  If this fails, then the request is not
accepted."
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from repro.analysis.metrics import SimulationMetrics
from repro.cluster.request import Request
from repro.cluster.server import DataServer
from repro.core.migration import (
    MigrationPolicy,
    execute_chain,
    find_migration_chain,
)
from repro.core.transmission import TransmissionManager
from repro.obs.records import TraceKind
from repro.obs.tracer import Tracer
from repro.placement.base import PlacementMap


class AdmissionOutcome(enum.Enum):
    """Result of one admission decision."""

    ACCEPTED = "accepted"
    ACCEPTED_WITH_MIGRATION = "accepted_with_migration"
    #: Admitted by the prefix-cache tier as a *shared* session chained
    #: onto a live stream (:mod:`repro.prefix`) — no server slot used.
    ACCEPTED_CHAINED = "accepted_chained"
    REJECTED = "rejected"
    REJECTED_NO_REPLICA = "rejected_no_replica"

    @property
    def accepted(self) -> bool:
        return self in (
            AdmissionOutcome.ACCEPTED,
            AdmissionOutcome.ACCEPTED_WITH_MIGRATION,
            AdmissionOutcome.ACCEPTED_CHAINED,
        )


class AdmissionController:
    """Decides and executes admission for each arrival.

    Args:
        servers: cluster nodes keyed by id.
        managers: one :class:`TransmissionManager` per server id.
        placement: the static replica map.
        migration_policy: DRM configuration.
        metrics: run counters.
        mode: ``"minflow"`` (default) admits while the sum of view
            bandwidths fits the link — the paper's admission test.
            ``"overbook"`` counts only streams with less than
            ``park_seconds`` of buffered playback, letting an
            intermittent allocator carry more viewers than the SVBR
            (see :mod:`repro.core.intermittent`).
        park_seconds: buffered-playback threshold for ``"overbook"``;
            should match the intermittent allocator's ``park_seconds``.
        tracer: optional obs tracer for saturation/DRM-search records.
    """

    def __init__(
        self,
        servers: Dict[int, DataServer],
        managers: Dict[int, TransmissionManager],
        placement: PlacementMap,
        migration_policy: MigrationPolicy,
        metrics: SimulationMetrics,
        mode: str = "minflow",
        park_seconds: float = 120.0,
        overbook_factor: float = 3.0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if mode not in ("minflow", "overbook"):
            raise ValueError(
                f"admission mode must be 'minflow' or 'overbook', got {mode!r}"
            )
        if overbook_factor < 1.0:
            raise ValueError(
                f"overbook_factor must be >= 1, got {overbook_factor}"
            )
        self.servers = servers
        self.managers = managers
        self.placement = placement
        self.migration_policy = migration_policy
        self.metrics = metrics
        self.mode = mode
        self.park_seconds = float(park_seconds)
        self.overbook_factor = float(overbook_factor)
        self.tracer = tracer

    # ------------------------------------------------------------------
    def _has_slot(self, server: DataServer, request: Request, now: float) -> bool:
        """The admission test, by mode."""
        if self.mode == "minflow":
            return server.has_slot_for(request)
        if not server.up or not server.accepting:
            return False
        # Hard population cap: even parked viewers cost scheduler work
        # and will eventually need the link back.
        slots = server.stream_slots(request.view_bandwidth)
        if server.active_count + 1 > slots * self.overbook_factor:
            return False
        # Overbook: parked streams (enough banked playback) don't
        # reserve link capacity.  State is read without mutating — the
        # streams may not be synced to `now` yet.
        reserved = 0.0
        for r in server.iter_active():
            vb = r.view_bandwidth
            sent = r.bytes_sent + r.rate * (now - r.last_sync)
            played_until = min(now, r.playback_pause_time)
            buffered = sent - (played_until - r.playback_start) * vb
            if r.playback_pause_time > now and buffered < self.park_seconds * vb:
                reserved += vb
        return reserved + request.view_bandwidth <= server.bandwidth + 1e-6

    # ------------------------------------------------------------------
    def candidate_holders(self, video_id: int) -> List[DataServer]:
        """Live servers holding a replica of *video_id*."""
        return [
            self.servers[sid]
            for sid in self.placement.holders(video_id)
            if sid in self.servers and self.servers[sid].up
        ]

    def submit(
        self, request: Request, now: float, retry: bool = False
    ) -> AdmissionOutcome:
        """Run the full admission pipeline for *request*.

        Args:
            request: the (possibly resubmitted) stream request.
            now: current simulation time.
            retry: True when this is a retry-queue resubmission; each
                attempt still counts as an arrival (so the
                ``accepted + rejected == arrivals`` identity holds per
                attempt) but an admitted retry is additionally counted
                as a backoff success.
        """
        self.metrics.record_arrival()
        outcome = self._decide(request, now)
        if retry and outcome.accepted:
            self.metrics.record_retry_success()
        return outcome

    def _decide(self, request: Request, now: float) -> AdmissionOutcome:
        video_id = request.video.video_id
        tracer = self.tracer
        holders = self.candidate_holders(video_id)
        if not holders:
            request.mark_rejected()
            self.metrics.record_reject(no_replica=True)
            return AdmissionOutcome.REJECTED_NO_REPLICA

        with_slot = [s for s in holders if self._has_slot(s, request, now)]
        if with_slot:
            # "the server which … has the fewest current requests"
            target = min(with_slot, key=lambda s: (s.active_count, s.server_id))
            self.managers[target.server_id].admit(request, now)
            self.metrics.record_accept()
            return AdmissionOutcome.ACCEPTED

        holder_ids = [s.server_id for s in holders]
        if tracer is not None:
            # Every replica holder is full: the saturation event the
            # DRM fallback (and capacity planning) cares about.
            tracer.emit(
                TraceKind.SERVER_SATURATE, now,
                servers=holder_ids, video=video_id,
            )

        if self.migration_policy.enabled:
            self.metrics.record_migration_attempt()
            chain = find_migration_chain(
                video_id,
                self.servers,
                self.placement,
                self.migration_policy,
                now,
                slot_test=lambda s, r: self._has_slot(s, r, now),
            )
            if tracer is not None:
                if chain is not None:
                    tracer.emit(
                        TraceKind.DRM_CHAIN, now, video=video_id,
                        length=len(chain),
                        path=[
                            (step.source_id, step.target_id) for step in chain
                        ],
                    )
                else:
                    tracer.emit(TraceKind.DRM_FAIL, now, video=video_id)
            if chain is not None:
                execute_chain(
                    chain, self.managers, self.migration_policy, now,
                    tracer=tracer,
                )
                freed_id = chain[-1].source_id
                freed = self.servers[freed_id]
                if not self._has_slot(freed, request, now):
                    # Only reachable in overbook mode: displacing a
                    # *parked* stream does not reduce the non-parked
                    # reserve, so the chain may not help the newcomer.
                    # The moves themselves are harmless; reject.
                    if self.mode == "minflow":  # pragma: no cover
                        raise RuntimeError(
                            f"migration chain did not free a slot on "
                            f"server {freed_id}"
                        )
                    request.mark_rejected()
                    self.metrics.record_reject(holders=holder_ids)
                    return AdmissionOutcome.REJECTED
                self.managers[freed_id].admit(request, now)
                self.metrics.record_accept()
                self.metrics.record_migration(len(chain))
                return AdmissionOutcome.ACCEPTED_WITH_MIGRATION

        request.mark_rejected()
        self.metrics.record_reject(holders=holder_ids)
        return AdmissionOutcome.REJECTED
