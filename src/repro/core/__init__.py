"""The paper's primary contribution: semi-continuous transmission.

* :mod:`repro.core.schedulers` — minimum-flow bandwidth allocators,
  chiefly **Earliest Finishing Time First** (Figure 2, Theorem 1), plus
  ablation alternatives.
* :mod:`repro.core.transmission` — the per-server fluid-flow event
  machinery that drives an allocator on the simulation engine.
* :mod:`repro.core.admission` — the admission controller: least-loaded
  replica-holder assignment with a DRM fallback.
* :mod:`repro.core.migration` — Dynamic Request Migration: chain search
  with chain-length and hops-per-request bounds (Section 3.1).
* :mod:`repro.core.policies` — the Figure 6 policy matrix P1–P8.
* :mod:`repro.core.failover` — node failure handling via DRM
  (Section 3.1's fault-tolerance observation).
"""

from repro.core.admission import AdmissionController, AdmissionOutcome
from repro.core.migration import MigrationPolicy, MigrationStep, find_migration_chain
from repro.core.policies import PAPER_POLICIES, Policy
from repro.core.schedulers import (
    ALLOCATORS,
    BandwidthAllocator,
    EFTFAllocator,
    LFTFAllocator,
    NoWorkaheadAllocator,
    ProportionalShareAllocator,
)
from repro.core.transmission import TransmissionManager

__all__ = [
    "ALLOCATORS",
    "AdmissionController",
    "AdmissionOutcome",
    "BandwidthAllocator",
    "EFTFAllocator",
    "LFTFAllocator",
    "MigrationPolicy",
    "MigrationStep",
    "NoWorkaheadAllocator",
    "PAPER_POLICIES",
    "Policy",
    "ProportionalShareAllocator",
    "TransmissionManager",
    "find_migration_chain",
]
