"""Intermittent transmission: beyond the minimum-flow class.

Section 3.3 defines *intermittent algorithms* — "the class of
algorithms where a stream alternates between periods of transmission
and no transmission" — and then deliberately restricts the paper to
minimum-flow algorithms because "the decision procedure for the optimal
intermittent algorithm is impractical to apply in real time".  This
module implements a *practical* member of the intermittent class as the
paper's flagged future-work direction:

* a stream whose client has banked more than ``park_seconds`` of
  playback may be **parked** (rate 0) — its viewer plays from the
  staging buffer;
* parked streams release their whole view bandwidth, which the
  allocator hands to needier streams (ascending buffered-seconds) and
  then, EFTF-style, to workahead;
* a parked stream is resumed once its buffer drains toward
  ``resume_seconds``.

Combined with **overbooked admission** (only non-parked streams count
against the slot test — see :class:`repro.core.admission`'s
``overbook`` mode) this lets a server carry more concurrent viewers
than its SVBR, at the cost of possible **underruns** when the gamble
fails; underruns are counted, never hidden.

Invariant differences from the minimum-flow class (handled by the
transmission manager via :attr:`BandwidthAllocator.minimum_flow`):

* an unpaused stream may legitimately have ``rate < b_view``, so the
  next-boundary scan adds a *buffer-empty* boundary — the trigger the
  paper lists but that minimum-flow scheduling can never fire;
* ``bytes_viewed`` is capped at ``bytes_sent`` (a starved viewer stalls
  rather than watching data that never arrived).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.cluster.request import EPS_MB, Request
from repro.cluster.server import DataServer
from repro.core.schedulers import EPS_RATE, BandwidthAllocator


class IntermittentAllocator(BandwidthAllocator):
    """Park well-buffered streams; feed the needy first, then EFTF.

    Args:
        park_seconds: buffered playback above which a stream may be
            parked (default 120 s).
        resume_seconds: buffered playback below which a stream must be
            transmitting again (default 30 s).  The gap between the two
            thresholds provides hysteresis so streams don't flap.
        refill_seconds: minimum headroom (in seconds of playback) before
            a stream is eligible for workahead again (default 5 s).
            Without this a parked stream sitting at its buffer cap
            oscillates at float granularity: draining at ``b_view``
            regrows microscopic headroom that EFTF refills instantly —
            a measured event storm.
    """

    name = "intermittent"
    minimum_flow = False

    def __init__(
        self,
        park_seconds: float = 120.0,
        resume_seconds: float = 30.0,
        refill_seconds: float = 5.0,
    ) -> None:
        if park_seconds <= resume_seconds:
            raise ValueError(
                f"park_seconds ({park_seconds}) must exceed "
                f"resume_seconds ({resume_seconds}) for hysteresis"
            )
        if resume_seconds < 0:
            raise ValueError(
                f"resume_seconds must be >= 0, got {resume_seconds}"
            )
        if refill_seconds < 0:
            raise ValueError(
                f"refill_seconds must be >= 0, got {refill_seconds}"
            )
        self.park_seconds = float(park_seconds)
        self.resume_seconds = float(resume_seconds)
        self.refill_seconds = float(refill_seconds)

    def allocate(
        self, server: DataServer, requests: Sequence[Request], now: float
    ) -> Dict[int, float]:
        rates: Dict[int, float] = {}
        live: List[Request] = []
        for r in requests:
            rates[r.request_id] = 0.0
            if not now < r.paused_until:
                live.append(r)
        pool = server.bandwidth
        # Base pass: neediest first (ascending seconds of buffered
        # playback, ties by id).  Streams already holding more than
        # park_seconds — and VCR-paused viewers, whose buffers never
        # drain — wait for the spare pass.
        def buffered_seconds(r: Request) -> float:
            played_until = min(now, r.playback_pause_time)
            buf = r.bytes_sent - (played_until - r.playback_start) * r.view_bandwidth
            return max(0.0, buf) / r.view_bandwidth

        order = sorted(live, key=lambda r: (buffered_seconds(r), r.request_id))
        for r in order:
            if r.video.size - r.bytes_sent <= EPS_MB:
                continue  # nothing left to send
            if r.playback_pause_time <= now:
                continue  # viewer paused: no drain, no urgency
            if buffered_seconds(r) >= self.park_seconds:
                continue  # parked: plays from its staging buffer
            if pool < r.view_bandwidth - EPS_RATE:
                break  # genuinely over-committed; later streams starve
            rates[r.request_id] = r.view_bandwidth
            pool -= r.view_bandwidth
        # Spare pass: classic EFTF over everyone with headroom (a parked
        # stream can still absorb workahead when nobody needs the link).
        if pool > EPS_RATE:
            candidates = []
            for r in live:
                extra_cap = r.client.receive_bandwidth - rates[r.request_id]
                if extra_cap <= EPS_RATE:
                    continue
                remaining = r.video.size - r.bytes_sent
                if remaining <= EPS_MB:
                    continue
                played_until = min(now, r.playback_pause_time)
                head = r.client.buffer_capacity - (
                    r.bytes_sent
                    - (played_until - r.playback_start) * r.view_bandwidth
                )
                # Refill hysteresis: demand real headroom, not the
                # float-granularity sliver a draining parked stream
                # regrows at its cap (see class docstring).
                if head <= self.refill_seconds * r.view_bandwidth + EPS_MB:
                    continue
                candidates.append((remaining, r.request_id, extra_cap))
            candidates.sort()
            for _remaining, rid, extra_cap in candidates:
                extra = pool if pool < extra_cap else extra_cap
                rates[rid] += extra
                pool -= extra
                if pool <= EPS_RATE:
                    break
        hook = self.obs_hook
        if hook is not None:
            hook(server, requests, rates, now)
        return rates

    def _distribute_spare(self, rates, candidates, spare):  # pragma: no cover
        raise AssertionError(
            "IntermittentAllocator overrides allocate(); the minimum-flow "
            "spare hook is unused"
        )
