"""Elastic cluster scaling: scenario- or load-driven membership events.

The ROADMAP's autoscaling item in full: servers added or removed
*mid-run*, with replica warming onto joiners (bounded by their measured
disk throughput) and DRM draining streams off leavers before departure
— zero underruns across the transition, enforced by the online
:class:`~repro.faults.invariants.InvariantChecker`.

Scale events are ordinary virtual-time engine events, so an elastic
run replays deterministically and a live serve of the same scenario
stays byte-comparable to its virtual-time twin (the PolicyBridge
parity contract).  Two registries make the behaviour pluggable:

* :data:`SCALE_TRIGGERS` — what fires a scale-out: ``"scheduled"``
  (only the scenario's declared events) or ``"load"`` (a rejection
  burst within ``reject_window`` additionally commissions a server).
* :data:`WARMERS` — which replicas a joiner receives before
  activating: ``"popular"`` (the placement policy's
  :meth:`~repro.placement.base.PlacementPolicy.warm_targets`, hottest
  first) or ``"none"`` (join empty; dynamic replication fills it).

Lifecycle (see :mod:`repro.cluster.membership`)::

    scale_out: joining -> warming -> active
    scale_in:  active  -> draining -> departed
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.analysis.metrics import SimulationMetrics
from repro.cluster.membership import ClusterMembership, ServerLifecycle
from repro.cluster.profile import CalibrationConfig, calibrate_server
from repro.cluster.request import Request
from repro.cluster.server import DataServer
from repro.core.admission import AdmissionOutcome
from repro.core.migration import (
    MigrationPolicy,
    execute_chain,
    find_migration_chain,
)
from repro.obs.records import TraceKind
from repro.obs.tracer import Tracer
from repro.placement.base import PlacementMap, PlacementPolicy
from repro.registry import Registry
from repro.sim.engine import Engine
from repro.sim.rng import RandomStreams
from repro.workload.catalog import VideoCatalog
from repro.workload.zipf import ZipfPopularity

#: What fires scale-outs beyond the scenario's declared events.  A
#: registry value is a factory ``(scaler) -> hook | None`` where the
#: hook observes every admission decision.
SCALE_TRIGGERS: Registry = Registry("scale trigger")

#: How a joiner is seeded with replicas before activating.  A registry
#: value is ``(scaler, server) -> [video ids]``.
WARMERS: Registry = Registry("replica warmer")


def _scheduled_trigger(scaler: "ElasticScaler"):
    """Only the scenario's declared events scale the cluster."""
    return None


def _load_trigger(scaler: "ElasticScaler"):
    """Rejection bursts commission a server (flash-crowd response)."""
    return scaler._observe_rejection


SCALE_TRIGGERS.register(
    "scheduled", _scheduled_trigger,
    help="scale only at the scenario's declared event times",
)
SCALE_TRIGGERS.register(
    "load", _load_trigger,
    help="additionally scale out on a rejection burst "
         "(reject_threshold rejections within reject_window seconds)",
)


def _warm_popular(scaler: "ElasticScaler", server: DataServer) -> List[int]:
    """Seed the placement policy's hottest fitting videos."""
    limit = max(
        1, int(round(scaler.policy.warm_fraction * len(scaler.catalog)))
    )
    return scaler.placement_policy.warm_targets(
        scaler.catalog, scaler.popularity, scaler.placement, server, limit
    )


def _warm_none(scaler: "ElasticScaler", server: DataServer) -> List[int]:
    """Join empty; dynamic replication (or nothing) fills the disk."""
    return []


WARMERS.register(
    "popular", _warm_popular,
    help="warm the placement policy's warm_targets (hottest videos "
         "first, warm_fraction of the catalog)",
)
WARMERS.register(
    "none", _warm_none,
    help="activate immediately with an empty disk",
)

#: Drain migrations must never gap transmission: chain length 1 with
#: unlimited hops and zero switch delay (the rescue configuration).
DRAIN_POLICY = MigrationPolicy.unlimited_hops()


@dataclass(frozen=True)
class ScaleEvent:
    """One scenario-declared membership change.

    Attributes:
        time: virtual seconds at which the event fires.
        action: ``"scale_out"`` or ``"scale_in"``.
        count: servers to add/remove (scale_in with ``server_id`` set
            ignores this and drains exactly that server).
        bandwidth: joiner's nominal link, Mb/s (scale_out only;
            defaults to the cluster's mean preset).
        disk: joiner's disk, Mb (scale_out only; defaults likewise).
        server_id: the specific server to drain (scale_in only;
            defaults to the highest-id active member).
    """

    time: float
    action: str
    count: int = 1
    bandwidth: Optional[float] = None
    disk: Optional[float] = None
    server_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"event time must be >= 0, got {self.time}")
        if self.action not in ("scale_out", "scale_in"):
            raise ValueError(
                f"action must be 'scale_out' or 'scale_in', "
                f"got {self.action!r}"
            )
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.bandwidth is not None and self.bandwidth <= 0:
            raise ValueError(
                f"bandwidth must be positive, got {self.bandwidth}"
            )
        if self.disk is not None and self.disk < 0:
            raise ValueError(f"disk must be >= 0, got {self.disk}")

    def to_dict(self) -> dict:
        from repro.serialize import shallow_dict

        return shallow_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ScaleEvent":
        from repro.serialize import check_fields

        check_fields(cls, data)
        return cls(**data)


@dataclass(frozen=True)
class ElasticPolicy:
    """Configuration of the elastic scaler.

    Attributes:
        events: scenario-declared :class:`ScaleEvent` schedule.
        trigger: :data:`SCALE_TRIGGERS` key.
        warmer: :data:`WARMERS` key.
        warm_fraction: catalog fraction the ``"popular"`` warmer seeds
            onto a joiner (disk permitting).
        drain_interval: virtual seconds between drain retries on a
            departing server (streams that cannot move yet are retried,
            never dropped).
        reject_window: the ``"load"`` trigger's sliding window, s.
        reject_threshold: rejections within the window that fire a
            scale-out.
        cooldown: minimum virtual seconds between load-triggered
            scale-outs.
    """

    events: Tuple[ScaleEvent, ...] = ()
    trigger: str = "scheduled"
    warmer: str = "popular"
    warm_fraction: float = 0.25
    drain_interval: float = 5.0
    reject_window: float = 30.0
    reject_threshold: int = 5
    cooldown: float = 300.0

    def __post_init__(self) -> None:
        if not isinstance(self.events, tuple):
            object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, ScaleEvent):
                raise ValueError(
                    f"events must be ScaleEvent instances, got {event!r}"
                )
        # Registry lookups raise UnknownKeyError (a ValueError) naming
        # the valid choices — the actionable-error contract.
        SCALE_TRIGGERS.get(self.trigger)
        WARMERS.get(self.warmer)
        if not 0.0 <= self.warm_fraction <= 1.0:
            raise ValueError(
                f"warm_fraction must be in [0, 1], got {self.warm_fraction}"
            )
        if self.drain_interval <= 0:
            raise ValueError(
                f"drain_interval must be positive, got {self.drain_interval}"
            )
        if self.reject_window <= 0:
            raise ValueError(
                f"reject_window must be positive, got {self.reject_window}"
            )
        if self.reject_threshold < 1:
            raise ValueError(
                f"reject_threshold must be >= 1, got {self.reject_threshold}"
            )
        if self.cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {self.cooldown}")

    def to_dict(self) -> dict:
        from repro.serialize import shallow_dict

        out = shallow_dict(self)
        out["events"] = [e.to_dict() for e in self.events]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ElasticPolicy":
        from repro.serialize import check_fields

        check_fields(cls, data)
        data = dict(data)
        events = data.pop("events", ())
        data["events"] = tuple(
            e if isinstance(e, ScaleEvent) else ScaleEvent.from_dict(e)
            for e in events
        )
        return cls(**data)


class ElasticScaler:
    """Executes membership changes against a running cluster.

    Built by the simulation's ``observers`` stage when the config has
    an :class:`ElasticPolicy`; :meth:`start` schedules the declared
    events and installs the trigger, :meth:`observe` is appended to the
    controller's decision hooks.

    Attributes:
        scale_outs / scale_ins: events executed so far.
        streams_drained: streams migrated off departing servers.
    """

    def __init__(
        self,
        engine: Engine,
        controller,
        membership: ClusterMembership,
        placement: PlacementMap,
        catalog: VideoCatalog,
        popularity: ZipfPopularity,
        placement_policy: PlacementPolicy,
        policy: ElasticPolicy,
        streams: RandomStreams,
        calibration: Optional[CalibrationConfig] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.engine = engine
        self.controller = controller
        self.membership = membership
        self.placement = placement
        self.catalog = catalog
        self.popularity = popularity
        self.placement_policy = placement_policy
        self.policy = policy
        self.streams = streams
        self.calibration = calibration
        self.tracer = tracer
        servers = controller.servers
        self._default_bandwidth = sum(
            s.nominal_bandwidth for s in servers.values()
        ) / len(servers)
        self._default_disk = sum(
            s.disk_capacity for s in servers.values()
        ) / len(servers)
        self._hook = None
        self._rejections: Deque[float] = deque()
        self._cooldown_until = float("-inf")
        #: Per-draining-server bookkeeping: moved count + in-flight
        #: sole-replica evacuation copies.
        self._draining: Dict[int, Dict] = {}
        self.scale_outs = 0
        self.scale_ins = 0
        self.streams_drained = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the declared events and install the trigger."""
        now = self.engine.now
        for event in self.policy.events:
            delay = max(0.0, event.time - now)
            if event.action == "scale_out":
                self.engine.schedule(
                    delay, lambda e=event: self._scale_out(e),
                    kind="elastic:scale_out",
                )
            else:
                self.engine.schedule(
                    delay, lambda e=event: self._scale_in(e),
                    kind="elastic:scale_in",
                )
        self._hook = SCALE_TRIGGERS.get(self.policy.trigger)(self)

    def observe(self, outcome: AdmissionOutcome, request: Request) -> None:
        """Controller decision hook (drives the ``"load"`` trigger)."""
        if self._hook is not None:
            self._hook(outcome, request)

    def _observe_rejection(
        self, outcome: AdmissionOutcome, request: Request
    ) -> None:
        if outcome is not AdmissionOutcome.REJECTED:
            return
        now = self.engine.now
        window = self._rejections
        window.append(now)
        while window and window[0] < now - self.policy.reject_window:
            window.popleft()
        if (
            len(window) >= self.policy.reject_threshold
            and now >= self._cooldown_until
        ):
            self._cooldown_until = now + self.policy.cooldown
            window.clear()
            # Scale out on a fresh engine event, not inside the
            # admission call stack — keeps decision/membership event
            # ordering identical between live and virtual runs.
            self.engine.schedule(
                0.0,
                lambda: self._scale_out(
                    ScaleEvent(time=now, action="scale_out")
                ),
                kind="elastic:scale_out",
            )

    # ------------------------------------------------------------------
    # Scale-out: join -> warm -> activate
    # ------------------------------------------------------------------
    def _scale_out(self, event: ScaleEvent) -> None:
        for _ in range(event.count):
            self._add_server(event)

    def _add_server(self, event: ScaleEvent) -> None:
        now = self.engine.now
        sid = max(self.controller.servers) + 1
        bandwidth = (
            event.bandwidth
            if event.bandwidth is not None
            else self._default_bandwidth
        )
        disk = event.disk if event.disk is not None else self._default_disk
        server = DataServer(sid, bandwidth, disk)
        if self.calibration is not None:
            # Joiners are calibrated on their own substream so the probe
            # draws never shift the seed cluster's profile.
            server.apply_profile(
                calibrate_server(
                    sid, bandwidth, disk, self.calibration,
                    self.streams.get(f"calibrate.join.{sid}"),
                )
            )
        server.accepting = False
        self.controller.add_server(server)
        self.membership.register(sid, ServerLifecycle.JOINING)
        self.scale_outs += 1
        if self.tracer is not None:
            self.tracer.emit(
                TraceKind.SERVER_JOIN, now,
                server=sid, bandwidth=server.bandwidth,
                disk=server.disk_capacity, epoch=self.membership.epoch,
            )
        targets = WARMERS.get(self.policy.warmer)(self, server)
        if targets:
            self.membership.transition(sid, ServerLifecycle.WARMING)
            self._warm_next(sid, list(targets))
        else:
            self._activate(sid)

    def _warm_next(self, sid: int, remaining: List[int]) -> None:
        server = self.controller.servers[sid]
        if not server.up:
            return  # crashed mid-warm; chaos reconciliation owns it now
        while remaining:
            vid = remaining[0]
            video = self.catalog[vid]
            if server.can_store(video):
                break
            remaining.pop(0)
        if not remaining:
            self._activate(sid)
            return
        vid = remaining.pop(0)
        video = self.catalog[vid]
        # Reserve disk now (nothing else writes to a warming joiner,
        # but the reservation keeps can_store honest mid-copy), publish
        # the placement entry when the copy lands.
        server.store_replica(video)
        seconds = video.size / server.disk_throughput
        self.engine.schedule(
            seconds,
            lambda: self._finish_warm(sid, vid, seconds, remaining),
            kind=f"elastic:warm:srv{sid}",
        )

    def _finish_warm(
        self, sid: int, vid: int, seconds: float, remaining: List[int]
    ) -> None:
        server = self.controller.servers[sid]
        if not server.up:
            server.drop_replica(self.catalog[vid])
            return
        self.placement.add_holder(vid, sid)
        if self.tracer is not None:
            self.tracer.emit(
                TraceKind.SERVER_WARM, self.engine.now,
                server=sid, video=vid, seconds=seconds,
            )
        self._warm_next(sid, remaining)

    def _activate(self, sid: int) -> None:
        server = self.controller.servers[sid]
        server.accepting = True
        self.membership.transition(sid, ServerLifecycle.ACTIVE)
        if self.tracer is not None:
            self.tracer.emit(
                TraceKind.SERVER_ACTIVATE, self.engine.now,
                server=sid, replicas=len(self.placement.videos_on(sid)),
                epoch=self.membership.epoch,
            )

    # ------------------------------------------------------------------
    # Scale-in: drain -> depart
    # ------------------------------------------------------------------
    def _scale_in(self, event: ScaleEvent) -> None:
        count = 1 if event.server_id is not None else event.count
        for _ in range(count):
            actives = self.membership.members(ServerLifecycle.ACTIVE)
            if len(actives) <= 1:
                return  # never drain the last active server
            if event.server_id is not None:
                sid = event.server_id
                if self.membership.states.get(sid) is not ServerLifecycle.ACTIVE:
                    return  # already leaving (or never joined); no-op
            else:
                sid = actives[-1]
            self._start_drain(sid)

    def _start_drain(self, sid: int) -> None:
        now = self.engine.now
        server = self.controller.servers[sid]
        server.accepting = False
        self.membership.transition(sid, ServerLifecycle.DRAINING)
        self.scale_ins += 1
        if self.tracer is not None:
            self.tracer.emit(
                TraceKind.SERVER_DRAIN, now,
                server=sid, active=server.active_count,
                epoch=self.membership.epoch,
            )
        self._draining[sid] = {"moved": 0, "evac": set()}
        self._evacuate_sole_replicas(sid)
        self._drain_tick(sid)

    def _evacuate_sole_replicas(self, sid: int) -> None:
        """Copy videos whose only replica sits on the drainer elsewhere
        before the holder entries disappear at departure."""
        info = self._draining[sid]
        for vid in self.placement.videos_on(sid):
            if self.placement.copies(vid) > 1:
                continue
            video = self.catalog[vid]
            candidates = [
                s
                for s in self.controller.servers.values()
                if s.up and s.accepting and s.can_store(video)
            ]
            if not candidates:
                continue  # retried implicitly: drain waits on evac set
            target = min(
                candidates, key=lambda s: (s.active_count, s.server_id)
            )
            target.store_replica(video)
            info["evac"].add(vid)
            seconds = video.size / target.disk_throughput
            self.engine.schedule(
                seconds,
                lambda v=vid, t=target.server_id: self._finish_evacuation(
                    sid, v, t
                ),
                kind=f"elastic:evac:srv{sid}",
            )

    def _finish_evacuation(self, sid: int, vid: int, target_id: int) -> None:
        info = self._draining.get(sid)
        target = self.controller.servers[target_id]
        if not target.up:
            target.drop_replica(self.catalog[vid])
        else:
            self.placement.add_holder(vid, target_id)
        if info is not None:
            info["evac"].discard(vid)

    def _drain_tick(self, sid: int) -> None:
        info = self._draining.get(sid)
        if info is None:
            return
        server = self.controller.servers[sid]
        if not server.up:
            # Crashed while draining: failover already rescued (or
            # dropped) its streams; finish the departure bookkeeping.
            self._depart(sid)
            return
        now = self.engine.now
        managers = self.controller.managers
        for request in list(server.iter_active()):
            if request.is_paused(now):
                continue
            target = self._direct_target(sid, request)
            if target is None:
                target = self._chain_target(sid, request, now)
            if target is None:
                continue  # retry on the next tick; never drop
            managers[sid].migrate_out(request, now)
            request.hops += 1
            managers[target.server_id].migrate_in(request, now)
            info["moved"] += 1
            self.streams_drained += 1
            self.metrics.record_relocation()
            if self.tracer is not None:
                self.tracer.emit(
                    TraceKind.REQUEST_MIGRATE, now,
                    request=request.request_id, source=sid,
                    target=target.server_id, cause="drain",
                )
        if server.active_count == 0 and not info["evac"]:
            self._depart(sid)
        else:
            self.engine.schedule(
                self.policy.drain_interval,
                lambda: self._drain_tick(sid),
                kind=f"elastic:drain:srv{sid}",
            )

    def _direct_target(
        self, sid: int, request: Request
    ) -> Optional[DataServer]:
        """Least-loaded other holder with a minimum-flow slot."""
        servers = self.controller.servers
        candidates = [
            servers[tid]
            for tid in self.placement.holders(request.video.video_id)
            if tid != sid
            and tid in servers
            and servers[tid].has_slot_for(request)
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda s: (s.active_count, s.server_id))

    def _chain_target(
        self, sid: int, request: Request, now: float
    ) -> Optional[DataServer]:
        """DRM fallback: displace a stream off another holder to make
        room.  The drainer is excluded from the search entirely — a
        chain must not route anything back onto it."""
        others = {
            k: v for k, v in self.controller.servers.items() if k != sid
        }
        chain = find_migration_chain(
            request.video.video_id, others, self.placement,
            DRAIN_POLICY, now,
        )
        if chain is None:
            return None
        execute_chain(
            chain, self.controller.managers, DRAIN_POLICY, now,
            tracer=self.tracer, cause="drain",
        )
        freed = self.controller.servers[chain[-1].source_id]
        return freed if freed.has_slot_for(request) else None

    def _depart(self, sid: int) -> None:
        info = self._draining.pop(sid, {"moved": 0})
        now = self.engine.now
        server = self.controller.servers[sid]
        manager = self.controller.managers[sid]
        manager.flush(now)
        manager.deactivate(now)
        self.placement_policy.on_server_depart(self.placement, server)
        for vid in self.placement.videos_on(sid):
            self.placement.remove_holder(vid, sid)
        server.up = False
        server.accepting = False
        self.membership.transition(sid, ServerLifecycle.DEPARTED)
        if self.tracer is not None:
            self.tracer.emit(
                TraceKind.SERVER_DEPART, now,
                server=sid, moved=info["moved"],
                epoch=self.membership.epoch,
            )

    # ------------------------------------------------------------------
    @property
    def metrics(self) -> SimulationMetrics:
        return self.controller.metrics

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ElasticScaler out={self.scale_outs} in={self.scale_ins} "
            f"drained={self.streams_drained}>"
        )
