"""Per-server transmission machinery: driving an allocator on the engine.

Between events every stream's rate is constant, so each server needs
exactly one pending engine event: the earliest of its streams' next
boundaries.  Boundaries are (Section 3.3's EFTF trigger list):

* **transmission finish** — all data sent; the stream leaves the server
  and frees its minimum-flow floor;
* **buffer full** — a boosted stream's client runs out of headroom; its
  surplus is redistributed (the stream drops back to ``b_view``);
* **switch-gap end** — a migrated stream's pause expires and it rejoins
  the minimum-flow floor;
* ("buffer empty" is in the paper's trigger list but is unreachable for
  minimum-flow algorithms with immediate playback — while unfinished a
  stream receives at least its drain rate; we assert rather than handle
  it.)

External triggers (arrival, migration in/out, failure) call
:meth:`TransmissionManager.reallocate` directly; the pending event is
cancelled lazily and rescheduled.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.analysis.metrics import MetricsSink
from repro.cluster.request import EPS_MB, Request
from repro.cluster.server import DataServer
from repro.core.schedulers import EPS_RATE, BandwidthAllocator
from repro.obs.records import TraceKind
from repro.obs.tracer import Tracer
from repro.sim.engine import Engine
from repro.sim.events import Event


class TransmissionManager:
    """Owns one server's bandwidth schedule.

    Args:
        engine: the simulation engine.
        server: the managed :class:`DataServer`.
        allocator: spare-bandwidth policy (EFTF in the paper).
        metrics: sink for transfer accounting.
        on_finish: callback invoked when a stream completes transmission
            (after it has been detached from the server).
        tracer: optional obs tracer for buffer-full/underrun records
            (zero overhead when None).
    """

    def __init__(
        self,
        engine: Engine,
        server: DataServer,
        allocator: BandwidthAllocator,
        metrics: MetricsSink,
        on_finish: Optional[Callable[[Request], None]] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.engine = engine
        self.server = server
        self.allocator = allocator
        self.metrics = metrics
        self.on_finish = on_finish
        self.tracer = tracer
        self._event: Optional[Event] = None
        self.reallocations = 0
        #: Trace tag for boundary events, built once — the f-string
        #: used to be formatted per scheduled boundary (per event).
        self._boundary_kind = f"tx-boundary:srv{server.server_id}"

    # ------------------------------------------------------------------
    # External triggers
    # ------------------------------------------------------------------
    def admit(self, request: Request, now: float) -> None:
        """Attach a newly accepted stream and rebalance."""
        request.last_sync = now
        self.server.attach(request)
        self.reallocate(now)

    def migrate_in(self, request: Request, now: float) -> None:
        """Receive a migrated stream (its pause window, if any, was set
        by the migration executor)."""
        self.server.attach(request)
        self.reallocate(now)

    def migrate_out(self, request: Request, now: float) -> None:
        """Release a stream that is moving to another server.

        Syncs the stream first so its transfer so far is attributed to
        this server, then rebalances the remainder.
        """
        request.sync(now, self.metrics)
        request.rate = 0.0
        self.server.detach(request)
        self.reallocate(now)

    def deactivate(self, now: float) -> None:
        """Stop scheduling (server failed).  Streams must already have
        been detached via :meth:`DataServer.fail`; pending work is
        synced by the failure handler before this call."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    # ------------------------------------------------------------------
    # Core cycle
    # ------------------------------------------------------------------
    def _sync_all(self, active, now: float) -> None:
        """Integrate every stream to *now*, batching the transfer
        accounting into one metrics call per event.

        This is the inlined (hot-loop) equivalent of calling
        ``Request.sync`` per stream; tests assert the two agree.
        """
        total = 0.0
        for r in active:
            dt = now - r.last_sync
            if dt > 0.0:
                rate = r.rate
                if rate > 0.0:
                    delta = rate * dt
                    remaining = r.video.size - r.bytes_sent
                    if delta > remaining:
                        delta = remaining
                    r.bytes_sent += delta
                    total += delta
            elif dt < 0.0:
                raise RuntimeError(
                    f"sync backwards on server {self.server.server_id}: "
                    f"{now} < {r.last_sync}"
                )
            r.last_sync = now
        if total > 0.0:
            self.metrics.record_bytes(self.server.server_id, total, now)

    def reallocate(self, now: float, _synced_active=None) -> None:
        """Sync state, apply the allocator, schedule the next boundary.

        ``_synced_active`` is an internal fast path for callers (the
        boundary handler) that already hold the active list with every
        stream integrated to *now* — it skips re-listing and a
        redundant zero-dt sync pass, which is pure overhead at one
        reallocation per event.

        The allocator runs through :meth:`BandwidthAllocator
        .allocate_into`, which updates every stream's rate in one
        batched pass (no per-stream rate-dict round-trip); when N
        streams hit their boundaries at the same timestamp, this one
        event re-integrates and re-allocates all of them together —
        there is never more than one boundary event per server on the
        agenda (pinned by tests).
        """
        self.reallocations += 1
        if _synced_active is None:
            active = list(self.server.iter_active())
            self._sync_all(active, now)
        else:
            active = _synced_active
        self.allocator.allocate_into(self.server, active, now)
        self._schedule_boundary(now, active)

    def _schedule_boundary(self, now: float, active) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None
        boundary = self._next_boundary(now, active)
        if boundary is not None and math.isfinite(boundary):
            self._event = self.engine.schedule_at(
                max(boundary, now),
                self._on_boundary,
                kind=self._boundary_kind,
            )

    def _next_boundary(self, now: float, active) -> Optional[float]:
        """Earliest time any stream's linear evolution hits a wall.

        Inner-loop code: inlines ``Request.buffer_occupancy`` (kept
        equivalent by tests) because this scan runs once per event over
        every stream on the server.
        """
        minimum_flow = self.allocator.minimum_flow
        best: float = math.inf
        for r in active:
            if now < r.paused_until:
                t = r.paused_until
            else:
                rate = r.rate
                vb = r.view_bandwidth
                sent = r.bytes_sent
                # A VCR-paused viewer consumes nothing: the buffer only
                # ever fills, never drains.
                playing = now < r.playback_pause_time
                drain = vb if playing else 0.0
                if rate <= EPS_RATE:
                    if minimum_flow and playing:
                        # A live, playing minimum-flow stream always has
                        # rate >= b_view (a VCR-paused one with a full
                        # buffer is legitimately idle).
                        raise RuntimeError(
                            f"unpaused stream {r.request_id} with zero rate "
                            f"on server {self.server.server_id}"
                        )
                    if playing:
                        t = self._drain_boundary(r, now, rate, vb, sent)
                    else:
                        t = math.inf  # idle until the viewer resumes
                else:
                    t = now + (r.video.size - sent) / rate
                    surplus = rate - drain
                    if r.starved and surplus >= -EPS_RATE:
                        r.starved = False  # fed again; close the episode
                    if surplus > EPS_RATE:
                        capacity = r.client.buffer_capacity
                        if capacity < math.inf:
                            played_until = (
                                now if playing else r.playback_pause_time
                            )
                            headroom = capacity - (
                                sent - (played_until - r.playback_start) * vb
                            )
                            if headroom < 0.0:
                                headroom = 0.0
                            t_full = now + headroom / surplus
                            if t_full < t:
                                t = t_full
                    elif surplus < -EPS_RATE:
                        # Below playback rate (intermittent only): the
                        # buffer drains — wake up before it empties.
                        t_empty = self._drain_boundary(r, now, rate, vb, sent)
                        if t_empty < t:
                            t = t_empty
            if t < best:
                best = t
        return None if math.isinf(best) else best

    def _drain_boundary(
        self, r: Request, now: float, rate: float, vb: float, sent: float
    ) -> float:
        """Wake-up boundary for a stream receiving below its view rate
        (only reachable under intermittent allocators).

        A parked stream must resume before its buffer drains to the
        allocator's ``resume_seconds`` level, so the boundary is the
        crossing of that level, not of empty.  A stream already at or
        below the resume level but still draining (the server is
        genuinely over-committed) gets a buffer-empty boundary; one that
        is *already* starved gets none — nothing about it changes until
        another event frees bandwidth — but the underrun is counted
        (once per episode).  Callers guarantee the stream is *playing*
        (a VCR-paused viewer's buffer never drains).
        """
        if r.video.size - sent <= EPS_MB:
            return math.inf  # transmission done; nothing drains server-side
        buffer = sent - (now - r.playback_start) * vb
        if buffer <= EPS_MB:
            if not r.starved:
                r.starved = True
                self.metrics.record_underrun()
                if self.tracer is not None:
                    self.tracer.emit(
                        TraceKind.STREAM_UNDERRUN, now,
                        request=r.request_id, server=self.server.server_id,
                    )
            return math.inf
        r.starved = False
        resume_level = (
            getattr(self.allocator, "resume_seconds", 0.0) * vb
        )
        drain = vb - rate
        if buffer > resume_level + EPS_MB:
            return now + (buffer - resume_level) / drain
        return now + buffer / drain

    def _on_boundary(self) -> None:
        """Handle the scheduled boundary: complete finished streams, then
        rebalance (buffer-full and pause-end need no explicit handling —
        the allocator sees the new state)."""
        now = self.engine.now
        self._event = None
        active = list(self.server.iter_active())
        self._sync_all(active, now)
        if self.tracer is not None:
            self._trace_full_buffers(active, now)
        finished = [r for r in active if r.transmission_finished]
        if finished:
            for r in finished:
                self.server.detach(r)
                r.mark_finished(now)
                if self.on_finish is not None:
                    self.on_finish(r)
            # on_finish may admit/migrate onto this server, changing the
            # active set — re-list (and re-sync the newcomers) normally.
            self.reallocate(now)
        else:
            # Everything is already integrated to `now`; skip the
            # redundant re-list + zero-dt sync pass.
            self.reallocate(now, _synced_active=active)

    def _trace_full_buffers(self, active, now: float) -> None:
        """Emit ``stream.buffer_full`` for boosted streams whose clients
        just ran out of headroom (the boundary that triggered us).

        Trace-only path: runs one extra scan per boundary event and only
        when a tracer is attached.
        """
        for r in active:
            vb = r.view_bandwidth
            playing = now < r.playback_pause_time
            if r.rate <= vb + EPS_RATE or not playing:
                continue  # not boosted; can't have hit the buffer wall
            sent = r.bytes_sent
            if r.video.size - sent <= EPS_MB:
                continue  # finishing, not filling
            headroom = r.client.buffer_capacity - (
                sent - (now - r.playback_start) * vb
            )
            if headroom <= EPS_MB:
                self.tracer.emit(
                    TraceKind.STREAM_BUFFER_FULL, now,
                    request=r.request_id, server=self.server.server_id,
                )

    # ------------------------------------------------------------------
    # End of run
    # ------------------------------------------------------------------
    def flush(self, now: float) -> None:
        """Integrate all streams to *now* (end-of-simulation accounting)."""
        self._sync_all(list(self.server.iter_active()), now)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<TransmissionManager srv={self.server.server_id} "
            f"allocator={self.allocator.name} reallocs={self.reallocations}>"
        )
