"""Dynamic Request Migration (DRM): the Section 3.1 admission fallback.

When every replica holder of a newly requested video is saturated, a
holder may evict one of its *active* streams to another server that
holds that stream's video, freeing a minimum-flow slot for the
newcomer.  Two knobs bound the machinery (and the paper's result is
that the smallest settings already capture almost all the benefit):

* **migration chain length** — how many streams may be displaced to
  admit one arrival ("kept at one throughout our experiments");
* **hops per request** — how many times any single stream may be moved
  over its lifetime (1 is "almost as good" as unlimited).

Migration is only safe with client staging: the switch gap is played
out of the staging buffer.  With ``switch_delay > 0`` a stream is
eligible only if its current buffer covers the gap; the migrated stream
is *paused* (rate 0) on the target server until the gap ends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.cluster.request import Request
from repro.cluster.server import DataServer
from repro.obs.records import TraceKind
from repro.obs.tracer import Tracer
from repro.placement.base import PlacementMap


@dataclass(frozen=True)
class MigrationPolicy:
    """DRM configuration.

    Attributes:
        enabled: master switch (policies P1/P2/P5/P6 run disabled).
        max_chain_length: streams displaced per admission (paper: 1).
        max_hops_per_request: lifetime migration bound per stream;
            ``None`` means unlimited ("unrestricted hops").
        switch_delay: seconds of transmission gap during a migration;
            eligibility requires the client buffer to cover it.
    """

    enabled: bool = False
    max_chain_length: int = 1
    max_hops_per_request: Optional[int] = 1
    switch_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.max_chain_length < 1:
            raise ValueError(
                f"max_chain_length must be >= 1, got {self.max_chain_length}"
            )
        if (
            self.max_hops_per_request is not None
            and self.max_hops_per_request < 0
        ):
            raise ValueError(
                f"max_hops_per_request must be >= 0 or None, got "
                f"{self.max_hops_per_request}"
            )
        if self.switch_delay < 0:
            raise ValueError(
                f"switch_delay must be >= 0, got {self.switch_delay}"
            )

    @classmethod
    def disabled(cls) -> "MigrationPolicy":
        """No migration (the paper's baseline)."""
        return cls(enabled=False)

    @classmethod
    def paper_default(cls) -> "MigrationPolicy":
        """Chain length 1, one hop per request — the paper's headline
        configuration."""
        return cls(enabled=True, max_chain_length=1, max_hops_per_request=1)

    @classmethod
    def unlimited_hops(cls) -> "MigrationPolicy":
        """Chain length 1 but streams may be moved any number of times."""
        return cls(enabled=True, max_chain_length=1, max_hops_per_request=None)

    def to_dict(self) -> dict:
        """JSON-compatible dict; round-trips via :meth:`from_dict`."""
        from repro.serialize import shallow_dict

        return shallow_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "MigrationPolicy":
        """Build from a (possibly partial) dict; unknown keys raise."""
        from repro.serialize import check_fields

        check_fields(cls, data)
        return cls(**data)


@dataclass(frozen=True)
class MigrationStep:
    """One stream displacement: move *request* from *source* to *target*.

    Steps in a chain are ordered ready-to-execute: each step's target
    has a free slot by the time the step runs.
    """

    request: Request
    source_id: int
    target_id: int


def _eligible(
    request: Request, policy: MigrationPolicy, now: float
) -> bool:
    """Can this stream be displaced right now?"""
    if request.is_paused(now):
        return False  # already mid-switch
    if (
        policy.max_hops_per_request is not None
        and request.hops >= policy.max_hops_per_request
    ):
        return False
    if policy.switch_delay > 0.0:
        needed = policy.switch_delay * request.view_bandwidth
        if request.buffer_occupancy(now) < needed:
            return False
    return True


#: Slot predicate: can *server* take *request* right now?  The default
#: is the minimum-flow test; overbooked admission passes its own.
SlotTest = Callable[[DataServer, Request], bool]


def _minflow_slot_test(server: DataServer, request: Request) -> bool:
    return server.has_slot_for(request)


def find_migration_chain(
    video_id: int,
    servers: Dict[int, DataServer],
    placement: PlacementMap,
    policy: MigrationPolicy,
    now: float,
    slot_test: SlotTest = _minflow_slot_test,
) -> Optional[List[MigrationStep]]:
    """Search for a displacement chain that frees a slot on some holder
    of *video_id*.

    Performs a depth-limited DFS over servers: to free a slot on server
    ``S``, pick an eligible stream on ``S`` whose video has a replica on
    another server ``T``; if ``T`` has a slot the chain ends, otherwise
    recursively free a slot on ``T`` (up to ``max_chain_length`` moves).

    Iteration order is deterministic (server id, then request id), so
    runs are reproducible.

    Returns:
        Steps in execution order (deepest first), or None.  The *last*
        step's ``source_id`` is the holder of *video_id* that ends up
        with the free slot.
    """
    if not policy.enabled:
        return None
    # Non-accepting holders (joining/draining members) are skipped:
    # freeing a slot there would not help the newcomer, which the
    # membership gate refuses regardless.
    entry_holders = [
        servers[sid]
        for sid in placement.holders(video_id)
        if sid in servers and servers[sid].up and servers[sid].accepting
    ]
    # Deterministic preference: fewest active streams first (they are
    # typically all full here, so this mostly falls back to id order).
    entry_holders.sort(key=lambda s: (s.active_count, s.server_id))
    for holder in entry_holders:
        chain = _free_slot(
            holder, servers, placement, policy, now, depth=1,
            visited={holder.server_id}, slot_test=slot_test,
        )
        if chain is not None:
            return chain
    return None


def _free_slot(
    server: DataServer,
    servers: Dict[int, DataServer],
    placement: PlacementMap,
    policy: MigrationPolicy,
    now: float,
    depth: int,
    visited: set,
    slot_test: SlotTest = _minflow_slot_test,
) -> Optional[List[MigrationStep]]:
    """Free one minimum-flow slot on *server* using <= remaining moves."""
    if depth > policy.max_chain_length:
        return None
    movable = [
        r for r in server.iter_active() if _eligible(r, policy, now)
    ]
    movable.sort(key=lambda r: r.request_id)
    # Pass 1: a direct move (keeps chains as short as possible).
    for r in movable:
        for tid in placement.holders(r.video.video_id):
            if tid == server.server_id or tid in visited or tid not in servers:
                continue
            target = servers[tid]
            if target.up and slot_test(target, r):
                return [MigrationStep(r, server.server_id, tid)]
    # Pass 2: recurse — displace a stream from a full target first.
    if depth < policy.max_chain_length:
        for r in movable:
            for tid in placement.holders(r.video.video_id):
                if (
                    tid == server.server_id
                    or tid in visited
                    or tid not in servers
                    or not servers[tid].up
                    or not servers[tid].accepting
                ):
                    continue
                sub = _free_slot(
                    servers[tid],
                    servers,
                    placement,
                    policy,
                    now,
                    depth + 1,
                    visited | {tid},
                    slot_test=slot_test,
                )
                if sub is not None:
                    return sub + [MigrationStep(r, server.server_id, tid)]
    return None


def execute_chain(
    chain: Sequence[MigrationStep],
    managers: Dict[int, "TransmissionManager"],  # noqa: F821 - hint only
    policy: MigrationPolicy,
    now: float,
    tracer: Optional[Tracer] = None,
    cause: str = "admission",
) -> None:
    """Carry out a chain: each stream leaves its source (syncing its
    transfer accounting there), optionally pauses for the switch gap,
    and joins its target.  With a *tracer*, each displacement emits a
    ``request.migrate`` record tagged with its *cause*."""
    for step in chain:
        request = step.request
        managers[step.source_id].migrate_out(request, now)
        if policy.switch_delay > 0.0:
            request.paused_until = now + policy.switch_delay
        request.hops += 1
        managers[step.target_id].migrate_in(request, now)
        if tracer is not None:
            tracer.emit(
                TraceKind.REQUEST_MIGRATE, now,
                request=request.request_id,
                source=step.source_id, target=step.target_id, cause=cause,
            )
