"""Minimum-flow bandwidth allocators, chiefly EFTF (Figure 2).

A *minimum-flow* algorithm gives every unfinished request at least its
view bandwidth; allocators differ only in how they hand out the spare.
The paper's **Earliest Finishing Time First** picks "the active request
with the earliest projected finishing time whose client also has
available buffer space and allocates as much bandwidth to that request
as can be handled by the receiving client" — i.e. spare goes, greedily,
to the stream with the least data left.

Theorem 1: with no receive-bandwidth limit and no pausing, EFTF is
optimal among minimum-flow algorithms.  The alternatives here exist to
*ablate* that choice empirically:

* :class:`NoWorkaheadAllocator` — never uses spare (pure continuous
  transmission; equivalent to a zero staging buffer).
* :class:`ProportionalShareAllocator` — splits spare evenly among
  eligible streams.
* :class:`LFTFAllocator` — anti-EFTF (latest finish first), a straw man
  that shows the greedy direction matters.

Allocators receive requests whose state is already synced to ``now``.
A paused stream (mid-migration switch gap) gets rate 0 — its playback
is covered by the staging buffer, which the migration eligibility check
guarantees.

Performance note: this is the simulator's innermost loop (profiled at
>50 % of wall time before optimisation), so the eligibility test is
inlined arithmetic on request attributes rather than the readable
``Request.headroom`` helper — the two are kept equivalent by tests.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.request import EPS_MB, Request
from repro.cluster.server import DataServer
from repro.registry import Registry

#: Rate tolerance (Mb/s) below which spare bandwidth is considered spent.
EPS_RATE: float = 1e-9

#: A spare-bandwidth candidate: (remaining Mb, request id, request,
#: extra rate the client can take).  The first two fields are the EFTF
#: sort key (ascending remaining = earliest projected finish).
Candidate = Tuple[float, int, Request, float]


class BandwidthAllocator(abc.ABC):
    """Interface: map (server, synced unfinished requests, now) → rates."""

    name: str = "abstract"

    #: Minimum-flow algorithms guarantee every unpaused unfinished
    #: stream at least its view bandwidth; the transmission manager
    #: relies on this to rule out buffer-empty boundaries.  Intermittent
    #: allocators (repro.core.intermittent) set this False.
    minimum_flow: bool = True

    #: Optional observability hook, called as ``obs_hook(server,
    #: requests, rates, now)`` after each allocation pass — the obs
    #: tracer turns these into ``sched.realloc`` records.  This is the
    #: simulator's hottest call site, so the off-path cost is kept to
    #: one ``is None`` check.
    obs_hook = None

    #: Scratch list reused across :meth:`allocate` calls (the simulator
    #: is single-threaded and allocators never retain the list beyond
    #: one ``_distribute_spare`` call, so reuse is safe and avoids one
    #: list allocation per event).
    _scratch: Optional[List[Candidate]] = None

    def allocate(
        self, server: DataServer, requests: Sequence[Request], now: float
    ) -> Dict[int, float]:
        """Return {request_id: rate} covering every request.

        Guarantees (enforced here, not in subclasses):
        * paused streams get 0;
        * all other streams get >= view bandwidth (minimum flow);
        * the sum never exceeds the server link.
        """
        rates: Dict[int, float] = {}
        base = 0.0
        live: List[Request] = []
        live_append = live.append
        for r in requests:
            if now < r.paused_until:
                rates[r.request_id] = 0.0
                continue
            vb = r.view_bandwidth
            if r.playback_pause_time <= now:
                # Viewer hit pause (VCR): nothing drains, so the floor
                # is exempt once the staging buffer cannot absorb it —
                # pumping on would overflow the client.
                viewed = (r.playback_pause_time - r.playback_start) * vb
                head = min(
                    r.client.buffer_capacity - (r.bytes_sent - viewed),
                    r.video.size - r.bytes_sent,
                )
                if head <= EPS_MB:
                    rates[r.request_id] = 0.0
                    continue
            rates[r.request_id] = vb
            base += vb
            live_append(r)
        if base > server.bandwidth + EPS_MB:
            raise RuntimeError(
                f"minimum-flow violated on server {server.server_id}: "
                f"floor {base:.3f} > link {server.bandwidth:.3f} Mb/s"
            )
        spare = server.bandwidth - base
        if spare > EPS_RATE and live:
            candidates = self._scratch
            if candidates is None:
                candidates = []
            else:
                self._scratch = None  # guard against re-entrant use
                candidates.clear()
            append = candidates.append
            for r in live:
                vb = r.view_bandwidth
                client = r.client
                extra_cap = client.receive_bandwidth - vb
                if extra_cap <= EPS_RATE:
                    continue
                sent = r.bytes_sent
                remaining = r.video.size - sent
                if remaining <= EPS_MB:
                    continue
                # Inline of Request.headroom: capacity-side headroom;
                # the data side is covered by the `remaining` check.
                # `played_until` freezes consumption during VCR pauses.
                pause = r.playback_pause_time
                played_until = now if now < pause else pause
                head = client.buffer_capacity - (
                    sent - (played_until - r.playback_start) * vb
                )
                if head <= EPS_MB:
                    continue
                append((remaining, r.request_id, r, extra_cap))
            if candidates:
                self._distribute_spare(rates, candidates, spare)
            candidates.clear()  # drop Request refs before parking
            self._scratch = candidates
        hook = self.obs_hook
        if hook is not None:
            hook(server, requests, rates, now)
        return rates

    def allocate_into(
        self, server: DataServer, requests: Sequence[Request], now: float
    ) -> None:
        """Batched allocation: set ``r.rate`` on every request in place.

        The boundary-event hot path: one vectorized update of the whole
        schedule instead of building a ``{request_id: rate}`` dict and
        round-tripping it back onto the requests (two dict operations
        per stream per event).  The arithmetic — floor sum order,
        candidate order, spare distribution — is exactly
        :meth:`allocate`'s; the equivalence is pinned by property tests
        (``tests/test_schedulers.py``).

        Subclasses that override :meth:`allocate` (the intermittent
        allocator) and allocators with an ``obs_hook`` attached fall
        back to the dict path automatically, so this is always safe to
        call.
        """
        if (
            self.obs_hook is not None
            or type(self).allocate is not BandwidthAllocator.allocate
        ):
            rates = self.allocate(server, requests, now)
            for r in requests:
                r.rate = rates[r.request_id]
            return
        base = 0.0
        live: List[Request] = []
        live_append = live.append
        for r in requests:
            if now < r.paused_until:
                r.rate = 0.0
                continue
            vb = r.view_bandwidth
            if r.playback_pause_time <= now:
                viewed = (r.playback_pause_time - r.playback_start) * vb
                head = min(
                    r.client.buffer_capacity - (r.bytes_sent - viewed),
                    r.video.size - r.bytes_sent,
                )
                if head <= EPS_MB:
                    r.rate = 0.0
                    continue
            r.rate = vb
            base += vb
            live_append(r)
        if base > server.bandwidth + EPS_MB:
            raise RuntimeError(
                f"minimum-flow violated on server {server.server_id}: "
                f"floor {base:.3f} > link {server.bandwidth:.3f} Mb/s"
            )
        spare = server.bandwidth - base
        if spare > EPS_RATE and live:
            candidates = self._scratch
            if candidates is None:
                candidates = []
            else:
                self._scratch = None  # guard against re-entrant use
                candidates.clear()
            append = candidates.append
            for r in live:
                vb = r.view_bandwidth
                client = r.client
                extra_cap = client.receive_bandwidth - vb
                if extra_cap <= EPS_RATE:
                    continue
                sent = r.bytes_sent
                remaining = r.video.size - sent
                if remaining <= EPS_MB:
                    continue
                pause = r.playback_pause_time
                played_until = now if now < pause else pause
                head = client.buffer_capacity - (
                    sent - (played_until - r.playback_start) * vb
                )
                if head <= EPS_MB:
                    continue
                append((remaining, r.request_id, r, extra_cap))
            if candidates:
                self._distribute_spare_into(candidates, spare)
            candidates.clear()  # drop Request refs before parking
            self._scratch = candidates

    def _distribute_spare_into(
        self, candidates: List[Candidate], spare: float
    ) -> None:
        """In-place twin of :meth:`_distribute_spare`: add spare onto
        ``r.rate`` directly.

        Generic fallback: run the dict-based hook over just the
        candidates (a few entries) and write the results back.
        Subclasses on the hot path (EFTF) override with a direct loop.
        """
        rates = {c[1]: c[2].rate for c in candidates}
        self._distribute_spare(rates, candidates, spare)
        for _remaining, rid, r, _cap in candidates:
            r.rate = rates[rid]

    @abc.abstractmethod
    def _distribute_spare(
        self,
        rates: Dict[int, float],
        candidates: List[Candidate],
        spare: float,
    ) -> None:
        """Add *spare* bandwidth into *rates* (mutating) among eligible
        *candidates*."""


class EFTFAllocator(BandwidthAllocator):
    """Earliest Finishing Time First (the paper's Figure 2).

    Iterates eligible streams by ascending remaining data (equivalently
    ascending projected finish), giving each as much as the client can
    take until the spare is gone.  Ties break on request id, making
    allocation deterministic.
    """

    name = "eftf"

    def _distribute_spare(self, rates, candidates, spare):
        candidates.sort()
        for _remaining, rid, _r, extra_cap in candidates:
            extra = spare if spare < extra_cap else extra_cap
            rates[rid] += extra
            spare -= extra
            if spare <= EPS_RATE:
                break

    def _distribute_spare_into(self, candidates, spare):
        # Direct twin of _distribute_spare (the default allocator's
        # per-boundary-event path): same sort, same caps, same
        # early-out — writing r.rate instead of a dict slot.
        candidates.sort()
        for _remaining, _rid, r, extra_cap in candidates:
            extra = spare if spare < extra_cap else extra_cap
            r.rate += extra
            spare -= extra
            if spare <= EPS_RATE:
                break


class LFTFAllocator(BandwidthAllocator):
    """Latest Finishing Time First — the adversarial mirror of EFTF.

    Boosting the stream with the *most* data left keeps every stream
    unfinished for as long as possible, which is exactly what a
    minimum-flow algorithm should avoid.  Exists for ablation.
    """

    name = "lftf"

    def _distribute_spare(self, rates, candidates, spare):
        candidates.sort(key=lambda c: (-c[0], c[1]))
        for _remaining, rid, _r, extra_cap in candidates:
            extra = spare if spare < extra_cap else extra_cap
            rates[rid] += extra
            spare -= extra
            if spare <= EPS_RATE:
                break


class ProportionalShareAllocator(BandwidthAllocator):
    """Split spare evenly among eligible streams (water-filling).

    Repeatedly divides the spare equally, capping at each client's
    receive limit, until the spare is spent or no stream can take more.
    """

    name = "proportional"

    def _distribute_spare(self, rates, candidates, spare):
        # Water-filling: loop because capping one stream frees share for
        # the others.  Terminates in <= len(candidates) rounds.
        remaining_cap = {rid: cap for _rem, rid, _r, cap in candidates}
        pool = list(remaining_cap)
        while spare > EPS_RATE and pool:
            share = spare / len(pool)
            next_round: List[int] = []
            for rid in pool:
                cap = remaining_cap[rid]
                extra = share if share < cap else cap
                if extra > EPS_RATE:
                    rates[rid] += extra
                    spare -= extra
                    remaining_cap[rid] = cap - extra
                    if cap - extra > EPS_RATE:
                        next_round.append(rid)
            if len(next_round) == len(pool):
                break  # nobody capped; share was fully dealt
            pool = next_round


class NoWorkaheadAllocator(BandwidthAllocator):
    """Pure continuous transmission: spare bandwidth is never used.

    Equivalent to every client having a zero staging buffer; the
    baseline the paper's staging curves start from.
    """

    name = "none"

    def _distribute_spare(self, rates, candidates, spare):
        return  # leave the spare idle


#: Scheduler registry used by the simulation config layer; unknown keys
#: raise an actionable :class:`repro.registry.UnknownKeyError`.
ALLOCATORS: Registry[type] = Registry("scheduler")
ALLOCATORS.register(
    "eftf", EFTFAllocator,
    help="Earliest Finishing Time First (the paper's Figure 2; optimal "
         "minimum-flow allocator under Theorem 1)",
)
ALLOCATORS.register(
    "lftf", LFTFAllocator,
    help="Latest Finishing Time First — adversarial EFTF mirror (ablation)",
)
ALLOCATORS.register(
    "proportional", ProportionalShareAllocator,
    help="split spare bandwidth evenly among eligible streams "
         "(water-filling)",
)
ALLOCATORS.register(
    "none", NoWorkaheadAllocator,
    help="pure continuous transmission: spare bandwidth stays idle",
)

# The intermittent allocator subclasses BandwidthAllocator, so it is
# imported at the end of this module to close the cycle and register
# itself alongside the minimum-flow family.
from repro.core.intermittent import IntermittentAllocator  # noqa: E402

ALLOCATORS.register(
    "intermittent", IntermittentAllocator,
    help="intermittent (non-minimum-flow) scheduling; pairs with "
         "overbooked admission",
)
