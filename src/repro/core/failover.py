"""Node failure handling via DRM (Section 3.1's fault-tolerance remark).

"Dynamic request migration can also be used to engineer a limited
degree of fault tolerance into the server since the ability to
dynamically switch servers for a single stream can help deal with node
server failures."

When a server fails, every stream it was serving tries to move to
another replica holder (direct move first, then a bounded DRM chain to
make room).  Streams with no reachable slot are dropped.  Hop limits do
not apply to failover moves — losing the stream is strictly worse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.analysis.metrics import SimulationMetrics
from repro.cluster.request import EPS_MB, Request
from repro.cluster.server import DataServer
from repro.workload.catalog import Video
from repro.core.migration import (
    MigrationPolicy,
    execute_chain,
    find_migration_chain,
)
from repro.core.transmission import TransmissionManager
from repro.obs.records import TraceKind
from repro.obs.tracer import Tracer
from repro.placement.base import PlacementMap
from repro.sim.engine import Engine


@dataclass
class FailoverReport:
    """Outcome of one server failure."""

    server_id: int
    time: float
    relocated: List[int] = field(default_factory=list)  #: request ids saved
    dropped: List[int] = field(default_factory=list)    #: request ids lost

    @property
    def survival_ratio(self) -> float:
        total = len(self.relocated) + len(self.dropped)
        return len(self.relocated) / total if total else 1.0


class FailoverManager:
    """Fail and restore servers, migrating orphaned streams.

    Args:
        engine: simulation engine (for the clock).
        servers: cluster nodes by id.
        managers: transmission managers by server id.
        placement: the replica map (holdings survive a failure — the
            disk is intact, the node is just down).
        metrics: run counters (dropped streams are recorded).
        rescue_policy: chain bounds used when making room for orphans;
            defaults to chain length 1 with unlimited hops.
        tracer: optional obs tracer for fail/recover/drop records.
    """

    def __init__(
        self,
        engine: Engine,
        servers: Dict[int, DataServer],
        managers: Dict[int, TransmissionManager],
        placement: PlacementMap,
        metrics: SimulationMetrics,
        rescue_policy: Optional[MigrationPolicy] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.engine = engine
        self.servers = servers
        self.managers = managers
        self.placement = placement
        self.metrics = metrics
        self.rescue_policy = rescue_policy or MigrationPolicy.unlimited_hops()
        self.tracer = tracer
        self.reports: List[FailoverReport] = []
        #: Called with each stream lost mid-flight (after it is marked
        #: dropped and counted) — the graceful-degradation retry queue
        #: registers here to capture failure orphans.
        self.on_drop: List[Callable[[Request], None]] = []
        #: Called with the :class:`FailoverReport` of each *actual*
        #: server failure (idempotent re-fails do not fire).  The live
        #: chaos plane registers here to mirror a virtual crash into
        #: the serving gateway (killing the server's asyncio task).
        self.on_fail: List[Callable[[FailoverReport], None]] = []
        #: Called with the server id of each *actual* restore — the
        #: live analogue warms the server back up.
        self.on_restore: List[Callable[[int], None]] = []

    # ------------------------------------------------------------------
    def fail_server(self, server_id: int) -> FailoverReport:
        """Take *server_id* down now and relocate its streams.

        Idempotent: failing an already-down server (correlated fault
        plans can draw overlapping outages) is a no-op that emits no
        trace and appends no report.
        """
        now = self.engine.now
        server = self.servers[server_id]
        if not server.up:
            return FailoverReport(server_id=server_id, time=now)
        manager = self.managers[server_id]
        # Account for everything transmitted up to the failure instant.
        manager.flush(now)
        orphans = server.fail()
        manager.deactivate(now)
        if self.tracer is not None:
            self.tracer.emit(
                TraceKind.SERVER_FAIL, now,
                server=server_id, orphans=len(orphans),
            )
        report = FailoverReport(server_id=server_id, time=now)
        for request in orphans:
            request.rate = 0.0
            if self._relocate(request, now):
                report.relocated.append(request.request_id)
            else:
                self._drop(request, server_id, now)
                report.dropped.append(request.request_id)
        self.reports.append(report)
        for hook in self.on_fail:
            hook(report)
        return report

    def restore_server(self, server_id: int) -> None:
        """Bring a failed server back into admission rotation.

        Idempotent: restoring an up server is a no-op (no duplicate
        ``server.recover`` trace, no spurious reallocation).
        """
        server = self.servers[server_id]
        if server.up:
            return
        server.restore()
        self.managers[server_id].reallocate(self.engine.now)
        if self.tracer is not None:
            self.tracer.emit(
                TraceKind.SERVER_RECOVER, self.engine.now, server=server_id
            )
        for hook in self.on_restore:
            hook(server_id)

    # ------------------------------------------------------------------
    # Partial degradation (beyond binary fail/restore)
    # ------------------------------------------------------------------
    def degrade_server(self, server_id: int, factor: float) -> FailoverReport:
        """Scale *server_id*'s outbound link to ``factor * nominal``.

        Streams whose minimum-flow floor no longer fits are shed
        newest-first (they have the most data left to lose the least
        progress) and relocated like failure orphans; the survivors are
        then reallocated inside the reduced link.  A no-op on a down
        server (the link does not matter while the node is out).
        """
        now = self.engine.now
        server = self.servers[server_id]
        report = FailoverReport(server_id=server_id, time=now)
        if not server.up:
            return report
        manager = self.managers[server_id]
        manager.flush(now)
        server.set_link_scale(factor)
        victims: List[Request] = []
        active = list(server.iter_active())
        while server.reserved_bandwidth > server.bandwidth + EPS_MB and active:
            victim = active.pop()  # newest admission first
            server.detach(victim)
            victim.rate = 0.0
            victims.append(victim)
        for request in victims:
            if self._relocate(request, now, exclude=server_id):
                report.relocated.append(request.request_id)
            else:
                self._drop(request, server_id, now)
                report.dropped.append(request.request_id)
        manager.reallocate(now)
        if self.tracer is not None:
            self.tracer.emit(
                TraceKind.SERVER_DEGRADE, now,
                server=server_id, factor=factor, shed=len(victims),
            )
        self.reports.append(report)
        return report

    def restore_link(self, server_id: int) -> None:
        """Return a degraded server's link to nominal capacity."""
        now = self.engine.now
        server = self.servers[server_id]
        if not server.degraded:
            return
        server.set_link_scale(1.0)
        if server.up:
            self.managers[server_id].reallocate(now)
        if self.tracer is not None:
            self.tracer.emit(
                TraceKind.SERVER_LINK_RESTORE, now, server=server_id
            )

    def lose_replica(self, server_id: int, video: Video) -> FailoverReport:
        """Destroy *server_id*'s on-disk replica of *video*.

        Streams of that video currently served there are orphaned and
        relocated to the surviving holders (or dropped); the placement
        map forgets the holder so admission stops routing here.  A no-op
        when the server holds no such replica.
        """
        now = self.engine.now
        server = self.servers[server_id]
        report = FailoverReport(server_id=server_id, time=now)
        if not server.holds(video.video_id):
            return report
        manager = self.managers[server_id]
        if server.up:
            manager.flush(now)
        orphans = [
            r for r in server.iter_active()
            if r.video.video_id == video.video_id
        ]
        for request in orphans:
            server.detach(request)
            request.rate = 0.0
        server.drop_replica(video)
        self.placement.remove_holder(video.video_id, server_id)
        if self.tracer is not None:
            self.tracer.emit(
                TraceKind.SERVER_REPLICA_LOSS, now,
                server=server_id, video=video.video_id, orphans=len(orphans),
            )
        for request in orphans:
            if self._relocate(request, now):
                report.relocated.append(request.request_id)
            else:
                self._drop(request, server_id, now)
                report.dropped.append(request.request_id)
        if server.up:
            manager.reallocate(now)
        self.reports.append(report)
        return report

    # ------------------------------------------------------------------
    def _drop(self, request: Request, server_id: int, now: float) -> None:
        """Mark an unrescuable orphan dropped and notify subscribers."""
        request.mark_dropped(now)
        self.metrics.record_drop()
        if self.tracer is not None:
            self.tracer.emit(
                TraceKind.REQUEST_DROP, now,
                request=request.request_id, server=server_id,
            )
        for hook in self.on_drop:
            hook(request)

    def _relocate(
        self, request: Request, now: float, exclude: Optional[int] = None
    ) -> bool:
        """Find the orphan a new home: direct slot, else a DRM chain."""
        video_id = request.video.video_id
        holders = [
            self.servers[sid]
            for sid in self.placement.holders(video_id)
            if sid in self.servers and self.servers[sid].up
            and sid != exclude
        ]
        holders.sort(key=lambda s: (s.active_count, s.server_id))
        for target in holders:
            if target.has_slot_for(request):
                self._move(request, target.server_id, now)
                return True
        chain = find_migration_chain(
            video_id, self.servers, self.placement, self.rescue_policy, now
        )
        if chain is not None:
            execute_chain(
                chain, self.managers, self.rescue_policy, now,
                tracer=self.tracer, cause="failover",
            )
            freed = self.servers[chain[-1].source_id]
            if freed.has_slot_for(request):
                self._move(request, freed.server_id, now)
                self.metrics.record_migration(len(chain))
                return True
        return False

    def _move(self, request: Request, target_id: int, now: float) -> None:
        """Attach an already-detached orphan to *target_id*."""
        if self.rescue_policy.switch_delay > 0.0:
            request.paused_until = now + self.rescue_policy.switch_delay
        request.hops += 1
        self.metrics.record_relocation()
        source_id = request.server_id
        self.managers[target_id].migrate_in(request, now)
        if self.tracer is not None:
            self.tracer.emit(
                TraceKind.REQUEST_MIGRATE, now,
                request=request.request_id,
                source=source_id, target=target_id, cause="failover",
            )
