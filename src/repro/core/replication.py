"""Dynamic replication: the resource-intensive alternative to DRM.

Section 3.1 contrasts DRM with the heavier tradition the related work
pursues: "more resource intensive solutions perform dynamic replication
of the requested object on another server where resources can be made
available" (cf. Dan/Kienzle/Sitaram's dynamic segment replication [9]
and Chou/Golubchik/Lui [7]).  This module implements that alternative
so the two can be compared head-to-head (EXT-DR).

Model:

* Every **rejection** of a request for video ``v`` is a demand signal.
  Once ``v`` accumulates ``trigger_rejections`` of them, a new replica
  is commissioned on the least-loaded live server with disk space that
  does not already hold ``v``.
* The copy streams from **tertiary storage** (part of the paper's
  Figure 1 architecture) at ``copy_bandwidth`` Mb/s, so it costs no
  data-server egress but takes ``size / copy_bandwidth`` seconds before
  the replica serves requests.
* If the chosen server lacks disk space, the replicator may **evict** a
  cold replica: one whose video has another copy elsewhere and no
  active stream on this server.
* At most ``max_concurrent_copies`` transfers run at once; a video with
  a copy already in flight is not replicated again.

De-replication on demand decay is intentionally rejection-driven too:
a video that stops being rejected simply stops gaining copies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.cluster.request import Request
from repro.cluster.server import DataServer
from repro.core.admission import AdmissionOutcome
from repro.placement.base import PlacementMap
from repro.sim.engine import Engine
from repro.workload.catalog import VideoCatalog


@dataclass(frozen=True)
class ReplicationPolicy:
    """Configuration of the dynamic replicator.

    Attributes:
        copy_bandwidth: tertiary-to-server transfer rate, Mb/s.  The
            default (100 Mb/s) copies a feature film in ~3 minutes.
        trigger_rejections: rejections of a video that commission a new
            replica.
        max_concurrent_copies: transfer parallelism bound.
        allow_eviction: permit dropping cold replicas to make room.
    """

    copy_bandwidth: float = 100.0
    trigger_rejections: int = 3
    max_concurrent_copies: int = 4
    allow_eviction: bool = True

    def __post_init__(self) -> None:
        if self.copy_bandwidth <= 0:
            raise ValueError(
                f"copy bandwidth must be positive, got {self.copy_bandwidth}"
            )
        if self.trigger_rejections < 1:
            raise ValueError(
                f"trigger_rejections must be >= 1, got {self.trigger_rejections}"
            )
        if self.max_concurrent_copies < 1:
            raise ValueError(
                f"max_concurrent_copies must be >= 1, "
                f"got {self.max_concurrent_copies}"
            )

    def to_dict(self) -> dict:
        """JSON-compatible dict; round-trips via :meth:`from_dict`."""
        from repro.serialize import shallow_dict

        return shallow_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ReplicationPolicy":
        """Build from a (possibly partial) dict; unknown keys raise."""
        from repro.serialize import check_fields

        check_fields(cls, data)
        return cls(**data)


class DynamicReplicator:
    """Rejection-driven replica management.

    Wire it to a :class:`DistributionController` via
    :meth:`observe` (the controller's ``on_decision`` hook), e.g.::

        replicator = DynamicReplicator(engine, servers, placement, catalog)
        controller.on_decision = replicator.observe
    """

    def __init__(
        self,
        engine: Engine,
        servers: Dict[int, DataServer],
        placement: PlacementMap,
        catalog: VideoCatalog,
        policy: Optional[ReplicationPolicy] = None,
    ) -> None:
        self.engine = engine
        self.servers = servers
        self.placement = placement
        self.catalog = catalog
        self.policy = policy or ReplicationPolicy()
        self.rejections_since_copy: Dict[int, int] = {}
        self.in_flight: Set[int] = set()   #: video ids being copied
        self.replications = 0
        self.evictions = 0
        self.failed_attempts = 0

    # ------------------------------------------------------------------
    def observe(self, outcome: AdmissionOutcome, request: Request) -> None:
        """Controller hook: feed every admission decision in."""
        if outcome is not AdmissionOutcome.REJECTED:
            return
        vid = request.video.video_id
        count = self.rejections_since_copy.get(vid, 0) + 1
        self.rejections_since_copy[vid] = count
        if count >= self.policy.trigger_rejections:
            if self._start_copy(vid):
                self.rejections_since_copy[vid] = 0

    # ------------------------------------------------------------------
    def _start_copy(self, video_id: int) -> bool:
        """Commission a replica of *video_id* if the policy allows."""
        if video_id in self.in_flight:
            return False
        if len(self.in_flight) >= self.policy.max_concurrent_copies:
            return False
        video = self.catalog[video_id]
        target = self._choose_target(video_id)
        if target is None:
            self.failed_attempts += 1
            return False
        if not target.can_store(video) and self.policy.allow_eviction:
            self._evict_for(target, video_id, video.size)
        if not target.can_store(video):
            self.failed_attempts += 1
            return False
        # Reserve disk now so no one races the in-flight copy, but only
        # publish the placement entry when the transfer completes.
        target.store_replica(video)
        self.in_flight.add(video_id)
        delay = video.size / self.policy.copy_bandwidth
        self.engine.schedule(
            delay,
            lambda: self._finish_copy(video_id, target.server_id),
            kind=f"replicate:video{video_id}",
        )
        return True

    def _finish_copy(self, video_id: int, server_id: int) -> None:
        self.in_flight.discard(video_id)
        server = self.servers[server_id]
        if not server.up:
            # Node died mid-copy; drop the reservation.
            server.drop_replica(self.catalog[video_id])
            self.failed_attempts += 1
            return
        self.placement.add_holder(video_id, server_id)
        self.replications += 1

    # ------------------------------------------------------------------
    def _choose_target(self, video_id: int) -> Optional[DataServer]:
        """Least-loaded live non-holder, preferring servers with space."""
        holders = set(self.placement.holders(video_id))
        video = self.catalog[video_id]
        # `accepting` keeps draining/warming members out: a server on
        # its way off the cluster must not gain fresh replicas.
        candidates = [
            s
            for s in self.servers.values()
            if s.up and s.accepting and s.server_id not in holders
        ]
        if not candidates:
            return None
        with_space = [s for s in candidates if s.can_store(video)]
        pool = with_space or (
            candidates if self.policy.allow_eviction else []
        )
        if not pool:
            return None
        return min(pool, key=lambda s: (s.active_count, s.server_id))

    def _evict_for(
        self, server: DataServer, incoming_video_id: int, needed: float
    ) -> None:
        """Drop cold replicas on *server* until *needed* Mb fit.

        A replica is evictable when its video keeps a copy elsewhere,
        no active stream on this server is playing it, and no copy of
        it is in flight.
        """
        active_videos = {
            r.video.video_id for r in server.iter_active()
        }
        # Coldest first: fewest recent rejections, then largest size
        # (frees space fastest), then id for determinism.
        evictable = [
            vid
            for vid in self.placement.videos_on(server.server_id)
            if vid != incoming_video_id
            and vid not in active_videos
            and vid not in self.in_flight
            and self.placement.copies(vid) > 1
        ]
        evictable.sort(
            key=lambda vid: (
                self.rejections_since_copy.get(vid, 0),
                -self.catalog[vid].size,
                vid,
            )
        )
        for vid in evictable:
            if server.storage_free >= needed:
                break
            server.drop_replica(self.catalog[vid])
            self.placement.remove_holder(vid, server.server_id)
            self.evictions += 1
