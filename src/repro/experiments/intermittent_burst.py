"""EXT-INT — intermittent transmission under bursty demand.

Section 3.3 defines the *intermittent* class ("a stream alternates
between periods of transmission and no transmission") and sets it aside
because the optimal decision procedure "is impractical to apply in real
time".  This experiment evaluates a practical member of that class
(:mod:`repro.core.intermittent` with overbooked admission) against the
paper's minimum-flow EFTF:

The headline is a **negative result that supports the paper's design
choice**: across stationary and bursty demand alike, the overbooked
intermittent heuristic matches minimum-flow EFTF's acceptance to within
noise while accumulating underruns that grow with burst intensity.
The reason is that EFTF's workahead already *finishes* streams early —
freeing whole slots — so parking buys nothing that early completion
didn't, and the parked streams' post-burst resume pressure converts
directly into viewer glitches.  Restricting to minimum-flow algorithms
(as the paper does, backed by Theorem 1) loses essentially nothing.

Both schedulers replay the *same* bursty trace (paired comparison).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.report import render_table
from repro.cluster.system import SMALL_SYSTEM, SystemConfig
from repro.core.migration import MigrationPolicy
from repro.experiments.base import ExperimentScale, resolve_scale
from repro.experiments.registry import Artifact, ExperimentSpec, register
from repro.simulation import Simulation, SimulationConfig
from repro.sim.rng import RandomStreams
from repro.units import hours
from repro.workload.trace import Trace, generate_bursty_trace
from repro.workload.zipf import ZipfPopularity

#: Burst intensities swept (arrival-rate multiplier inside the burst).
BURST_MULTIPLIERS: Sequence[float] = (1.0, 1.5, 2.0, 3.0)


def _build_trace(
    system: SystemConfig,
    duration: float,
    multiplier: float,
    theta: float,
    seed: int,
) -> Trace:
    """Base load at 85 % of capacity with half-hour bursts every 2 h."""
    streams = RandomStreams(seed=seed)
    popularity = ZipfPopularity(system.n_videos, theta)
    probe = Simulation(SimulationConfig(
        system=system, theta=theta, duration=60.0, seed=seed, load=0.85,
    ))
    bursts = []
    t = hours(1)
    while t + hours(0.5) < duration:
        bursts.append((t, hours(0.5), multiplier))
        t += hours(2)
    return generate_bursty_trace(
        duration, probe.arrival_rate, popularity,
        streams.get("burst-trace"), bursts=bursts,
    )


def _replay(
    system: SystemConfig,
    trace: Trace,
    duration: float,
    theta: float,
    seed: int,
    scheduler: str,
    admission: str,
) -> Dict[str, float]:
    config = SimulationConfig(
        system=system, theta=theta, placement="even",
        migration=MigrationPolicy.paper_default(),
        staging_fraction=0.2,     # deep enough to park, too shallow to finish early
        scheduler=scheduler, admission=admission,
        duration=duration, seed=seed, client_receive_bandwidth=30.0,
    )
    sim = Simulation(config)
    sim._arrivals.stop()
    trace.schedule_on(sim.engine, sim.controller.submit)
    result = sim.run()
    return {
        "acceptance": result.acceptance_ratio,
        "utilization": result.utilization,
        "underruns": float(result.underruns),
    }


def run_intermittent_burst(
    system: SystemConfig = SMALL_SYSTEM,
    multipliers: Sequence[float] = BURST_MULTIPLIERS,
    theta: float = 0.27,
    scale: Optional[float] = None,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Sweep burst intensity; returns rows for both schedulers."""
    exp_scale: ExperimentScale = resolve_scale(scale)
    duration = exp_scale.duration
    rows: List[List[object]] = []
    for mult in multipliers:
        trace = _build_trace(system, duration, mult, theta, seed)
        minflow = _replay(system, trace, duration, theta, seed,
                          scheduler="eftf", admission="minflow")
        overbook = _replay(system, trace, duration, theta, seed,
                           scheduler="intermittent", admission="overbook")
        rows.append([
            mult,
            minflow["acceptance"],
            overbook["acceptance"],
            overbook["acceptance"] - minflow["acceptance"],
            int(overbook["underruns"]),
        ])
        if progress is not None:
            progress(
                f"burst x{mult:g}: minflow={minflow['acceptance']:.4f} "
                f"overbook={overbook['acceptance']:.4f} "
                f"underruns={int(overbook['underruns'])}"
            )
    return {"multipliers": list(multipliers), "rows": rows, "scale": exp_scale}


def render_intermittent_burst(result: Dict[str, object]) -> str:
    scale: ExperimentScale = result["scale"]  # type: ignore[assignment]
    return render_table(
        ["burst x", "accept (minflow EFTF)", "accept (intermittent)",
         "delta", "underruns"],
        result["rows"],  # type: ignore[arg-type]
        title=(
            "EXT-INT: overbooked intermittent vs minimum-flow EFTF under "
            f"bursty demand  [{scale.describe()}]"
        ),
    )


# ----------------------------------------------------------------------
# CLI self-registration (see repro.experiments.registry)
# ----------------------------------------------------------------------

def _cli_run(args, progress) -> int:
    result = run_intermittent_burst(
        scale=args.scale, seed=args.seed, progress=progress,
    )
    print(render_intermittent_burst(result))
    return 0


def _cli_artifacts(scale, seed, progress):
    result = run_intermittent_burst(
        scale=scale, seed=seed, progress=progress,
    )
    yield Artifact(
        stem="ext_int", title="EXT-INT",
        text=render_intermittent_burst(result),
    )


register(ExperimentSpec(
    name="burst",
    help="intermittent scheduling under bursty demand (EXT-INT)",
    run_cli=_cli_run,
    artifacts=_cli_artifacts,
    order=110,
))


def main() -> None:  # pragma: no cover - CLI glue, exercised via repro.cli
    result = run_intermittent_burst(progress=print)
    print()
    print(render_intermittent_burst(result))


if __name__ == "__main__":  # pragma: no cover
    main()
