"""EXT-DR — dynamic replication vs. static placement (Section 3.1).

The paper's DRM is the *lightweight* answer to saturated replica
holders; the related work's answer is **dynamic replication** ("more
resource intensive solutions perform dynamic replication of the
requested object on another server").  This experiment runs both on the
worst case for static even placement — strongly skewed demand — and
shows the trade:

* static even placement + DRM + staging collapses for θ < 0 (the paper
  Figure 7 result);
* adding the rejection-driven replicator recovers near-predictive
  utilization *without* any demand oracle, at the cost of replica
  traffic and disk churn;
* the predictive oracle is the reference ceiling.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.cluster.system import LARGE_SYSTEM, SystemConfig
from repro.core.migration import MigrationPolicy
from repro.core.replication import ReplicationPolicy
from repro.experiments.base import (
    ExperimentScale,
    SweepResult,
    Variant,
    resolve_scale,
    run_sweep,
)
from repro.experiments.registry import Artifact, ExperimentSpec, register
from repro.simulation import SimulationConfig

#: θ grid focused on the regime where static even placement fails.
SKEWED_THETA_GRID: List[float] = [-1.5, -1.0, -0.5, 0.0]

VARIANTS: List[Variant] = [
    Variant("even (static)", {"placement": "even"}),
    Variant(
        "even + dynamic replication",
        {"placement": "even", "replication": ReplicationPolicy()},
    ),
    Variant("predictive (oracle)", {"placement": "predictive"}),
]


def run_dynamic_replication(
    system: SystemConfig = LARGE_SYSTEM,
    theta_values: Optional[List[float]] = None,
    scale: Optional[float] = None,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Utilization vs θ for static / replicating / oracle placements."""
    exp_scale: ExperimentScale = resolve_scale(scale)
    base = SimulationConfig(
        system=system,
        theta=0.0,
        migration=MigrationPolicy.paper_default(),
        staging_fraction=0.2,
        scheduler="eftf",
        duration=exp_scale.duration,
        warmup=exp_scale.warmup,
        seed=seed,
        client_receive_bandwidth=30.0,
    )
    return run_sweep(
        base,
        theta_values if theta_values is not None else SKEWED_THETA_GRID,
        VARIANTS,
        exp_scale,
        base_seed=seed,
        progress=progress,
    )


# ----------------------------------------------------------------------
# CLI self-registration (see repro.experiments.registry)
# ----------------------------------------------------------------------

def _cli_run(args, progress) -> int:
    result = run_dynamic_replication(
        scale=args.scale, seed=args.seed, progress=progress,
    )
    print(result.render(
        title="EXT-DR: dynamic replication vs static placement"
    ))
    return 0


def _cli_artifacts(scale, seed, progress):
    result = run_dynamic_replication(
        scale=scale, seed=seed, progress=progress,
    )
    yield Artifact(
        stem="ext_dr", title="EXT-DR",
        text=result.render(title="EXT-DR"), sweep=result,
    )


register(ExperimentSpec(
    name="replication",
    help="dynamic replication vs static placement (EXT-DR)",
    run_cli=_cli_run,
    artifacts=_cli_artifacts,
    order=60,
))


def main() -> None:  # pragma: no cover - CLI glue, exercised via repro.cli
    result = run_dynamic_replication(progress=print)
    print()
    print(result.render(
        title="EXT-DR: dynamic replication vs static placement (large system)"
    ))


if __name__ == "__main__":  # pragma: no cover
    main()
