"""Availability under chaos — accepted-stream availability vs MTBF.

The paper stops at the observation that DRM "can help deal with node
server failures" (Section 3.1); this experiment quantifies it.  A
seeded :class:`~repro.faults.FaultPlan` crashes servers with
exponential MTBF/MTTR while a bounded retry queue
(:class:`~repro.faults.RetryPolicy`) resubmits the victims; the
measured metric is the :class:`~repro.SimulationResult` ``availability``
— the fraction of distinct viewers not permanently denied service.

Curves: **EFTF + DRM** (failover can relocate orphans through migration
chains) vs **no DRM** (orphans survive only if a direct replica slot is
free).  Expected shape: availability rises with MTBF for both curves
and the DRM curve dominates, with the gap widest at low MTBF where
relocation happens constantly.

The x-axis is the per-server MTBF in *hours* — not a flat
``SimulationConfig`` field, so the sweep uses :func:`run_sweep`'s
``x_apply`` hook to rebuild the nested plan per grid point.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional

from repro.cluster.system import SMALL_SYSTEM, SYSTEMS, SystemConfig
from repro.core.migration import MigrationPolicy
from repro.experiments.base import (
    ExperimentScale,
    SweepResult,
    Variant,
    resolve_scale,
    run_sweep,
)
from repro.faults import CrashFaults, FaultPlan, RetryPolicy
from repro.experiments.registry import ExperimentSpec, register
from repro.simulation import SimulationConfig
from repro.units import hours

#: Per-server mean-time-between-failures grid, hours.
MTBF_GRID_HOURS: List[float] = [0.5, 1.0, 2.0, 4.0, 8.0]

#: Repair time is held fixed so the x-axis isolates failure frequency.
MTTR_HOURS: float = 0.25


def availability_variants() -> List[Variant]:
    """EFTF+DRM vs no-DRM (admission *and* failover rescue differ)."""
    return [
        Variant("EFTF + DRM", {"migration": MigrationPolicy.paper_default()}),
        Variant("no DRM", {"migration": MigrationPolicy.disabled()}),
    ]


def _apply_mtbf(config: SimulationConfig, mtbf_hours: float) -> SimulationConfig:
    """Rebuild the nested fault plan for one x grid point."""
    return dataclasses.replace(
        config,
        faults=FaultPlan(
            crash=CrashFaults(
                mtbf=hours(mtbf_hours), mttr=hours(MTTR_HOURS)
            ),
            start=config.warmup,
        ),
    )


def run_availability(
    system: SystemConfig = SMALL_SYSTEM,
    mtbf_values: Optional[List[float]] = None,
    scale: Optional[float] = None,
    seed: int = 0,
    theta: float = 0.3,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Sweep availability vs per-server MTBF, EFTF+DRM vs no-DRM."""
    exp_scale: ExperimentScale = resolve_scale(scale)
    base = SimulationConfig(
        system=system,
        theta=theta,
        placement="even",
        staging_fraction=0.2,
        scheduler="eftf",
        duration=exp_scale.duration,
        warmup=exp_scale.warmup,
        seed=seed,
        retry=RetryPolicy(),
    )
    return run_sweep(
        base,
        mtbf_values if mtbf_values is not None else MTBF_GRID_HOURS,
        availability_variants(),
        exp_scale,
        metric="availability",
        x_field="mtbf_hours",
        base_seed=seed,
        progress=progress,
        x_apply=_apply_mtbf,
    )


# ----------------------------------------------------------------------
# CLI self-registration (see repro.experiments.registry)
# ----------------------------------------------------------------------

def _cli_run(args, progress) -> int:
    result = run_availability(
        system=SYSTEMS[args.system], scale=args.scale,
        seed=args.seed, progress=progress,
    )
    print(result.render(
        title=f"Availability vs MTBF ({args.system} system)"
    ))
    return 0


register(ExperimentSpec(
    name="availability",
    help="availability vs MTBF, EFTF+DRM vs no-DRM",
    run_cli=_cli_run,
), chaos=True)


def main() -> None:  # pragma: no cover - CLI glue, exercised via repro.cli
    result = run_availability(progress=print)
    print()
    print(result.render(title="Availability vs MTBF (chaos, small system)"))


if __name__ == "__main__":  # pragma: no cover
    main()
