"""EXT-SOAK: one seeded, invariant-checked chaos run.

``repro chaos soak`` drives a single simulation with every fault class
active — crash/repair cycling (with correlation), link brownouts and
replica loss — plus the graceful-degradation retry queue, all under the
online :class:`~repro.faults.InvariantChecker`.  Any conservation
violation aborts the run with exit code 1; this is the CI chaos-soak
job's gate (docs/ROBUSTNESS.md).
"""

from __future__ import annotations

import sys
from typing import Optional, Tuple

from repro.cluster.request import reset_request_ids
from repro.cluster.system import SYSTEMS, SystemConfig
from repro.core.migration import MigrationPolicy
from repro.experiments.registry import ExperimentSpec, register
from repro.faults import (
    CrashFaults,
    FaultPlan,
    InvariantViolation,
    LinkFaults,
    ReplicaFaults,
    RetryPolicy,
)
from repro.simulation import Simulation, SimulationConfig, SimulationResult
from repro.units import hours


def soak_config(
    system: SystemConfig,
    mtbf_hours: float = 1.0,
    sim_hours: float = 8.0,
    seed: int = 0,
) -> SimulationConfig:
    """The soak scenario: all three fault classes + retry + invariants."""
    mtbf = hours(mtbf_hours)
    return SimulationConfig(
        system=system,
        theta=0.3,
        placement="even",
        migration=MigrationPolicy.paper_default(),
        staging_fraction=0.2,
        duration=hours(sim_hours),
        seed=seed,
        faults=FaultPlan(
            crash=CrashFaults(mtbf=mtbf, mttr=mtbf / 4.0, correlation=0.1),
            link=LinkFaults(mtbf=mtbf * 1.5, mttr=mtbf / 2.0),
            replica=ReplicaFaults(mean_interval=mtbf * 2.0),
        ),
        retry=RetryPolicy(),
        invariants=True,
    )


def run_soak(
    config: SimulationConfig,
) -> Tuple[Optional[SimulationResult], int]:
    """Run one invariant-checked chaos simulation.

    Returns ``(result, checks_run)``; *result* is None when an
    invariant violation aborted the run (the violation is printed to
    stderr).
    """
    reset_request_ids()
    sim = Simulation(config)
    try:
        result = sim.run()
    except InvariantViolation as violation:
        print(f"INVARIANT VIOLATION: {violation}", file=sys.stderr)
        return None, sim.invariant_checker.checks_run
    return result, sim.invariant_checker.checks_run


# ----------------------------------------------------------------------
# CLI self-registration (see repro.experiments.registry)
# ----------------------------------------------------------------------
def _cli_arguments(parser) -> None:
    parser.add_argument(
        "--mtbf-hours", type=float, default=1.0,
        help="(soak) per-server mean time between crashes",
    )
    parser.add_argument(
        "--hours", type=float, default=8.0, dest="sim_hours",
        help="(soak) simulated hours",
    )


def _cli_run(args, progress) -> int:
    config = soak_config(
        system=SYSTEMS[args.system],
        mtbf_hours=args.mtbf_hours,
        sim_hours=args.sim_hours,
        seed=args.seed,
    )
    result, checks = run_soak(config)
    if result is None:
        return 1
    print(result)
    print(
        f"  faults={result.faults_injected} dropped={result.dropped} "
        f"retries={result.retries} exhausted={result.retry_exhausted} "
        f"availability={result.availability:.4f}"
    )
    print(f"  invariants clean ({checks} state sweeps)")
    return 0


register(ExperimentSpec(
    name="soak",
    help="one seeded chaos run with the online invariant "
         "checker (exit 1 on any violation)",
    run_cli=_cli_run,
    add_arguments=_cli_arguments,
), chaos=True)
