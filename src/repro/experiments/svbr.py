"""EXT-SVBR — utilization vs server-to-view bandwidth ratio.

Section 3.2 attributes much of the baseline robustness to the **large
server-to-view bandwidth ratio** and refers to an analytic expression
for one-server utilization (the full version, TR 01-47).  A single
server under continuous transmission is an Erlang loss system
(M/G/m/m with m = SVBR), so the analytic curve is ``1 − B(m, m)`` —
see :mod:`repro.analysis.erlang`.

This experiment sweeps SVBR on a one-server system and overlays the
simulated utilization with the analytic curve; their agreement is the
paper's own validation of the simulator, reproduced here (and enforced
by an integration test).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.erlang import erlang_b_utilization
from repro.analysis.report import render_series
from repro.analysis.stats import SummaryStats, summarize
from repro.cluster.system import SystemConfig, homogeneous
from repro.core.migration import MigrationPolicy
from repro.experiments.base import (
    ExperimentScale,
    resolve_scale,
    run_trials,
)
from repro.experiments.registry import Artifact, ExperimentSpec, register
from repro.simulation import SimulationConfig
from repro.units import minutes

#: Default SVBR grid (streams per server); 33 and 100 are the paper's
#: small- and large-system operating points.
SVBR_GRID: Sequence[int] = (5, 10, 20, 33, 50, 100)


def one_server_system(svbr: int, view_bandwidth: float = 3.0) -> SystemConfig:
    """A single-server system with the given stream capacity.

    The catalog is small (every video on the one server) so placement
    is immaterial; lengths use the small-system range.
    """
    return homogeneous(
        name=f"svbr{svbr}",
        n_servers=1,
        bandwidth=svbr * view_bandwidth,
        disk_capacity_gb=1000.0,
        n_videos=20,
        video_length_range=(minutes(10), minutes(30)),
        avg_copies=1.0,
        view_bandwidth=view_bandwidth,
    )


def run_svbr(
    svbr_values: Sequence[int] = SVBR_GRID,
    theta: float = 0.27,
    load: float = 1.0,
    scale: Optional[float] = None,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Sweep SVBR: simulated vs Erlang-B analytic utilization.

    Returns a dict with ``svbr`` (grid), ``simulated`` (list of
    :class:`SummaryStats`), ``analytic`` (floats) and ``scale``.
    """
    exp_scale: ExperimentScale = resolve_scale(scale)
    simulated: List[SummaryStats] = []
    analytic: List[float] = []
    for svbr in svbr_values:
        system = one_server_system(int(svbr))
        config = SimulationConfig(
            system=system,
            theta=theta,
            placement="even",
            migration=MigrationPolicy.disabled(),
            staging_fraction=0.0,      # continuous transmission
            scheduler="none",
            duration=exp_scale.duration,
            warmup=exp_scale.warmup,
            load=load,
            seed=seed,
        )
        results = run_trials(config, exp_scale.trials, base_seed=seed)
        stats = summarize([r.utilization for r in results])
        simulated.append(stats)
        analytic.append(erlang_b_utilization(int(svbr), load=load))
        if progress is not None:
            progress(
                f"svbr={svbr:>4d} simulated={stats.mean:.4f} "
                f"analytic={analytic[-1]:.4f}"
            )
    return {
        "svbr": [int(v) for v in svbr_values],
        "simulated": simulated,
        "analytic": analytic,
        "scale": exp_scale,
    }


def render_svbr(result: Dict[str, object]) -> str:
    """ASCII series of the EXT-SVBR comparison."""
    scale: ExperimentScale = result["scale"]  # type: ignore[assignment]
    return render_series(
        "svbr",
        result["svbr"],  # type: ignore[arg-type]
        {
            "simulated": [s.mean for s in result["simulated"]],  # type: ignore[union-attr]
            "erlang-B": result["analytic"],  # type: ignore[dict-item]
        },
        title=(
            "EXT-SVBR: one-server utilization vs SVBR  "
            f"[{scale.describe()}]"
        ),
    )


# ----------------------------------------------------------------------
# CLI self-registration (see repro.experiments.registry)
# ----------------------------------------------------------------------

def _cli_run(args, progress) -> int:
    result = run_svbr(scale=args.scale, seed=args.seed, progress=progress)
    print(render_svbr(result))
    return 0


def _cli_artifacts(scale, seed, progress):
    result = run_svbr(scale=scale, seed=seed, progress=progress)
    yield Artifact(
        stem="ext_svbr", title="EXT-SVBR", text=render_svbr(result),
    )


register(ExperimentSpec(
    name="svbr",
    help="utilization vs SVBR + Erlang-B (EXT-SVBR)",
    run_cli=_cli_run,
    artifacts=_cli_artifacts,
    order=90,
))


def main() -> None:  # pragma: no cover - CLI glue, exercised via repro.cli
    result = run_svbr(progress=print)
    print()
    print(render_svbr(result))


if __name__ == "__main__":  # pragma: no cover
    main()
