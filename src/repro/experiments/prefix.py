"""EXT-PREFIX: the prefix-cache / stream-sharing gate — ``repro prefix``.

Runs a committed scenario's ``prefix`` block (docs/CACHING.md) and
produces the tier's headline figure plus two supporting sweeps:

* the **capacity figure** — the scenario at its (≥100%) offered load
  with the configured tier versus the ``none``-strategy/no-chaining
  baseline, same seed.  The tier's rejection rate must be *strictly*
  below the baseline's, and chained sessions must record zero
  underruns;
* the **hit-rate sweep** — cache hit rate across Zipf θ values (skew
  helps a popularity-ranked cache; uniform demand dilutes it);
* the **window sweep** — shared/chained sessions and rejection rate
  across batching windows (bigger windows share more, bounded by the
  cached prefix length under ``window`` batching);
* the **determinism digest** — the whole report is computed twice at
  the same seed; the two canonical-JSON digests must be byte-identical
  (the CI prefix-smoke job's gate).

Any audit failure exits 1.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import sys
from typing import Any, Dict, List, Optional

from repro.experiments.registry import ExperimentSpec, register
from repro.scenario import load_scenario
from repro.simulation import SimulationConfig, run_simulation

#: Default committed scenario (see scenarios/prefix_zipf_overload.json).
DEFAULT_SCENARIO = "scenarios/prefix_zipf_overload.json"

#: Default sweep grids (overridable via --thetas / --windows).
DEFAULT_THETAS = (-1.0, -0.5, 0.0, 0.5, 1.0)
DEFAULT_WINDOWS = (0.0, 10.0, 20.0, 45.0, 90.0)


def result_row(result) -> Dict[str, Any]:
    """The deterministic slice of one run's results (digest input)."""
    return {
        "arrivals": result.arrivals,
        "accepted": result.accepted,
        "rejected": result.rejected,
        "rejection_ratio": round(result.rejection_ratio, 9),
        "finished": result.finished,
        "dropped": result.dropped,
        "underruns": result.underruns,
        "chained": result.chained,
        "patched": result.patched,
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "cache_hit_rate": round(result.cache_hit_rate, 9),
        "cache_megabits": round(result.cache_megabits, 6),
        "chain_underruns": result.chain_underruns,
        "megabits_sent": round(result.megabits_sent, 6),
    }


def baseline_config(config: SimulationConfig) -> SimulationConfig:
    """The same run without the tier (the figure's 'without' side)."""
    return dataclasses.replace(config, prefix=None)


def run_report(
    config: SimulationConfig,
    thetas: List[float],
    windows: List[float],
) -> Dict[str, Any]:
    """One full (deterministic) evaluation of the scenario config."""
    with_tier = result_row(run_simulation(config))
    without = result_row(run_simulation(baseline_config(config)))
    hit_rate = [
        {
            "theta": theta,
            **result_row(
                run_simulation(dataclasses.replace(config, theta=theta))
            ),
        }
        for theta in thetas
    ]
    window_sweep = [
        {
            "window_seconds": window,
            **result_row(run_simulation(dataclasses.replace(
                config,
                prefix=dataclasses.replace(
                    config.prefix, window_seconds=window
                ),
            ))),
        }
        for window in windows
    ]
    return {
        "figure": {"with_tier": with_tier, "without_tier": without},
        "hit_rate_vs_theta": hit_rate,
        "window_sweep": window_sweep,
    }


def report_digest(report: Dict[str, Any]) -> str:
    """Canonical-JSON SHA-256 of a report (the determinism gate)."""
    canonical = json.dumps(report, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def render_figure(report: Dict[str, Any], load: float) -> List[str]:
    """The headline figure as plain text lines."""
    with_tier = report["figure"]["with_tier"]
    without = report["figure"]["without_tier"]
    lines = [
        f"capacity at {load:.0%} offered load (rejection rate):",
        f"  {'':14}{'arrivals':>9} {'rejected':>9} {'rej rate':>9} "
        f"{'chained':>8}",
    ]
    for label, row in (("with tier", with_tier), ("without tier", without)):
        lines.append(
            f"  {label:<14}{row['arrivals']:>9} {row['rejected']:>9} "
            f"{row['rejection_ratio']:>9.4f} {row['chained']:>8}"
        )
    return lines


def audit(report: Dict[str, Any], digests: List[str]) -> List[str]:
    """The gate: every way a prefix run can fail, as messages."""
    problems: List[str] = []
    with_tier = report["figure"]["with_tier"]
    without = report["figure"]["without_tier"]
    if not with_tier["rejection_ratio"] < without["rejection_ratio"]:
        problems.append(
            f"tier did not beat the baseline: rejection "
            f"{with_tier['rejection_ratio']:.4f} (with) vs "
            f"{without['rejection_ratio']:.4f} (without) — the capacity "
            f"figure needs a strict improvement"
        )
    if not with_tier["chained"]:
        problems.append(
            "no session was ever chained — the batching window or the "
            "cache never engaged (check the scenario's prefix block)"
        )
    for name, rows in (
        ("figure", [with_tier, without]),
        ("hit_rate_vs_theta", report["hit_rate_vs_theta"]),
        ("window_sweep", report["window_sweep"]),
    ):
        underruns = sum(r["chain_underruns"] for r in rows)
        if underruns:
            problems.append(
                f"{name}: {underruns} chained-session underrun(s) — a "
                f"shared feed fell behind its playout"
            )
    if len(set(digests)) != 1:
        problems.append(
            f"same-seed reports diverged: digests {digests} — the tier "
            f"broke run determinism"
        )
    return problems


def run_prefix_cli(args, progress) -> int:
    """Run the prefix gate over one scenario; audit and report."""
    scenario = load_scenario(args.scenario)
    config = scenario.config
    if config.prefix is None:
        print(
            f"repro prefix: scenario {scenario.name!r} has no prefix "
            f"block",
            file=sys.stderr,
        )
        return 2
    thetas = args.thetas if args.thetas else list(DEFAULT_THETAS)
    windows = args.windows if args.windows else list(DEFAULT_WINDOWS)
    reports = []
    digests = []
    for attempt in (1, 2):
        report = run_report(config, thetas, windows)
        reports.append(report)
        digests.append(report_digest(report))
        progress(
            f"prefix pass {attempt}/2: digest {digests[-1][:12]}, "
            f"rejection {report['figure']['with_tier']['rejection_ratio']:.4f} "
            f"(with) vs "
            f"{report['figure']['without_tier']['rejection_ratio']:.4f} "
            f"(without)"
        )
    report = reports[0]
    failures = audit(report, digests)
    for line in render_figure(report, config.load):
        print(line)
    rendered = json.dumps(
        {
            "scenario": scenario.name,
            "digests": digests,
            "deterministic": len(set(digests)) == 1,
            "failures": failures,
            "report": report,
        },
        indent=2,
        sort_keys=True,
    )
    print(rendered)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(rendered + "\n")
    for failure in failures:
        print(f"PREFIX FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


# ----------------------------------------------------------------------
# CLI self-registration (see repro.experiments.registry)
# ----------------------------------------------------------------------
def _floats(text: str) -> List[float]:
    return [float(part) for part in text.split(",") if part.strip()]


def _cli_arguments(parser) -> None:
    parser.add_argument(
        "scenario", nargs="?", default=DEFAULT_SCENARIO,
        help=f"scenario JSON with a prefix block "
             f"(default {DEFAULT_SCENARIO})",
    )
    parser.add_argument(
        "--thetas", type=_floats, default=None, metavar="T1,T2,...",
        help="Zipf θ grid for the hit-rate sweep "
             f"(default {','.join(map(str, DEFAULT_THETAS))})",
    )
    parser.add_argument(
        "--windows", type=_floats, default=None, metavar="W1,W2,...",
        help="batching-window grid (seconds) for the window sweep "
             f"(default {','.join(map(str, DEFAULT_WINDOWS))})",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the JSON report to PATH (the CI artifact)",
    )


register(ExperimentSpec(
    name="prefix",
    help="prefix-cache / stream-sharing gate: run a scenario with the "
         "tier and the no-tier baseline at the same (>=100%%) offered "
         "load, sweep cache hit rate over Zipf θ and sharing over the "
         "batching window; the tier must strictly beat the baseline's "
         "rejection rate with zero chained-session underruns, and two "
         "same-seed passes must produce byte-identical reports (exit 1 "
         "on any failure)",
    run_cli=run_prefix_cli,
    add_arguments=_cli_arguments,
    bare=True,
    order=97,
))
