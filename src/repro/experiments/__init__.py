"""Experiment harness: one module per reproduced table/figure.

Every experiment exposes a ``run_*`` function returning a
:class:`~repro.experiments.base.SweepResult` (or a table structure) and
accepts a ``scale`` argument that shrinks simulated duration and trial
count relative to the paper's full fidelity (5 trials × 1000 simulated
hours per point — see DESIGN.md §5).  ``scale=1.0`` is full fidelity.

**Registration is automatic.**  Importing this package imports every
sibling module (the ``pkgutil`` walk below), and each module's
self-registration block publishes an
:class:`~repro.experiments.registry.ExperimentSpec` into
:data:`~repro.experiments.registry.EXPERIMENTS` (or
:data:`~repro.experiments.registry.CHAOS_EXPERIMENTS`).  The CLI builds
its subcommands from those registries, so adding an experiment is
writing one module here — no import list or dispatch table to edit
anywhere (docs/ARCHITECTURE.md walks through it).

Experiment index (DESIGN.md §3):

* :mod:`repro.experiments.fig4_drm` — effect of dynamic request
  migration (Figure 4).
* :mod:`repro.experiments.fig5_staging` — effect of client staging
  (Figure 5).
* :mod:`repro.experiments.fig7_policies` — the P1–P8 policy comparison
  (Figure 7, with the Figure 6 matrix).
* :mod:`repro.experiments.svbr` — utilization vs server-to-view
  bandwidth ratio with the Erlang-B analytic curve (EXT-SVBR).
* :mod:`repro.experiments.partial_predictive` — partial predictive
  placement (EXT-PP).
* :mod:`repro.experiments.heterogeneity` — bandwidth/storage
  heterogeneity (EXT-HET).
* :mod:`repro.experiments.ablation` — scheduler ablation (EFTF vs
  proportional vs LFTF) for the DESIGN.md design-choice callout.
* :mod:`repro.experiments.dynamic_replication` — EXT-DR: the related
  work's "resource intensive" alternative to DRM.
* :mod:`repro.experiments.intermittent_burst` — EXT-INT: the
  intermittent class the paper set aside (a supporting negative
  result).
* :mod:`repro.experiments.interactivity_vcr` — EXT-VCR: viewer
  pause/resume, relaxing Theorem 1's no-pause assumption.
* :mod:`repro.experiments.client_mix` — EXT-MIX: heterogeneous client
  capabilities (partial staging rollout).
* :mod:`repro.experiments.availability` — EXT-CHAOS: availability vs
  MTBF under deterministic fault injection, EFTF+DRM vs no-DRM
  (docs/ROBUSTNESS.md; ``repro-vod chaos availability``).
* :mod:`repro.experiments.soak` — EXT-SOAK: one invariant-checked
  chaos run (``repro-vod chaos soak``; the CI chaos gate).
* :mod:`repro.experiments.prefix` — EXT-PREFIX: the prefix-cache /
  stream-sharing tier gate — the with/without-tier capacity figure,
  the cache-hit-rate-vs-θ and batching-window sweeps, and the
  same-seed determinism digest (``repro prefix``; the CI prefix-smoke
  gate; docs/CACHING.md).
"""

import importlib
import pkgutil

from repro.experiments.base import (
    ExperimentScale,
    SweepResult,
    Variant,
    resolve_scale,
    run_sweep,
    run_trials,
    trial_seeds,
)

__all__ = [
    "ExperimentScale",
    "SweepResult",
    "Variant",
    "resolve_scale",
    "run_sweep",
    "run_trials",
    "trial_seeds",
]

# Auto-discovery: import every experiment module so its registration
# block runs.  Deterministic (pkgutil yields sorted names) and cheap —
# modules only define functions and register specs at import time.
for _module_info in pkgutil.iter_modules(__path__):
    importlib.import_module(f"{__name__}.{_module_info.name}")
del _module_info
