"""``repro serve`` / ``repro loadgen`` — the live serving runtime.

The CLI face of :mod:`repro.serve` (docs/SERVING.md).  Both
subcommands take a committed scenario file — the same JSON ``repro run
--scenario`` simulates — so a workload can be studied in virtual time
and then served live without re-specifying anything:

* ``repro serve --scenario scenarios/serve_loopback.json`` starts the
  gateway and streams until SIGTERM/SIGINT (or ``--max-wall``), then
  drains gracefully and prints a provenance-stamped summary as JSON;
* ``repro loadgen --scenario ... --port N`` replays the scenario's
  calibrated arrival process against a running gateway and prints a
  session-by-session report (exit code 1 on connection errors or
  client underruns, so smoke jobs can assert on it).

Registered as *bare* experiments: the wall-clock flags here replace
the virtual-time ``--scale`` machinery of the figure subcommands.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from typing import Optional

from repro import obs
from repro.experiments.registry import ExperimentSpec, Progress, register
from repro.scenario import Scenario, load_scenario
from repro.serve.config import ServeConfig
from repro.serve.gateway import ClusterGateway
from repro.serve.loadgen import LoadGenerator, arrival_trace


def _add_wall_flags(p: argparse.ArgumentParser, *, port_required: bool) -> None:
    # Not argparse-required: every registry-generated subcommand parses
    # bare (tested); the dispatchers check and exit with usage instead.
    p.add_argument(
        "--scenario", default=None, metavar="FILE",
        help="scenario JSON file (the policy configuration; see scenarios/)",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind/connect address")
    p.add_argument(
        "--port", type=int, default=None if port_required else 0,
        help="TCP port" + (" (required)" if port_required
                           else " (0 binds an ephemeral port)"),
    )
    p.add_argument(
        "--compression", type=float, default=40.0,
        help="virtual seconds per wall second (default 40)",
    )


def _serve_arguments(p: argparse.ArgumentParser) -> None:
    _add_wall_flags(p, port_required=False)
    p.add_argument(
        "--max-wall", type=float, default=None, metavar="SECONDS",
        help="stop (with a graceful drain) after this much wall clock; "
             "default: run until SIGTERM/SIGINT",
    )
    p.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="append structured trace records (JSONL) to PATH",
    )
    p.add_argument(
        "--ops-port", type=int, default=0, metavar="PORT",
        help="TCP port of the live telemetry (ops) endpoint; 0 binds an "
             "ephemeral port (printed in the banner), negative disables",
    )
    p.add_argument(
        "--postmortem", default="repro-postmortem.jsonl", metavar="PATH",
        help="flight-recorder dump file — written on SIGUSR2, invariant "
             "violation, or gateway crash (default %(default)s)",
    )
    p.add_argument(
        "--stats-interval", type=float, default=1.0, metavar="SECONDS",
        help="wall seconds between serve.stats trace samples "
             "(the `repro top --trace` time series; default %(default)s)",
    )


def _loadgen_arguments(p: argparse.ArgumentParser) -> None:
    _add_wall_flags(p, port_required=True)
    p.add_argument(
        "--duration", type=float, default=None, metavar="VSECONDS",
        help="virtual seconds of arrivals to replay "
             "(default: the scenario's duration)",
    )
    p.add_argument(
        "--max-sessions", type=int, default=None,
        help="hard cap on the number of sessions generated",
    )
    p.add_argument(
        "--progress-interval", type=float, default=2.0, metavar="SECONDS",
        help="wall seconds between one-line progress reports on stderr "
             "(default %(default)s)",
    )
    p.add_argument(
        "--quiet", action="store_true",
        help="suppress the periodic progress reports",
    )


def _scenario(path: Optional[str], command: str) -> Scenario:
    if path is None:
        raise SystemExit(f"repro {command}: --scenario FILE is required")
    try:
        return load_scenario(path)
    except ValueError as exc:
        raise SystemExit(str(exc))


# ----------------------------------------------------------------------
# repro serve
# ----------------------------------------------------------------------
async def _serve_async(scenario: Scenario, args: argparse.Namespace) -> int:
    serve = ServeConfig(
        host=args.host,
        port=args.port,
        compression=args.compression,
        ops_port=None if args.ops_port < 0 else args.ops_port,
        stats_interval=args.stats_interval,
    )
    if args.trace_out:
        obs.check_trace_path(args.trace_out)
    # The tracer is always on: its ring is the flight recorder's data
    # source and the ops endpoint's span feed.  --trace-out only
    # controls whether the ring is exported at shutdown.
    tracer = obs.Tracer()
    gateway = ClusterGateway(scenario.config, serve, tracer=tracer)
    recorder = obs.FlightRecorder(
        tracer,
        args.postmortem,
        provenance=obs.run_provenance(
            seed=scenario.config.seed,
            config=scenario.config,
            extra={"mode": "serve", "scenario": scenario.name},
        ),
        state=gateway.registry.snapshot,
    )
    gateway.recorder = recorder
    await gateway.start()

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    signals = (signal.SIGINT, signal.SIGTERM)
    for sig in signals:
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX
            signals = ()
            break
    recorder.install_signal_handler(loop=loop)
    ops_note = (
        f"ops on {serve.host}:{gateway.ops_port}"
        if gateway.ops is not None
        else "ops disabled"
    )
    print(
        f"serving scenario {scenario.name!r} on "
        f"{serve.host}:{gateway.port} "
        f"({ops_note}; compression {serve.compression:g}x; "
        f"{len(gateway.bridge.controller.servers)} servers) — "
        f"SIGTERM drains gracefully, SIGUSR2 dumps {args.postmortem}",
        file=sys.stderr,
        flush=True,
    )
    try:
        if args.max_wall is not None:
            await asyncio.wait_for(stop.wait(), args.max_wall)
        else:
            await stop.wait()
    except asyncio.TimeoutError:
        pass
    finally:
        for sig in signals:
            loop.remove_signal_handler(sig)
        recorder.uninstall_signal_handler()

    summary = await gateway.stop()
    if args.trace_out:
        tracer.export_jsonl(args.trace_out, provenance=summary["provenance"])
    print(json.dumps(summary, indent=2, sort_keys=True, default=str))
    return 0


def _cmd_serve(args: argparse.Namespace, progress: Progress) -> int:
    return asyncio.run(_serve_async(_scenario(args.scenario, "serve"), args))


# ----------------------------------------------------------------------
# repro loadgen
# ----------------------------------------------------------------------
def _cmd_loadgen(args: argparse.Namespace, progress: Progress) -> int:
    scenario = _scenario(args.scenario, "loadgen")
    if args.port is None:
        raise SystemExit("repro loadgen: --port PORT is required "
                         "(the gateway's bound port)")
    serve = ServeConfig(
        host=args.host,
        port=args.port,
        compression=args.compression,
        loadgen_duration=args.duration,
        max_sessions=args.max_sessions,
        progress_interval=args.progress_interval,
    )
    trace = arrival_trace(
        scenario.config,
        duration=serve.loadgen_duration,
        max_sessions=serve.max_sessions,
    )
    print(
        f"replaying {len(trace)} arrivals "
        f"({trace.duration:.1f} virtual s ≈ "
        f"{serve.to_wall(trace.duration):.1f} wall s) against "
        f"{serve.host}:{serve.port}",
        file=sys.stderr,
        flush=True,
    )
    progress = (
        None if args.quiet
        else lambda line: print(line, file=sys.stderr, flush=True)
    )
    report = asyncio.run(LoadGenerator(serve, trace, progress=progress).run())
    print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    return 0 if report.errors == 0 and report.underruns == 0 else 1


register(
    ExperimentSpec(
        name="serve",
        help="serve a scenario live: asyncio TCP gateway driven by the "
             "EFTF/DRM policy core (docs/SERVING.md)",
        run_cli=_cmd_serve,
        add_arguments=_serve_arguments,
        order=400,
        bare=True,
    )
)

register(
    ExperimentSpec(
        name="loadgen",
        help="replay a scenario's arrival process against a live gateway "
             "and report per-session outcomes",
        run_cli=_cmd_loadgen,
        add_arguments=_loadgen_arguments,
        order=401,
        bare=True,
    )
)
