"""EXT-HET — heterogeneity of server resources (Section 4.6).

"Our experiments were conducted on 3 classes of systems with 5, 10 and
20 servers … we studied the impact of bandwidth and storage
heterogeneity …  The results show that the effect of heterogeneity is
more pronounced with the smaller system …  the effect of storage
heterogeneity … seems to be much less pronounced than bandwidth
heterogeneity."

For each server count we compare a homogeneous cluster against
capacity-matched clusters with ±spread bandwidth or storage (totals
preserved, see :func:`repro.cluster.system.heterogeneous_bandwidth`),
under DRM + 20 % staging at a saturating load.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.report import render_series
from repro.analysis.stats import SummaryStats, summarize
from repro.cluster.system import (
    SMALL_SYSTEM,
    heterogeneous_bandwidth,
    heterogeneous_storage,
    sized_system,
)
from repro.core.migration import MigrationPolicy
from repro.experiments.base import ExperimentScale, resolve_scale, run_trials
from repro.experiments.registry import Artifact, ExperimentSpec, register
from repro.simulation import SimulationConfig

#: The paper's three cluster classes.
SERVER_COUNTS: Sequence[int] = (5, 10, 20)

#: Relative spread of the heterogeneous variants (±50 %).
DEFAULT_SPREAD: float = 0.5


def run_heterogeneity(
    server_counts: Sequence[int] = SERVER_COUNTS,
    spread: float = DEFAULT_SPREAD,
    theta: float = 0.27,
    scale: Optional[float] = None,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Utilization for homogeneous / het-bandwidth / het-storage clusters.

    Returns ``{"counts", "curves": {label: [SummaryStats]}, "scale"}``.
    """
    exp_scale: ExperimentScale = resolve_scale(scale)
    rng = np.random.default_rng(seed + 99)
    curves: Dict[str, List[SummaryStats]] = {
        "homogeneous": [],
        "het bandwidth": [],
        "het storage": [],
    }
    for count in server_counts:
        base_system = sized_system(count, base=SMALL_SYSTEM)
        systems = {
            "homogeneous": base_system,
            "het bandwidth": heterogeneous_bandwidth(base_system, spread, rng),
            "het storage": heterogeneous_storage(base_system, spread, rng),
        }
        for label, system in systems.items():
            config = SimulationConfig(
                system=system,
                theta=theta,
                placement="even",
                migration=MigrationPolicy.paper_default(),
                staging_fraction=0.2,
                scheduler="eftf",
                duration=exp_scale.duration,
                warmup=exp_scale.warmup,
                seed=seed,
                client_receive_bandwidth=30.0,
            )
            results = run_trials(config, exp_scale.trials, base_seed=seed)
            stats = summarize([r.utilization for r in results])
            curves[label].append(stats)
            if progress is not None:
                progress(
                    f"servers={count:>3d} {label:>14s}: "
                    f"utilization={stats.mean:.4f}"
                )
    return {
        "counts": [int(c) for c in server_counts],
        "curves": curves,
        "scale": exp_scale,
    }


def render_heterogeneity(result: Dict[str, object]) -> str:
    scale: ExperimentScale = result["scale"]  # type: ignore[assignment]
    curves: Dict[str, List[SummaryStats]] = result["curves"]  # type: ignore[assignment]
    return render_series(
        "servers",
        result["counts"],  # type: ignore[arg-type]
        {label: [s.mean for s in stats] for label, stats in curves.items()},
        title=(
            "EXT-HET: utilization under resource heterogeneity  "
            f"[{scale.describe()}]"
        ),
    )


# ----------------------------------------------------------------------
# CLI self-registration (see repro.experiments.registry)
# ----------------------------------------------------------------------

def _cli_run(args, progress) -> int:
    result = run_heterogeneity(
        scale=args.scale, seed=args.seed, progress=progress,
    )
    print(render_heterogeneity(result))
    return 0


def _cli_artifacts(scale, seed, progress):
    result = run_heterogeneity(scale=scale, seed=seed, progress=progress)
    yield Artifact(
        stem="ext_het", title="EXT-HET",
        text=render_heterogeneity(result),
    )


register(ExperimentSpec(
    name="het",
    help="resource heterogeneity (EXT-HET)",
    run_cli=_cli_run,
    artifacts=_cli_artifacts,
    order=100,
))


def main() -> None:  # pragma: no cover - CLI glue, exercised via repro.cli
    result = run_heterogeneity(progress=print)
    print()
    print(render_heterogeneity(result))


if __name__ == "__main__":  # pragma: no cover
    main()
