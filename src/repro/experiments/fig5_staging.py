"""Figure 5 — the effect of client staging.

Setup (Section 4.3): even placement, **no** migration, client receive
bandwidth capped at 30 Mb/s, staging buffer swept over {0 %, 2 %, 20 %,
100 %} of the average video size.

Expected shape: 20 % captures almost all of the 100 % benefit ("the
most notable result"); the gain is larger on the small system, whose
lower server-to-view bandwidth ratio leaves more fluctuation for
staging to smooth.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.cluster.system import (
    LARGE_SYSTEM,
    SMALL_SYSTEM,
    SYSTEMS,
    SystemConfig,
)
from repro.core.migration import MigrationPolicy
from repro.experiments.base import (
    ExperimentScale,
    SweepResult,
    THETA_GRID,
    Variant,
    resolve_scale,
    run_sweep,
)
from repro.experiments.registry import (
    Artifact,
    ExperimentSpec,
    add_system_argument,
    register,
)
from repro.simulation import SimulationConfig

#: The paper's staging degrees (fraction of the mean video size).
BUFFER_FRACTIONS: Sequence[float] = (0.0, 0.02, 0.2, 1.0)


def variants_for(fractions: Sequence[float] = BUFFER_FRACTIONS) -> List[Variant]:
    return [
        Variant(f"{frac:.0%} buffer", {"staging_fraction": frac})
        for frac in fractions
    ]


def run_fig5(
    system: SystemConfig = LARGE_SYSTEM,
    theta_values: Optional[List[float]] = None,
    fractions: Sequence[float] = BUFFER_FRACTIONS,
    scale: Optional[float] = None,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Reproduce one panel of Figure 5 (utilization vs θ per buffer)."""
    exp_scale: ExperimentScale = resolve_scale(scale)
    base = SimulationConfig(
        system=system,
        theta=0.0,
        placement="even",
        migration=MigrationPolicy.disabled(),
        scheduler="eftf",
        duration=exp_scale.duration,
        warmup=exp_scale.warmup,
        seed=seed,
        client_receive_bandwidth=30.0,
    )
    return run_sweep(
        base,
        theta_values if theta_values is not None else THETA_GRID,
        variants_for(fractions),
        exp_scale,
        base_seed=seed,
        progress=progress,
    )


# ----------------------------------------------------------------------
# CLI self-registration (see repro.experiments.registry)
# ----------------------------------------------------------------------

def _cli_trace_config(
    system: SystemConfig, seed: int, scale: Optional[float]
) -> SimulationConfig:
    """One representative traced run: 20 % staging, no DRM."""
    exp_scale = resolve_scale(scale)
    return SimulationConfig(
        system=system,
        theta=0.0,
        placement="even",
        scheduler="eftf",
        migration=MigrationPolicy.disabled(),
        staging_fraction=0.2,
        client_receive_bandwidth=30.0,
        duration=exp_scale.duration,
        warmup=exp_scale.warmup,
        seed=seed,
    )


def _cli_run(args, progress) -> int:
    result = run_fig5(
        system=SYSTEMS[args.system], scale=args.scale,
        seed=args.seed, progress=progress,
    )
    print(result.render(title=f"Figure 5 ({args.system} system)"))
    return 0


def _cli_artifacts(scale, seed, progress):
    for system in (LARGE_SYSTEM, SMALL_SYSTEM):
        title = f"Figure 5 ({system.name})"
        result = run_fig5(
            system=system, scale=scale, seed=seed, progress=progress,
        )
        yield Artifact(
            stem=f"fig5_{system.name}",
            title=title,
            text=result.render(title=title),
            sweep=result,
        )


register(ExperimentSpec(
    name="fig5",
    help="effect of client staging (Figure 5)",
    run_cli=_cli_run,
    add_arguments=add_system_argument,
    trace_config=_cli_trace_config,
    artifacts=_cli_artifacts,
    order=20,
))


def main() -> None:  # pragma: no cover - CLI glue, exercised via repro.cli
    for system in (LARGE_SYSTEM, SMALL_SYSTEM):
        result = run_fig5(system=system, progress=print)
        print()
        print(result.render(title=f"Figure 5 ({system.name} system)"))
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
