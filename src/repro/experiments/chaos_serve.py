"""EXT-CHAOS-SERVE: the live chaos gate — ``repro chaos serve``.

Drives a committed scenario's fault plan against a *running*
:class:`~repro.serve.gateway.ClusterGateway` over fault-injecting
transports, with resilient clients, and audits the outcome
(docs/ROBUSTNESS.md, "live chaos"):

* at least one engine server crash is mirrored into a live gateway
  task kill (postmortem dumped, task restarted warm);
* every failover-affected session is reconciled — migrated, recovered
  via re-request, cleanly rejected, or lost within the bounded retry
  budget — with nothing unaccounted;
* zero parity clamps, zero leaked asyncio tasks, zero invariant
  violations (the scenario runs with ``invariants: true``);
* run twice (``--runs 2``, the default), the policy decision digests
  are byte-identical — fault injection, failover and client retries
  are all drawn from named substreams in virtual time.

Any audit failure exits 1; this is the CI chaos-serve job's gate.
"""

from __future__ import annotations

import asyncio
import json
import sys
from typing import Any, Dict, List

from repro.cluster.request import reset_request_ids
from repro.experiments.registry import ExperimentSpec, register
from repro.faults.retry import RetryPolicy
from repro.scenario import load_scenario
from repro.serve.chaos import ToxicConfig, run_chaos_serve
from repro.serve.config import ServeConfig

#: Default committed scenario (see scenarios/chaos_serve.json).
DEFAULT_SCENARIO = "scenarios/chaos_serve.json"


def audit_report(report: Dict[str, Any]) -> List[str]:
    """The gate: every way one chaos-serve run can fail, as messages."""
    problems: List[str] = []
    if report["invariant_violation"]:
        problems.append(
            f"invariant violation: {report['invariant_violation']}"
        )
    if report["parity_clamps"]:
        problems.append(
            f"{report['parity_clamps']} parity clamp(s): a re-request "
            f"landed behind the policy clock"
        )
    if report["leaked_tasks"]:
        problems.append(
            f"leaked asyncio tasks after stop(): {report['leaked_tasks']}"
        )
    chaos = report["chaos"]
    if not chaos["failures"]:
        problems.append(
            "no server crash fired — the fault plan never tripped "
            "(check the scenario's faults block and duration)"
        )
    if not chaos["live_kills"]:
        problems.append(
            "no live gateway task kill — engine crashes were not "
            "mirrored into the serving runtime"
        )
    recon = report["reconciliation"]
    if recon["unmatched"]:
        problems.append(
            f"unaccounted failover-affected request ids: "
            f"{recon['unmatched']}"
        )
    return problems


def run_chaos_serve_cli(args, progress) -> int:
    """Run the harness ``--runs`` times; audit each; compare digests."""
    scenario = load_scenario(args.scenario)
    serve = ServeConfig(
        port=0,
        compression=args.compression,
        # Chaos runs are stress runs: widen the clamp headroom
        # (startup_slack + guard wall seconds) so a loaded CI box
        # cannot push an arrival behind the policy clock.
        guard=0.5,
        startup_slack=1.0,
        heartbeat_timeout=args.heartbeat,
        task_restart_limit=args.restart_limit,
        retry_margin=args.retry_margin,
    )
    retry = RetryPolicy(
        max_attempts=args.retry_attempts,
        base_delay=args.retry_base,
        max_delay=args.retry_base * 8.0,
        jitter=0.5,
    )
    link = ToxicConfig(
        latency=args.link_latency,
        jitter=args.link_jitter,
        stall_every=args.stall_every,
        stall_seconds=args.stall_seconds,
    )

    digests: List[str] = []
    failures: List[str] = []
    report: Dict[str, Any] = {}
    for run in range(args.runs):
        # Request ids are a process-global sequence; the digest covers
        # them, so every run must start from the same origin.
        reset_request_ids()
        report = asyncio.run(run_chaos_serve(
            scenario.config,
            serve=serve,
            retry=retry,
            gateway_toxic=link,
            cut_prob=args.cut_prob,
            max_sessions=args.max_sessions,
            postmortem=args.postmortem,
            progress=progress,
        ))
        digests.append(report["digest"])
        for problem in audit_report(report):
            failures.append(f"run {run + 1}: {problem}")
        chaos = report["chaos"]
        recon = report["reconciliation"]
        load = report["load"]
        progress(
            f"chaos serve run {run + 1}/{args.runs}: "
            f"{len(chaos['failures'])} crash(es), "
            f"{chaos['live_kills']} live kill(s), "
            f"{recon['affected']} affected "
            f"(migrated={len(recon['migrated'])} "
            f"recovered={len(recon['recovered'])} "
            f"rejected={len(recon['rejected'])} "
            f"lost={len(recon['lost'])}), "
            f"{load['retries']} client retries, "
            f"digest {report['digest'][:12]}"
        )
    if len(set(digests)) > 1:
        failures.append(
            f"decision digests diverged across same-seed runs: {digests}"
        )

    print(json.dumps({
        "scenario": scenario.name,
        "runs": args.runs,
        "digests": digests,
        "deterministic": len(set(digests)) == 1,
        "failures": failures,
        "last": {
            key: report[key]
            for key in (
                "chaos", "reconciliation", "parity_clamps",
                "leaked_tasks", "invariant_violation", "cuts_planned",
                "postmortem", "postmortem_dumps",
            )
        },
        "load": {
            key: report["load"][key]
            for key in (
                "sessions", "accepted", "rejected", "errors", "lost",
                "retries", "error_types", "underruns",
            )
        },
    }, indent=2, sort_keys=True))
    for failure in failures:
        print(f"CHAOS SERVE FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


# ----------------------------------------------------------------------
# CLI self-registration (see repro.experiments.registry)
# ----------------------------------------------------------------------
def _cli_arguments(parser) -> None:
    parser.add_argument(
        "scenario", nargs="?", default=DEFAULT_SCENARIO,
        help=f"(serve) scenario JSON with a faults block "
             f"(default {DEFAULT_SCENARIO})",
    )
    parser.add_argument(
        "--runs", type=int, default=2,
        help="(serve) same-seed repetitions whose decision digests "
             "must agree",
    )
    parser.add_argument(
        "--compression", type=float, default=40.0,
        help="(serve) virtual seconds per wall second",
    )
    parser.add_argument(
        "--max-sessions", type=int, default=None,
        help="(serve) cap on generated sessions",
    )
    parser.add_argument(
        "--postmortem", default="chaos_postmortem.jsonl",
        help="(serve) flight-recorder dump path (every task trip "
             "rewrites it)",
    )
    parser.add_argument(
        "--heartbeat", type=float, default=2.0,
        help="(serve) supervised-loop heartbeat deadline, wall seconds",
    )
    parser.add_argument(
        "--restart-limit", type=int, default=10,
        help="(serve) per-task restart budget",
    )
    parser.add_argument(
        "--retry-margin", type=float, default=1.0,
        help="(serve) wall seconds of virtual headroom on re-requests",
    )
    parser.add_argument(
        "--retry-attempts", type=int, default=4,
        help="(serve) client retry budget (attempts incl. the first)",
    )
    parser.add_argument(
        "--retry-base", type=float, default=2.0,
        help="(serve) client backoff base delay, virtual seconds",
    )
    parser.add_argument(
        "--link-latency", type=float, default=0.003,
        help="(serve) injected per-frame link latency, wall seconds",
    )
    parser.add_argument(
        "--link-jitter", type=float, default=0.5,
        help="(serve) link latency jitter fraction",
    )
    parser.add_argument(
        "--stall-every", type=int, default=0,
        help="(serve) stall every Nth frame (0 disables)",
    )
    parser.add_argument(
        "--stall-seconds", type=float, default=0.0,
        help="(serve) injected stall length, wall seconds",
    )
    parser.add_argument(
        "--cut-prob", type=float, default=0.15,
        help="(serve) probability a client severs its own connection "
             "once (deterministic per seed)",
    )


register(ExperimentSpec(
    name="serve",
    help="live chaos: run a scenario's fault plan against a running "
         "gateway with resilient clients; audit failover, leaks and "
         "same-seed digest identity (exit 1 on any failure)",
    run_cli=run_chaos_serve_cli,
    add_arguments=_cli_arguments,
    order=10,
), chaos=True)
