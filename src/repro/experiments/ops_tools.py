"""``repro top`` / ``repro ops`` — live telemetry tooling.

The operator face of the telemetry plane (docs/OBSERVABILITY.md):

* ``repro ops --port N [verb]`` asks a running gateway's ops endpoint
  one question — ``health`` (default), ``stats``, ``sessions`` or
  ``prometheus`` — and prints the reply (JSON, or the raw Prometheus
  text exposition), so shell pipelines and CI probes need no client
  code;
* ``repro top --port N`` renders the curses-free dashboard off the
  same endpoint, redrawing every ``--interval`` seconds; ``repro top
  --trace FILE`` replays a recorded trace's ``serve.stats`` samples
  instead, no server required.

Both are *bare* experiments: wall-clock tools, no scale machinery.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.registry import ExperimentSpec, Progress, register
from repro.serve.ops import OPS_VERBS, format_reply, ops_query_sync
from repro.serve.top import run_live, run_trace


# ----------------------------------------------------------------------
# repro ops
# ----------------------------------------------------------------------
def _ops_arguments(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "verb", nargs="?", default="health", choices=OPS_VERBS,
        help="question to ask (default %(default)s)",
    )
    p.add_argument("--host", default="127.0.0.1", help="gateway address")
    p.add_argument(
        "--port", type=int, default=None,
        help="the gateway's ops port (printed in its startup banner)",
    )
    p.add_argument(
        "--timeout", type=float, default=5.0,
        help="wall bound on the exchange, seconds (default %(default)s)",
    )
    p.add_argument(
        "--recent", type=int, default=20,
        help="span window for the sessions verb (default %(default)s)",
    )


def _cmd_ops(args: argparse.Namespace, progress: Progress) -> int:
    if args.port is None:
        raise SystemExit("repro ops: --port PORT is required "
                         "(the gateway's ops port, see its banner)")
    fields = {"recent": args.recent} if args.verb == "sessions" else {}
    try:
        reply = ops_query_sync(
            args.host, args.port, args.verb, timeout=args.timeout, **fields
        )
    except (ConnectionError, OSError) as exc:
        raise SystemExit(
            f"cannot reach ops endpoint {args.host}:{args.port} ({exc}) — "
            f"is `repro serve` running with an ops port?"
        )
    except TimeoutError:
        raise SystemExit(
            f"ops endpoint {args.host}:{args.port} did not answer within "
            f"{args.timeout:g}s"
        )
    except ValueError as exc:
        raise SystemExit(f"repro ops: {exc}")
    print(format_reply(reply))
    return 0


# ----------------------------------------------------------------------
# repro top
# ----------------------------------------------------------------------
def _top_arguments(p: argparse.ArgumentParser) -> None:
    p.add_argument("--host", default="127.0.0.1", help="gateway address")
    p.add_argument(
        "--port", type=int, default=None,
        help="the gateway's ops port (live mode)",
    )
    p.add_argument(
        "--trace", default=None, metavar="FILE",
        help="replay a recorded JSONL trace instead of polling a gateway",
    )
    p.add_argument(
        "--interval", type=float, default=1.0,
        help="seconds between redraws (default %(default)s)",
    )
    p.add_argument(
        "--frames", type=int, default=None, metavar="N",
        help="stop after N frames (default: run until Ctrl-C); "
             "--frames 1 prints one snapshot and exits",
    )
    p.add_argument(
        "--follow", action="store_true",
        help="with --trace: render every sample in sequence instead of "
             "only the run's final state",
    )


def _cmd_top(args: argparse.Namespace, progress: Progress) -> int:
    if args.trace is not None and args.port is not None:
        raise SystemExit("repro top: --trace and --port are exclusive "
                         "(one source per dashboard)")
    if args.trace is not None:
        run_trace(
            args.trace, out=sys.stdout, follow=args.follow,
            interval=args.interval if args.follow else 0.0,
        )
        return 0
    if args.port is None:
        raise SystemExit("repro top: either --port PORT (live) or "
                         "--trace FILE (replay) is required")
    run_live(
        args.host, args.port,
        interval=args.interval, frames=args.frames, out=sys.stdout,
    )
    return 0


register(
    ExperimentSpec(
        name="ops",
        help="query a running gateway's ops endpoint "
             "(health/stats/sessions/prometheus)",
        run_cli=_cmd_ops,
        add_arguments=_ops_arguments,
        order=402,
        bare=True,
    )
)

register(
    ExperimentSpec(
        name="top",
        help="terminal dashboard: poll a live ops endpoint or replay a "
             "recorded trace",
        run_cli=_cmd_top,
        add_arguments=_top_arguments,
        order=403,
        bare=True,
    )
)
