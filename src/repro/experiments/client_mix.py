"""EXT-MIX — heterogeneous client capabilities.

Section 6 observes that "client resource capabilities can vary"; the
staging results (Figure 5) assume every client has the same buffer.
This experiment sweeps the fraction of *buffer-less* clients (legacy
set-top boxes) mixed with 20 %-staging clients and measures how the
system-wide benefit degrades.

Expected shape: utilization interpolates smoothly between the all-
staged and no-staging endpoints — partial deployment of client staging
already pays, so a service can roll buffers out incrementally.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.cluster.system import SMALL_SYSTEM, SystemConfig
from repro.core.migration import MigrationPolicy
from repro.experiments.base import ExperimentScale, SweepResult, resolve_scale
from repro.experiments.registry import Artifact, ExperimentSpec, register
from repro.simulation import SimulationConfig

#: Fraction of clients WITHOUT a staging buffer.
LEGACY_FRACTIONS: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0)


def mix_for(legacy_fraction: float):
    """A two-class population: legacy (no buffer) vs staged (20 %)."""
    if legacy_fraction <= 0.0:
        return ((1.0, 0.2),)
    if legacy_fraction >= 1.0:
        return ((1.0, 0.0),)
    return ((legacy_fraction, 0.0), (1.0 - legacy_fraction, 0.2))


def run_client_mix_series(
    system: SystemConfig = SMALL_SYSTEM,
    legacy_fractions: Sequence[float] = LEGACY_FRACTIONS,
    theta: float = 0.27,
    scale: Optional[float] = None,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Utilization vs legacy-client fraction (x = legacy fraction).

    Implemented directly rather than via ``run_sweep`` — the generic
    machinery wants the x value to be a scalar config field, and
    ``client_mix`` is structured.
    """
    import dataclasses

    from repro.analysis.stats import summarize
    from repro.experiments.base import run_trials

    exp_scale: ExperimentScale = resolve_scale(scale)
    base = SimulationConfig(
        system=system,
        theta=theta,
        placement="even",
        migration=MigrationPolicy.paper_default(),
        scheduler="eftf",
        duration=exp_scale.duration,
        warmup=exp_scale.warmup,
        seed=seed,
        client_receive_bandwidth=30.0,
    )
    stats = []
    for frac in legacy_fractions:
        config = dataclasses.replace(base, client_mix=mix_for(float(frac)))
        results = run_trials(config, exp_scale.trials, base_seed=seed)
        s = summarize([r.utilization for r in results])
        stats.append(s)
        if progress is not None:
            progress(f"legacy={frac:.0%}: utilization={s.mean:.4f}")
    return SweepResult(
        x_label="legacy_fraction",
        x_values=[float(f) for f in legacy_fractions],
        curves={"utilization": stats},
        metric="utilization",
        scale=exp_scale,
    )


# ----------------------------------------------------------------------
# CLI self-registration (see repro.experiments.registry)
# ----------------------------------------------------------------------

def _cli_run(args, progress) -> int:
    result = run_client_mix_series(
        scale=args.scale, seed=args.seed, progress=progress,
    )
    print(result.render(
        title="EXT-MIX: partial deployment of client staging"
    ))
    return 0


def _cli_artifacts(scale, seed, progress):
    result = run_client_mix_series(
        scale=scale, seed=seed, progress=progress,
    )
    yield Artifact(
        stem="ext_mix", title="EXT-MIX",
        text=result.render(title="EXT-MIX"), sweep=result,
    )


register(ExperimentSpec(
    name="mix",
    help="heterogeneous client capabilities (EXT-MIX)",
    run_cli=_cli_run,
    artifacts=_cli_artifacts,
    order=80,
))


def main() -> None:  # pragma: no cover - CLI glue, exercised via repro.cli
    result = run_client_mix_series(progress=print)
    print()
    print(result.render(title="EXT-MIX: partial deployment of client staging"))


if __name__ == "__main__":  # pragma: no cover
    main()
