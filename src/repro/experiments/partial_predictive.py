"""EXT-PP — partial predictive placement (Section 4.4).

"Even this mildly skewed allocation scheme in conjunction with dynamic
request migration and client staging can achieve comparable utilization
to a perfect predictive video allocation scheme."

Sweeps the strongly skewed θ range (where even allocation breaks) with
DRM + 20 % staging enabled, comparing even / partial predictive /
fully predictive placement.  Expected shape: partial ≈ predictive ≫
even at strongly negative θ; all comparable for θ ≥ 0.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.cluster.system import LARGE_SYSTEM, SystemConfig
from repro.core.migration import MigrationPolicy
from repro.experiments.base import (
    ExperimentScale,
    SweepResult,
    Variant,
    resolve_scale,
    run_sweep,
)
from repro.experiments.registry import Artifact, ExperimentSpec, register
from repro.simulation import SimulationConfig

#: θ grid focused on the skewed regime that separates the schemes.
SKEWED_THETA_GRID: List[float] = [-1.5, -1.0, -0.5, 0.0, 0.5]

VARIANTS: List[Variant] = [
    Variant("even", {"placement": "even"}),
    Variant("partial predictive", {"placement": "partial"}),
    Variant("predictive", {"placement": "predictive"}),
]


def run_partial_predictive(
    system: SystemConfig = LARGE_SYSTEM,
    theta_values: Optional[List[float]] = None,
    scale: Optional[float] = None,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Reproduce the partial-predictive comparison."""
    exp_scale: ExperimentScale = resolve_scale(scale)
    base = SimulationConfig(
        system=system,
        theta=0.0,
        migration=MigrationPolicy.paper_default(),
        staging_fraction=0.2,
        scheduler="eftf",
        duration=exp_scale.duration,
        warmup=exp_scale.warmup,
        seed=seed,
        client_receive_bandwidth=30.0,
    )
    return run_sweep(
        base,
        theta_values if theta_values is not None else SKEWED_THETA_GRID,
        VARIANTS,
        exp_scale,
        base_seed=seed,
        progress=progress,
    )


# ----------------------------------------------------------------------
# CLI self-registration (see repro.experiments.registry)
# ----------------------------------------------------------------------

def _cli_run(args, progress) -> int:
    result = run_partial_predictive(
        scale=args.scale, seed=args.seed, progress=progress,
    )
    print(result.render(title="EXT-PP: placement sophistication"))
    return 0


def _cli_artifacts(scale, seed, progress):
    result = run_partial_predictive(
        scale=scale, seed=seed, progress=progress,
    )
    yield Artifact(
        stem="ext_pp", title="EXT-PP",
        text=result.render(title="EXT-PP"), sweep=result,
    )


register(ExperimentSpec(
    name="partial",
    help="partial predictive placement (EXT-PP)",
    run_cli=_cli_run,
    artifacts=_cli_artifacts,
    order=40,
))


def main() -> None:  # pragma: no cover - CLI glue, exercised via repro.cli
    result = run_partial_predictive(progress=print)
    print()
    print(result.render(title="EXT-PP: placement sophistication (large system)"))


if __name__ == "__main__":  # pragma: no cover
    main()
