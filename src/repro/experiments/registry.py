"""Self-registration of experiments (docs/ARCHITECTURE.md).

Each experiment module ends with an :data:`EXPERIMENTS.register
<EXPERIMENTS>` call publishing an :class:`ExperimentSpec` — its CLI
name, help text, argument hooks, runner, and optional extras (a
trace-config factory for ``repro trace``, an artifact generator for
``repro all``).  The CLI builds its subcommands *from this registry*:
adding an experiment is writing one module, not editing the CLI.

Modules are discovered automatically: importing
:mod:`repro.experiments` imports every sibling module (see the
package ``__init__``), so registration needs no hand-maintained import
list anywhere.

Two registries exist because the CLI surfaces them differently:

* :data:`EXPERIMENTS` — top-level subcommands (``repro fig4`` …).
* :data:`CHAOS_EXPERIMENTS` — modes of ``repro chaos <mode>``.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.cluster.system import SystemConfig
    from repro.experiments.base import SweepResult
    from repro.simulation import SimulationConfig

#: A progress callback (one line per grid point) or None when quiet.
Progress = Optional[Callable[[str], None]]


@dataclass(frozen=True)
class Artifact:
    """One rendered block of the ``repro all`` report.

    Attributes:
        stem: file stem for per-artifact exports (``fig4_large``).
        title: section heading.
        text: the rendered ASCII block.
        sweep: the underlying :class:`SweepResult` when the artifact is
            a sweep (exported as ``<stem>.csv`` + provenance sidecar);
            None for table-shaped artifacts.
    """

    stem: str
    title: str
    text: str
    sweep: Optional["SweepResult"] = None


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything the CLI needs to expose one experiment.

    Attributes:
        name: subcommand name (``"fig4"``).
        help: one-line help shown in ``repro --help``.
        run_cli: ``(args, progress) -> int`` — run the experiment from
            parsed CLI args and print its report to stdout.
        add_arguments: optional hook adding experiment-specific flags to
            the generated subparser (``--system``, ``--policies`` …).
            The common flags (``--scale``/``--seed``/``--quiet``/obs)
            are added by the CLI unless :attr:`bare` is set.
        trace_config: optional ``(system, seed, scale) ->
            SimulationConfig`` factory producing one representative
            traced run; experiments providing it appear as ``repro
            trace <name>`` choices.
        artifacts: optional ``(scale, seed, progress) -> iterable`` of
            :class:`Artifact` blocks for the ``repro all`` report;
            experiments without it are CLI-only.
        order: position of this experiment's artifacts in the ``all``
            report (ascending; ties resolve by name).
        bare: suppress the common flags (for argument-less subcommands
            like ``fig6``).
    """

    name: str
    help: str
    run_cli: Callable[[argparse.Namespace, Progress], int]
    add_arguments: Optional[Callable[[argparse.ArgumentParser], None]] = None
    trace_config: Optional[
        Callable[["SystemConfig", int, Optional[float]], "SimulationConfig"]
    ] = None
    artifacts: Optional[
        Callable[[Optional[float], int, Progress], Iterable[Artifact]]
    ] = None
    order: int = 100
    bare: bool = False


#: Top-level experiment subcommands, in registration (discovery) order.
EXPERIMENTS: Registry[ExperimentSpec] = Registry("experiment")

#: Modes of the ``repro chaos`` subcommand.
CHAOS_EXPERIMENTS: Registry[ExperimentSpec] = Registry("chaos experiment")


def register(spec: ExperimentSpec, *, chaos: bool = False) -> ExperimentSpec:
    """Publish *spec* in the appropriate registry and return it."""
    target = CHAOS_EXPERIMENTS if chaos else EXPERIMENTS
    target.register(spec.name, spec, help=spec.help)
    return spec


def trace_experiments() -> tuple:
    """Names of experiments offering a ``repro trace`` setup (sorted)."""
    return tuple(
        name
        for name in EXPERIMENTS.names()
        if EXPERIMENTS.get(name).trace_config is not None
    )


def add_system_argument(
    parser: argparse.ArgumentParser, default: str = "large"
) -> None:
    """The shared ``--system {small,large}`` flag (choices from the
    system registry)."""
    from repro.cluster.system import SYSTEMS

    parser.add_argument("--system", default=default, choices=SYSTEMS.names())
