"""Shared experiment machinery: scaling, trials, sweeps, parallelism.

The paper's full fidelity is **5 trials × 1000 simulated hours** per
data point.  A pure-Python single run of the large system costs a few
hundred milliseconds per simulated hour, so experiments take a
``scale`` knob (also settable via the ``REPRO_SCALE`` environment
variable) that proportionally shrinks duration and trial count while
preserving the curve shapes.  Each recorded result notes its scale.

Parallelism is **grid-level and chunked**: :func:`run_sweep` flattens
the whole (x × variant × trial) grid into one task list, slices it
into contiguous chunks of several grid cells, and dispatches the
chunks to a **process-persistent** :class:`~concurrent.futures
.ProcessPoolExecutor` — created on the first parallel sweep and reused
by every later sweep in the process, so workers are warmed (interpreter
started, ``repro`` imported) exactly once (``REPRO_WORKERS`` overrides
the worker count).  Chunking amortizes task dispatch and result
transport: a worker returns one compact ``(index, metric value)``
payload per chunk instead of pickling a full
:class:`~repro.simulation.SimulationResult` per grid cell.  Results
are slotted by grid index regardless of completion order, and per the
Section 4.1 methodology the same trial seeds are reused across
variants (common random numbers), which pairs the comparisons and
sharpens curve separations at small trial counts — so parallel and
serial execution are bit-identical (enforced by tests).  When
``REPRO_WORKERS=1`` or an observability switch is active
(:func:`repro.obs.runtime.obs_active`), the sweep falls back to
in-process serial execution in strict grid order so traces and
profiles aggregate correctly in one process.
"""

from __future__ import annotations

import atexit
import dataclasses
import os
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    as_completed,
)
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.report import render_series
from repro.analysis.stats import SummaryStats, summarize
from repro.obs.provenance import run_provenance
from repro.obs.runtime import obs_active
from repro.simulation import Simulation, SimulationConfig, SimulationResult
from repro.units import hours

#: Full-fidelity reference points (the paper's Section 4.1 methodology).
PAPER_TRIALS = 5
PAPER_DURATION_HOURS = 1000.0

#: Prime stride between per-trial seeds (any fixed odd constant works;
#: RandomStreams decorrelates streams regardless).
_SEED_STRIDE = 7919


@dataclass(frozen=True)
class ExperimentScale:
    """Concrete per-run sizes derived from a scale factor.

    Attributes:
        duration: simulated seconds per trial (measurement end).
        warmup: excluded ramp-in seconds.
        trials: independent trials per data point.
        scale: the factor these were derived from (for reporting).
    """

    duration: float
    warmup: float
    trials: int
    scale: float

    def describe(self) -> str:
        return (
            f"scale={self.scale:g} ({self.trials} trial(s) x "
            f"{(self.duration - self.warmup) / 3600:.1f}h measured after "
            f"{self.warmup / 3600:.1f}h warmup)"
        )


def resolve_scale(
    scale: Optional[float] = None,
    min_hours: float = 4.0,
    warmup_hours: float = 2.0,
    max_trials: int = PAPER_TRIALS,
) -> ExperimentScale:
    """Turn a scale factor into durations and trial counts.

    ``scale=1`` reproduces the paper's 5×1000 h; the default bench scale
    (0.01) gives 1 trial × 10 measured hours, which preserves every
    qualitative ordering in the paper (verified by the integration
    tests) at ~1000× less compute.

    Args:
        scale: explicit factor; falls back to ``REPRO_SCALE`` env var,
            then 0.01.
        min_hours: floor on the measured window.
        warmup_hours: ramp-in excluded from measurement.
        max_trials: cap on trials (the paper's 5).
    """
    if scale is None:
        raw = os.environ.get("REPRO_SCALE", "0.01")
        try:
            scale = float(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_SCALE must be a number (the fidelity factor, "
                f"e.g. REPRO_SCALE=0.01), got {raw!r}"
            ) from None
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    measured_hours = max(min_hours, PAPER_DURATION_HOURS * scale)
    trials = max(1, min(max_trials, round(PAPER_TRIALS * scale * 20)))
    return ExperimentScale(
        duration=hours(measured_hours + warmup_hours),
        warmup=hours(warmup_hours),
        trials=int(trials),
        scale=scale,
    )


@dataclass(frozen=True)
class Variant:
    """One curve of a sweep: a label plus config overrides.

    ``overrides`` are applied to the experiment's base
    :class:`SimulationConfig` via ``dataclasses.replace``.
    """

    label: str
    overrides: Mapping[str, object] = field(default_factory=dict)

    def apply(self, base: SimulationConfig) -> SimulationConfig:
        return dataclasses.replace(base, **dict(self.overrides))


def _run_one(config: SimulationConfig) -> SimulationResult:
    """Process-pool worker: module-level so it pickles."""
    return Simulation(config).run()


def _run_chunk(chunk, metric):
    """Process-pool worker: run a chunk of ``(index, config)`` tasks.

    Returns compact ``(index, "ok", metric value)`` /
    ``(index, "err", exception)`` triples — one small list crosses the
    pipe per chunk instead of a pickled
    :class:`~repro.simulation.SimulationResult` per grid cell.
    Per-task failures are captured rather than raised so one bad cell
    doesn't discard its chunk-mates' finished work; the parent retries
    failed cells in-process.
    """
    out = []
    for index, config in chunk:
        try:
            value = getattr(Simulation(config).run(), metric)
        except Exception as exc:
            out.append((index, "err", exc))
        else:
            out.append((index, "ok", value))
    return out


def _noop() -> None:
    """Pool-warming task (see :func:`warm_pool`)."""


#: Target chunks per worker: >1 so a slow chunk doesn't straggle the
#: sweep (work stealing via the shared task queue), small enough that
#: dispatch/transport overhead stays amortized.
_CHUNKS_PER_WORKER = 4

_pool: Optional[ProcessPoolExecutor] = None
_pool_workers = 0


def _get_pool(workers: int) -> ProcessPoolExecutor:
    """The process-persistent worker pool.

    Created lazily on first use and reused by every later parallel
    sweep / trial run in this process, so worker warm-up (interpreter
    start, ``repro`` import) is paid exactly once.  Recreated when the
    requested worker count changes; discarded when broken or
    interrupted (see callers).
    """
    global _pool, _pool_workers
    if _pool is not None and _pool_workers != workers:
        shutdown_pool(wait=False)
    if _pool is None:
        _pool = ProcessPoolExecutor(max_workers=workers)
        _pool_workers = workers
    return _pool


def shutdown_pool(wait: bool = True) -> None:
    """Shut down the persistent worker pool (no-op when none exists).

    Registered via ``atexit``; tests and benchmarks also call it to
    reset pool state between measurements.
    """
    global _pool, _pool_workers
    pool, _pool, _pool_workers = _pool, None, 0
    if pool is not None:
        pool.shutdown(wait=wait, cancel_futures=True)


atexit.register(shutdown_pool, wait=False)


def warm_pool(workers: Optional[int] = None) -> int:
    """Spin the persistent pool up and wait until every worker is live.

    Submits one no-op task per worker and blocks on the results, so a
    subsequent sweep measures steady-state throughput rather than
    worker start-up.  Returns the resolved worker count (<= 1 means no
    pool was created).
    """
    if workers is None:
        workers = _worker_count()
    if workers <= 1:
        return workers
    pool = _get_pool(workers)
    for future in [pool.submit(_noop) for _ in range(workers)]:
        future.result()
    return workers


class SweepCellError(RuntimeError):
    """A sweep grid cell failed twice (original run + in-process retry).

    The message pins down the exact ``(x, variant, trial)`` cell so a
    multi-hour sweep failure is reproducible with a single run.
    """

    def __init__(self, cell: str, cause: BaseException) -> None:
        super().__init__(
            f"sweep cell [{cell}] failed twice; first failure: "
            f"{type(cause).__name__}: {cause}"
        )
        self.cell = cell


def _retry_cell(
    config: SimulationConfig, cell: str, cause: BaseException
) -> SimulationResult:
    """One in-process retry for a failed cell.

    Transient failures (a worker OOM-killed, a flaky interpreter) get a
    second chance without losing the rest of the sweep; a deterministic
    failure surfaces as :class:`SweepCellError` naming the cell.
    """
    try:
        return _run_one(config)
    except Exception as retry_exc:
        raise SweepCellError(cell, cause) from retry_exc


def _worker_count() -> int:
    if obs_active():
        # Tracing/profiling aggregate in-process (JSONL appends and the
        # profile accumulator); keep trials on one worker.
        return 1
    env = os.environ.get("REPRO_WORKERS")
    if env is not None:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_WORKERS must be an integer worker-process count "
                f"(e.g. REPRO_WORKERS=4, or 1 to force serial), got "
                f"{env!r}"
            ) from None
        return max(1, value)
    return max(1, os.cpu_count() or 1)


def trial_seeds(trials: int, base_seed: int = 0) -> List[int]:
    """The common-random-number seed ladder: trial ``i`` uses
    ``base_seed + i * 7919``, shared by every variant in a sweep."""
    return [base_seed + i * _SEED_STRIDE for i in range(trials)]


def _trial_configs(
    config: SimulationConfig, trials: int, base_seed: int
) -> List[SimulationConfig]:
    return [
        dataclasses.replace(config, seed=seed)
        for seed in trial_seeds(trials, base_seed)
    ]


def run_trials(
    config: SimulationConfig,
    trials: int,
    base_seed: int = 0,
) -> List[SimulationResult]:
    """Run *trials* independent replications of *config*.

    Trial ``i`` uses seed ``base_seed + i * 7919`` — the same seeds are
    shared by every variant in a sweep (common random numbers).  The
    persistent process pool is used when multiple CPUs are available.
    (Sweeps do not call this: :func:`run_sweep` parallelises over its
    whole grid instead.)
    """
    configs = _trial_configs(config, trials, base_seed)
    workers = min(_worker_count(), len(configs))
    if workers <= 1:
        return [_run_one(c) for c in configs]
    try:
        return list(_get_pool(workers).map(_run_one, configs))
    except BrokenExecutor:
        # A worker died mid-run (OOM kill, interpreter crash): discard
        # the broken pool and finish in-process rather than losing the
        # call.
        shutdown_pool(wait=False)
        return [_run_one(c) for c in configs]


@dataclass
class SweepResult:
    """A family of curves over a shared x grid.

    Attributes:
        x_label: the x-axis name (usually ``"theta"``).
        x_values: the grid.
        curves: variant label → per-x :class:`SummaryStats` of the
            measured metric.
        metric: which :class:`SimulationResult` field was measured.
        scale: the :class:`ExperimentScale` used.
        provenance: run-provenance dict (seed, scale, version, REPRO_*
            env) stamped by :func:`run_sweep`; exporters write it as a
            ``.meta.json`` sidecar next to every result file.
    """

    x_label: str
    x_values: List[float]
    curves: Dict[str, List[SummaryStats]]
    metric: str
    scale: ExperimentScale
    provenance: Optional[Dict] = None

    def means(self, label: str) -> List[float]:
        return [s.mean for s in self.curves[label]]

    def series(self) -> Dict[str, List[float]]:
        return {label: self.means(label) for label in self.curves}

    def render(self, title: str = "", precision: int = 4) -> str:
        header = title or f"{self.metric} vs {self.x_label}"
        return render_series(
            self.x_label,
            self.x_values,
            self.series(),
            precision=precision,
            title=f"{header}  [{self.scale.describe()}]",
        )


#: Grid-cell key: (x index, variant index); trial results are gathered
#: per cell before summarising.
_CellKey = Tuple[int, int]


def run_sweep(
    base: SimulationConfig,
    x_values: Sequence[float],
    variants: Sequence[Variant],
    scale: ExperimentScale,
    metric: str = "utilization",
    x_field: str = "theta",
    base_seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
    x_apply: Optional[
        Callable[[SimulationConfig, float], SimulationConfig]
    ] = None,
) -> SweepResult:
    """Run a full (x × variant × trial) grid and summarise.

    The grid is flattened into one task list, sliced into contiguous
    chunks of several cells, and dispatched to the process-persistent
    pool (workers warmed once, reused across sweeps), so every
    independent simulation runs concurrently; measured values come back
    as compact per-chunk payloads and are slotted by grid index, making
    the output bit-identical to a serial run.  With one worker
    (``REPRO_WORKERS=1``, a single CPU, or an active observability
    switch) the tasks run in-process in strict grid order instead.

    Args:
        base: config template (duration/warmup are overwritten from
            *scale*).
        x_values: grid for *x_field*.
        variants: the curves.
        scale: trial sizing.
        metric: SimulationResult attribute to record.
        x_field: SimulationConfig field swept along x.
        base_seed: root of the common-random-number seed ladder.
        progress: optional callback receiving one line per grid point
            (in completion order when parallel, grid order when serial).
        x_apply: custom ``(config, x) -> config`` transform used instead
            of ``replace(config, x_field=x)`` — for sweeps whose x-axis
            is not a flat :class:`SimulationConfig` field (e.g. the MTBF
            inside a nested :class:`~repro.faults.FaultPlan`);
            ``x_field`` then only labels the axis.

    Failure semantics: a cell that raises is retried once in-process; a
    second failure raises :class:`SweepCellError` naming the exact
    ``(x, variant, trial)`` cell.  ``KeyboardInterrupt`` cancels all
    pending cells and shuts the pool down instead of hanging on exit.
    """
    base = dataclasses.replace(
        base, duration=scale.duration, warmup=scale.warmup
    )
    # Flatten the (x × variant × trial) grid into one task list.  The
    # seed ladder depends only on the trial index (common random
    # numbers), never on the grid position or completion order.
    tasks: List[Tuple[_CellKey, int, SimulationConfig]] = []
    for xi, x in enumerate(x_values):
        for vi, variant in enumerate(variants):
            if x_apply is not None:
                config = x_apply(variant.apply(base), x)
            else:
                config = dataclasses.replace(
                    variant.apply(base), **{x_field: x}
                )
            for ti, trial_config in enumerate(
                _trial_configs(config, scale.trials, base_seed)
            ):
                tasks.append(((xi, vi), ti, trial_config))

    def describe_cell(key: _CellKey, ti: int) -> str:
        xi, vi = key
        return (
            f"{x_field}={x_values[xi]!r}, "
            f"variant={variants[vi].label!r}, trial={ti}"
        )

    def emit(key: _CellKey, stats: SummaryStats) -> None:
        if progress is not None:
            xi, vi = key
            progress(
                f"{x_field}={x_values[xi]:+.2f} "
                f"{variants[vi].label:>24s}: "
                f"{metric}={stats.mean:.4f}"
            )

    cell_stats: Dict[_CellKey, SummaryStats] = {}
    workers = min(_worker_count(), len(tasks))
    chunk_size = 0
    if workers <= 1:
        # Serial fallback: in-process, strict grid order — required for
        # obs aggregation (traces/profiles accumulate in this process).
        values: List[float] = []
        for key, ti, config in tasks:
            try:
                result = _run_one(config)
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                result = _retry_cell(config, describe_cell(key, ti), exc)
            values.append(getattr(result, metric))
            if ti == scale.trials - 1:
                cell_stats[key] = summarize(values)
                emit(key, cell_stats[key])
                values = []
    else:
        # Chunked dispatch on the process-persistent pool: contiguous
        # grid-order slices of several cells per submitted task, so
        # dispatch and result transport are amortized and a worker
        # ships one compact payload per chunk.  Chunks complete in any
        # order — measured values are slotted by (cell, trial) and each
        # cell is summarised (and reported) once its last trial lands.
        cell_values: Dict[_CellKey, List[Optional[float]]] = {}
        cell_remaining: Dict[_CellKey, int] = {}
        chunk_size = max(
            1, -(-len(tasks) // (workers * _CHUNKS_PER_WORKER))
        )
        indexed = list(enumerate(tasks))
        chunks = [
            indexed[i:i + chunk_size]
            for i in range(0, len(indexed), chunk_size)
        ]
        pool = _get_pool(workers)
        broken = False
        try:
            futures = {
                pool.submit(
                    _run_chunk,
                    [(gi, config) for gi, (_key, _ti, config) in chunk],
                    metric,
                ): chunk
                for chunk in chunks
            }
            for future in as_completed(futures):
                chunk = futures[future]
                try:
                    outcomes = future.result()
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    # Whole-chunk failure: the worker died before
                    # returning (or the payload didn't unpickle).  Rerun
                    # the chunk's cells in-process with the usual retry
                    # semantics so the sweep still completes.
                    if isinstance(exc, BrokenExecutor):
                        broken = True
                    outcomes = []
                    for gi, (key, ti, config) in chunk:
                        result = _retry_cell(
                            config, describe_cell(key, ti), exc
                        )
                        outcomes.append(
                            (gi, "ok", getattr(result, metric))
                        )
                for gi, status, value in outcomes:
                    key, ti, config = tasks[gi]
                    if status != "ok":
                        # One in-process retry rescues a transient cell
                        # failure without losing the rest of the sweep.
                        result = _retry_cell(
                            config, describe_cell(key, ti), value
                        )
                        value = getattr(result, metric)
                    slots = cell_values.setdefault(
                        key, [None] * scale.trials
                    )
                    slots[ti] = value
                    left = cell_remaining.get(key, scale.trials) - 1
                    cell_remaining[key] = left
                    if left == 0:
                        cell_stats[key] = summarize(slots)
                        emit(key, cell_stats[key])
        except KeyboardInterrupt:
            # Cancel queued chunks and discard the pool (its workers may
            # hold half-run simulations) instead of hanging on exit.
            shutdown_pool(wait=False)
            raise
        if broken:
            shutdown_pool(wait=False)

    curves: Dict[str, List[SummaryStats]] = {
        variant.label: [
            cell_stats[(xi, vi)] for xi in range(len(x_values))
        ]
        for vi, variant in enumerate(variants)
    }
    return SweepResult(
        x_label=x_field,
        x_values=[float(x) for x in x_values],
        curves=curves,
        metric=metric,
        scale=scale,
        provenance=run_provenance(
            seed=base_seed,
            scale=scale.scale,
            config=base,
            extra={
                "metric": metric,
                "x_field": x_field,
                "workers": workers,
                "executor": "serial" if workers <= 1 else "parallel",
                "chunk_size": chunk_size or None,
                "trial_seeds": trial_seeds(scale.trials, base_seed),
            },
        ),
    )


#: The θ grid used by Figures 4, 5 and 7 (−1.5 … 1.0).
THETA_GRID: List[float] = [-1.5, -1.0, -0.5, -0.25, 0.0, 0.25, 0.5, 0.75, 1.0]

#: A shorter grid for quick benches; keeps the skewed and uniform ends
#: plus the paper's "realistic" mid-range.
THETA_GRID_COARSE: List[float] = [-1.0, -0.5, 0.0, 0.5, 1.0]
