"""EXT-ELASTIC: the elastic membership gate — ``repro elastic``.

Drives a committed scenario's ``elastic`` block (scale-out / scale-in
events, optionally a load trigger) through both incarnations of the
policy core and audits the outcome (docs/SERVING.md, "elastic
membership"):

* a **virtual-time reference run** — :class:`PolicyBridge.replay` over
  the scenario's calibrated arrival trace, with every membership
  transition (join, warm, activate, drain, depart) driven by engine
  events;
* a **live gateway run** — the same trace replayed by
  :class:`LoadGenerator` clients against a running
  :class:`ClusterGateway`, whose task set follows the membership epoch
  (joiners get ``serve.server.{sid}`` tasks mid-run, departed servers'
  tasks retire);
* the **audit** — the two decision digests must be byte-identical,
  both runs must finish with zero underruns and zero drops, the
  membership epoch must have advanced identically, every server must
  end ``active`` or ``departed``, and the live runtime must leak no
  asyncio tasks and clamp no arrivals.

Any audit failure exits 1; this is the CI elastic-smoke job's gate.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import sys
from typing import Any, Dict, List, Optional

from repro.cluster.request import reset_request_ids
from repro.experiments.registry import ExperimentSpec, register
from repro.scenario import load_scenario
from repro.serve.bridge import PolicyBridge
from repro.serve.config import ServeConfig
from repro.serve.gateway import ClusterGateway
from repro.serve.loadgen import LoadGenerator, arrival_trace

#: Default committed scenario (see scenarios/elastic_flash_crowd.json).
DEFAULT_SCENARIO = "scenarios/elastic_flash_crowd.json"


def run_virtual(config, max_sessions: Optional[int] = None) -> Dict[str, Any]:
    """The reference side: replay the trace in a tight loop.

    Returns a JSON-ready report with the policy summary, the final
    membership ledger and the scaler's counters.
    """
    reset_request_ids()
    trace = arrival_trace(config, max_sessions=max_sessions)
    bridge = PolicyBridge(config)
    bridge.replay(trace)
    policy = bridge.finalize(config.duration)
    scaler = bridge.sim.elastic_scaler
    membership = bridge.controller.membership
    return {
        "policy": policy,
        "digest": policy["decisions_sha"],
        "membership": membership.to_dict(),
        "scaler": {
            "scale_outs": scaler.scale_outs if scaler else 0,
            "scale_ins": scaler.scale_ins if scaler else 0,
            "streams_drained": scaler.streams_drained if scaler else 0,
        },
    }


async def run_live(
    config,
    serve: ServeConfig,
    max_sessions: Optional[int] = None,
    progress=None,
) -> Dict[str, Any]:
    """The live side: gateway + loadgen over loopback TCP."""
    reset_request_ids()
    gateway = ClusterGateway(config, serve)
    await gateway.start()
    live = dataclasses.replace(serve, port=gateway.port)
    trace = arrival_trace(config, max_sessions=max_sessions)
    generator = LoadGenerator(live, trace, progress=progress)
    try:
        load = await generator.run()
    finally:
        # Every scheduled scale event must have fired before the
        # report is cut, however far the wall-paced advance lagged.
        gateway.bridge.advance(config.duration)
        await asyncio.sleep(0)
        summary = await gateway.stop()
    current = asyncio.current_task()
    leaked = sorted(
        task.get_name()
        for task in asyncio.all_tasks()
        if task is not current and not task.done()
    )
    return {
        "policy": summary["policy"],
        "digest": summary["policy"]["decisions_sha"],
        "membership": summary["serve"]["membership"],
        "supervisor": summary["serve"]["supervisor"],
        "parity_clamps": summary["serve"]["parity_clamps"],
        "leaked_tasks": leaked,
        "load": {
            "sessions": len(load.sessions),
            "accepted": load.accepted,
            "rejected": load.rejected,
            "errors": load.errors,
            "lost": load.lost,
            "underruns": load.underruns,
        },
    }


def audit(virtual: Dict[str, Any], live: Dict[str, Any]) -> List[str]:
    """The gate: every way an elastic run can fail, as messages."""
    problems: List[str] = []
    if virtual["digest"] != live["digest"]:
        problems.append(
            f"decision digests diverged: virtual {virtual['digest'][:12]} "
            f"!= live {live['digest'][:12]}"
        )
    for side, report in (("virtual", virtual), ("live", live)):
        if report["policy"]["underruns"]:
            problems.append(
                f"{side}: {report['policy']['underruns']} underrun(s) — "
                f"a drain or warm starved a stream"
            )
        membership = report["membership"] or {}
        if not membership.get("epoch"):
            problems.append(
                f"{side}: membership epoch never advanced — no scale "
                f"event fired (check the scenario's elastic block)"
            )
        stuck = {
            sid: state
            for sid, state in (membership.get("servers") or {}).items()
            if state not in ("active", "departed")
        }
        if stuck:
            problems.append(
                f"{side}: servers stuck mid-lifecycle at the horizon: "
                f"{stuck}"
            )
    if virtual["membership"] != live["membership"]:
        problems.append(
            "membership ledgers diverged between virtual and live runs: "
            f"{virtual['membership']} != {live['membership']}"
        )
    if not virtual["scaler"]["scale_outs"]:
        problems.append("virtual: no scale-out executed")
    if not virtual["scaler"]["scale_ins"]:
        problems.append("virtual: no scale-in executed")
    if live["parity_clamps"]:
        problems.append(
            f"live: {live['parity_clamps']} parity clamp(s): an arrival "
            f"landed behind the policy clock"
        )
    if live["leaked_tasks"]:
        problems.append(
            f"live: leaked asyncio tasks after stop(): "
            f"{live['leaked_tasks']}"
        )
    if live["load"]["underruns"]:
        problems.append(
            f"live: {live['load']['underruns']} client-side underrun(s)"
        )
    if live["load"]["errors"] or live["load"]["lost"]:
        problems.append(
            f"live: {live['load']['errors']} errored + "
            f"{live['load']['lost']} lost session(s)"
        )
    # The gateway must have supervised a task for every server that was
    # ever a member — including mid-run joiners.
    supervised = {
        name.rsplit(".", 1)[-1]
        for name in live["supervisor"].get("tasks", {})
        if name.startswith("serve.server.")
    }
    members = set((live["membership"] or {}).get("servers") or {})
    missing = sorted(members - supervised)
    if missing:
        problems.append(
            f"live: no serve.server task was ever spawned for "
            f"member(s) {missing}"
        )
    return problems


def run_elastic_cli(args, progress) -> int:
    """Virtual replay + live serve of one elastic scenario; audit both."""
    scenario = load_scenario(args.scenario)
    config = scenario.config
    if config.elastic is None:
        print(
            f"repro elastic: scenario {scenario.name!r} has no elastic "
            f"block",
            file=sys.stderr,
        )
        return 2
    serve = ServeConfig(
        port=0,
        compression=args.compression,
        # Same clamp headroom as the chaos gate: a loaded CI box must
        # not push an arrival behind the policy clock.
        guard=0.5,
        startup_slack=1.0,
    )
    virtual = run_virtual(config, max_sessions=args.max_sessions)
    progress(
        f"elastic virtual: digest {virtual['digest'][:12]}, epoch "
        f"{virtual['membership']['epoch']}, "
        f"out={virtual['scaler']['scale_outs']} "
        f"in={virtual['scaler']['scale_ins']} "
        f"drained={virtual['scaler']['streams_drained']}"
    )
    live = asyncio.run(
        run_live(
            config, serve, max_sessions=args.max_sessions,
            progress=progress,
        )
    )
    progress(
        f"elastic live: digest {live['digest'][:12]}, epoch "
        f"{(live['membership'] or {}).get('epoch')}, "
        f"{live['load']['sessions']} sessions "
        f"({live['load']['accepted']} accepted)"
    )
    failures = audit(virtual, live)
    report = {
        "scenario": scenario.name,
        "digests": [virtual["digest"], live["digest"]],
        "deterministic": virtual["digest"] == live["digest"],
        "failures": failures,
        "virtual": virtual,
        "live": live,
    }
    rendered = json.dumps(report, indent=2, sort_keys=True)
    print(rendered)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(rendered + "\n")
    for failure in failures:
        print(f"ELASTIC FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


# ----------------------------------------------------------------------
# CLI self-registration (see repro.experiments.registry)
# ----------------------------------------------------------------------
def _cli_arguments(parser) -> None:
    parser.add_argument(
        "scenario", nargs="?", default=DEFAULT_SCENARIO,
        help=f"scenario JSON with an elastic block "
             f"(default {DEFAULT_SCENARIO})",
    )
    parser.add_argument(
        "--compression", type=float, default=40.0,
        help="virtual seconds per wall second for the live run",
    )
    parser.add_argument(
        "--max-sessions", type=int, default=None,
        help="cap on generated sessions (both runs)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the JSON report to PATH (the CI artifact)",
    )


register(ExperimentSpec(
    name="elastic",
    help="elastic membership gate: replay a scenario's scale events in "
         "virtual time and against a live gateway; the decision digests "
         "must agree, drains must finish with zero underruns, and every "
         "member must end active or departed (exit 1 on any failure)",
    run_cli=run_elastic_cli,
    add_arguments=_cli_arguments,
    bare=True,
    order=96,
))
