"""Figures 6 & 7 — the P1–P8 policy comparison.

Figure 6 is the policy matrix (allocation × migration × staging);
Figure 7 sweeps all eight over θ on both systems, with DRM and 20 %
staging where the policy prescribes them.

Expected shape (Section 4.5): for θ ∈ [0, 1] the even-allocation
policies with both mechanisms (P4) match the clairvoyant P8 and beat
everything else; for θ < 0 the allocation scheme dominates and the
predictive policies (P5–P8) win.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.report import render_table
from repro.cluster.system import LARGE_SYSTEM, SMALL_SYSTEM, SystemConfig
from repro.core.policies import PAPER_POLICIES, Policy
from repro.experiments.base import (
    ExperimentScale,
    SweepResult,
    THETA_GRID,
    Variant,
    resolve_scale,
    run_sweep,
)
from repro.simulation import SimulationConfig


def policy_variant(policy: Policy) -> Variant:
    """Map a Figure 6 policy onto config overrides."""
    return Variant(
        policy.name,
        {
            "placement": policy.placement,
            "migration": policy.migration_policy(),
            "staging_fraction": policy.staging_fraction,
        },
    )


def policy_matrix_table() -> str:
    """Figure 6 as an ASCII table."""
    rows = [
        [p.name, p.placement.capitalize(),
         "Migr" if p.migration else "No Migr",
         f"{p.staging_fraction:.0%} Buffer"]
        for p in PAPER_POLICIES.values()
    ]
    return render_table(
        ["Policy", "Allocation", "Migration", "Client Staging"],
        rows,
        title="Figure 6: policies evaluated",
    )


def run_fig7(
    system: SystemConfig = LARGE_SYSTEM,
    theta_values: Optional[List[float]] = None,
    policies: Optional[Sequence[str]] = None,
    scale: Optional[float] = None,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Reproduce one panel of Figure 7 (utilization vs θ per policy)."""
    exp_scale: ExperimentScale = resolve_scale(scale)
    chosen: Dict[str, Policy] = (
        {name: PAPER_POLICIES[name] for name in policies}
        if policies is not None
        else PAPER_POLICIES
    )
    base = SimulationConfig(
        system=system,
        theta=0.0,
        scheduler="eftf",
        duration=exp_scale.duration,
        warmup=exp_scale.warmup,
        seed=seed,
        client_receive_bandwidth=30.0,
    )
    return run_sweep(
        base,
        theta_values if theta_values is not None else THETA_GRID,
        [policy_variant(p) for p in chosen.values()],
        exp_scale,
        base_seed=seed,
        progress=progress,
    )


def main() -> None:  # pragma: no cover - CLI glue, exercised via repro.cli
    print(policy_matrix_table())
    print()
    for system in (LARGE_SYSTEM, SMALL_SYSTEM):
        result = run_fig7(system=system, progress=print)
        print()
        print(result.render(title=f"Figure 7 ({system.name} system)"))
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
