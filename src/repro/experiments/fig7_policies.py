"""Figures 6 & 7 — the P1–P8 policy comparison.

Figure 6 is the policy matrix (allocation × migration × staging);
Figure 7 sweeps all eight over θ on both systems, with DRM and 20 %
staging where the policy prescribes them.

Expected shape (Section 4.5): for θ ∈ [0, 1] the even-allocation
policies with both mechanisms (P4) match the clairvoyant P8 and beat
everything else; for θ < 0 the allocation scheme dominates and the
predictive policies (P5–P8) win.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.report import render_table
from repro.cluster.system import (
    LARGE_SYSTEM,
    SMALL_SYSTEM,
    SYSTEMS,
    SystemConfig,
)
from repro.core.policies import PAPER_POLICIES, Policy
from repro.experiments.base import (
    ExperimentScale,
    SweepResult,
    THETA_GRID,
    Variant,
    resolve_scale,
    run_sweep,
)
from repro.experiments.registry import (
    Artifact,
    ExperimentSpec,
    add_system_argument,
    register,
)
from repro.registry import RegistryError
from repro.simulation import SimulationConfig


def policy_variant(policy: Policy) -> Variant:
    """Map a Figure 6 policy onto config overrides."""
    return Variant(
        policy.name,
        {
            "placement": policy.placement,
            "migration": policy.migration_policy(),
            "staging_fraction": policy.staging_fraction,
        },
    )


def policy_matrix_table() -> str:
    """Figure 6 as an ASCII table."""
    rows = [
        [p.name, p.placement.capitalize(),
         "Migr" if p.migration else "No Migr",
         f"{p.staging_fraction:.0%} Buffer"]
        for p in PAPER_POLICIES.values()
    ]
    return render_table(
        ["Policy", "Allocation", "Migration", "Client Staging"],
        rows,
        title="Figure 6: policies evaluated",
    )


def run_fig7(
    system: SystemConfig = LARGE_SYSTEM,
    theta_values: Optional[List[float]] = None,
    policies: Optional[Sequence[str]] = None,
    scale: Optional[float] = None,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Reproduce one panel of Figure 7 (utilization vs θ per policy)."""
    exp_scale: ExperimentScale = resolve_scale(scale)
    chosen: Dict[str, Policy] = (
        {name: PAPER_POLICIES[name] for name in policies}
        if policies is not None
        else PAPER_POLICIES
    )
    base = SimulationConfig(
        system=system,
        theta=0.0,
        scheduler="eftf",
        duration=exp_scale.duration,
        warmup=exp_scale.warmup,
        seed=seed,
        client_receive_bandwidth=30.0,
    )
    return run_sweep(
        base,
        theta_values if theta_values is not None else THETA_GRID,
        [policy_variant(p) for p in chosen.values()],
        exp_scale,
        base_seed=seed,
        progress=progress,
    )


# ----------------------------------------------------------------------
# CLI self-registration (see repro.experiments.registry)
# ----------------------------------------------------------------------

def _cli_trace_config(
    system: SystemConfig, seed: int, scale: Optional[float]
) -> SimulationConfig:
    """One representative traced run: policy P4 (even + DRM + 20 %
    staging)."""
    exp_scale = resolve_scale(scale)
    return SimulationConfig(
        system=system,
        theta=0.0,
        placement="even",
        scheduler="eftf",
        migration=MigrationPolicy.paper_default(),
        staging_fraction=0.2,
        client_receive_bandwidth=30.0,
        duration=exp_scale.duration,
        warmup=exp_scale.warmup,
        seed=seed,
    )


def _cli_arguments(parser) -> None:
    add_system_argument(parser)
    parser.add_argument(
        "--policies", default=None,
        help="comma-separated subset, e.g. P1,P4,P8",
    )


def _cli_run(args, progress) -> int:
    policies = args.policies.split(",") if args.policies else None
    try:
        result = run_fig7(
            system=SYSTEMS[args.system], policies=policies,
            scale=args.scale, seed=args.seed, progress=progress,
        )
    except RegistryError as exc:
        raise SystemExit(str(exc))
    print(policy_matrix_table())
    print()
    print(result.render(title=f"Figure 7 ({args.system} system)"))
    return 0


def _cli_artifacts(scale, seed, progress):
    for system in (LARGE_SYSTEM, SMALL_SYSTEM):
        title = f"Figure 7 ({system.name})"
        result = run_fig7(
            system=system, scale=scale, seed=seed, progress=progress,
        )
        yield Artifact(
            stem=f"fig7_{system.name}",
            title=title,
            text=result.render(title=title),
            sweep=result,
        )


register(ExperimentSpec(
    name="fig7",
    help="policy comparison P1-P8 (Figure 7)",
    run_cli=_cli_run,
    add_arguments=_cli_arguments,
    trace_config=_cli_trace_config,
    artifacts=_cli_artifacts,
    order=30,
))


def _cli_run_matrix(args, progress) -> int:
    print(policy_matrix_table())
    return 0


def _cli_matrix_artifacts(scale, seed, progress):
    yield Artifact(
        stem="fig6_matrix",
        title="Figure 6",
        text=policy_matrix_table(),
    )


register(ExperimentSpec(
    name="fig6",
    help="print the policy matrix (Figure 6)",
    run_cli=_cli_run_matrix,
    artifacts=_cli_matrix_artifacts,
    order=5,
    bare=True,
))


def main() -> None:  # pragma: no cover - CLI glue, exercised via repro.cli
    print(policy_matrix_table())
    print()
    for system in (LARGE_SYSTEM, SMALL_SYSTEM):
        result = run_fig7(system=system, progress=print)
        print()
        print(result.render(title=f"Figure 7 ({system.name} system)"))
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
