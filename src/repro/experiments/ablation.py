"""EXT-ABL — spare-bandwidth scheduler ablation.

DESIGN.md calls out the choice of EFTF as the design decision Theorem 1
justifies; this ablation measures it against the alternatives in
:mod:`repro.core.schedulers` under the Figure 5 setup (20 % staging, no
migration, 30 Mb/s receive cap):

* ``eftf`` — the paper's earliest-finish-first greedy;
* ``proportional`` — spare split evenly (water-filling);
* ``lftf`` — latest-finish-first (adversarial straw man);
* ``none`` — spare idle (pure continuous transmission).

Expected shape: EFTF ≥ proportional > none, with LFTF between
proportional and none — freeing whole slots early (EFTF) is what turns
workahead into admission capacity.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.cluster.system import SMALL_SYSTEM, SystemConfig
from repro.core.migration import MigrationPolicy
from repro.experiments.base import (
    ExperimentScale,
    SweepResult,
    THETA_GRID_COARSE,
    Variant,
    resolve_scale,
    run_sweep,
)
from repro.experiments.registry import Artifact, ExperimentSpec, register
from repro.simulation import SimulationConfig

SCHEDULERS: Sequence[str] = ("eftf", "proportional", "lftf", "none")


def run_ablation(
    system: SystemConfig = SMALL_SYSTEM,
    theta_values: Optional[List[float]] = None,
    schedulers: Sequence[str] = SCHEDULERS,
    staging_fraction: float = 0.2,
    scale: Optional[float] = None,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Utilization vs θ for each spare-bandwidth scheduler."""
    exp_scale: ExperimentScale = resolve_scale(scale)
    base = SimulationConfig(
        system=system,
        theta=0.0,
        placement="even",
        migration=MigrationPolicy.disabled(),
        staging_fraction=staging_fraction,
        duration=exp_scale.duration,
        warmup=exp_scale.warmup,
        seed=seed,
        client_receive_bandwidth=30.0,
    )
    variants = [Variant(name, {"scheduler": name}) for name in schedulers]
    return run_sweep(
        base,
        theta_values if theta_values is not None else THETA_GRID_COARSE,
        variants,
        exp_scale,
        base_seed=seed,
        progress=progress,
    )


# ----------------------------------------------------------------------
# CLI self-registration (see repro.experiments.registry)
# ----------------------------------------------------------------------

def _cli_run(args, progress) -> int:
    result = run_ablation(
        scale=args.scale, seed=args.seed, progress=progress,
    )
    print(result.render(title="EXT-ABL: scheduler ablation"))
    return 0


def _cli_artifacts(scale, seed, progress):
    result = run_ablation(scale=scale, seed=seed, progress=progress)
    yield Artifact(
        stem="ext_abl", title="EXT-ABL",
        text=result.render(title="EXT-ABL"), sweep=result,
    )


register(ExperimentSpec(
    name="ablation",
    help="spare-bandwidth scheduler ablation",
    run_cli=_cli_run,
    artifacts=_cli_artifacts,
    order=50,
))


def main() -> None:  # pragma: no cover - CLI glue, exercised via repro.cli
    result = run_ablation(progress=print)
    print()
    print(result.render(title="EXT-ABL: spare-bandwidth scheduler ablation"))


if __name__ == "__main__":  # pragma: no cover
    main()
