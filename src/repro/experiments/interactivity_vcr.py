"""EXT-VCR — viewer interactivity (pause/resume).

Section 6 lists "interactivity in semi-continuous transmission" among
future research directions, and Theorem 1's optimality proof assumes
"the videos are not paused".  This experiment relaxes that assumption:
a stochastic pause/resume process is attached to every admitted viewer
(:mod:`repro.workload.interactivity`) and pause intensity is swept.

Expected shape:

* utilization and acceptance decline smoothly with pause intensity —
  a paused viewer's stream keeps its minimum-flow slot while its
  playback makes no progress, so slots are held longer;
* client staging softens the decline: a paused viewer's buffer keeps
  absorbing workahead until full, so transmissions still finish early;
* no underruns at any intensity — the minimum-flow floor plus the
  pause-exemption (idle once the buffer is full) keep playback safe.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.cluster.system import SMALL_SYSTEM, SystemConfig
from repro.core.migration import MigrationPolicy
from repro.experiments.base import (
    ExperimentScale,
    SweepResult,
    Variant,
    resolve_scale,
    run_sweep,
)
from repro.experiments.registry import Artifact, ExperimentSpec, register
from repro.simulation import SimulationConfig

#: Pause intensities: expected pauses per hour of viewing.
PAUSES_PER_HOUR: Sequence[float] = (0.0, 0.5, 1.0, 2.0, 4.0)


def variants() -> List[Variant]:
    return [
        Variant("no staging", {"staging_fraction": 0.0}),
        Variant("20% staging", {"staging_fraction": 0.2}),
    ]


def run_interactivity(
    system: SystemConfig = SMALL_SYSTEM,
    pauses_per_hour: Sequence[float] = PAUSES_PER_HOUR,
    mean_pause: float = 300.0,
    scale: Optional[float] = None,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Utilization vs pause intensity, with and without staging."""
    exp_scale: ExperimentScale = resolve_scale(scale)
    base = SimulationConfig(
        system=system,
        theta=0.27,
        placement="even",
        migration=MigrationPolicy.paper_default(),
        scheduler="eftf",
        duration=exp_scale.duration,
        warmup=exp_scale.warmup,
        seed=seed,
        client_receive_bandwidth=30.0,
        mean_pause=mean_pause,
        # x_field sweeps pause_hazard; 0 must stay exactly 0 (disabled).
    )
    hazards = [p / 3600.0 for p in pauses_per_hour]
    result = run_sweep(
        base,
        hazards,
        variants(),
        exp_scale,
        x_field="pause_hazard",
        base_seed=seed,
        progress=progress,
    )
    # Re-express the x axis in pauses/hour for readability.
    result.x_values = [h * 3600.0 for h in result.x_values]
    result.x_label = "pauses_per_hour"
    return result


# ----------------------------------------------------------------------
# CLI self-registration (see repro.experiments.registry)
# ----------------------------------------------------------------------

def _cli_run(args, progress) -> int:
    result = run_interactivity(
        scale=args.scale, seed=args.seed, progress=progress,
    )
    print(result.render(
        title="EXT-VCR: viewer pause/resume interactivity"
    ))
    return 0


def _cli_artifacts(scale, seed, progress):
    result = run_interactivity(scale=scale, seed=seed, progress=progress)
    yield Artifact(
        stem="ext_vcr", title="EXT-VCR",
        text=result.render(title="EXT-VCR"), sweep=result,
    )


register(ExperimentSpec(
    name="vcr",
    help="viewer pause/resume interactivity (EXT-VCR)",
    run_cli=_cli_run,
    artifacts=_cli_artifacts,
    order=70,
))


def main() -> None:  # pragma: no cover - CLI glue, exercised via repro.cli
    result = run_interactivity(progress=print)
    print()
    print(result.render(title="EXT-VCR: viewer pause/resume interactivity"))


if __name__ == "__main__":  # pragma: no cover
    main()
