"""Figure 4 — the effect of Dynamic Request Migration.

Setup (Section 4.2): even video allocation, "only enough staging at the
client to allow for request migration" (we model that as a zero staging
buffer with an instantaneous switch), migration chain length 1.

Curves:

* **large system** — no migration / hops per request = 1 / unlimited
  hops per request;
* **small system** — no migration / migration (chain length = 1).

Expected shape: migration lifts utilization across the θ range;
hops = 1 is nearly indistinguishable from unlimited hops; every curve
sags at strongly negative θ where even placement runs out of copies of
the hot videos.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.cluster.system import (
    LARGE_SYSTEM,
    SMALL_SYSTEM,
    SYSTEMS,
    SystemConfig,
)
from repro.core.migration import MigrationPolicy
from repro.experiments.base import (
    ExperimentScale,
    SweepResult,
    THETA_GRID,
    Variant,
    resolve_scale,
    run_sweep,
)
from repro.experiments.registry import (
    Artifact,
    ExperimentSpec,
    add_system_argument,
    register,
)
from repro.simulation import SimulationConfig


def variants_for(system_name: str) -> List[Variant]:
    """The Figure 4 curve set for each panel."""
    no_migration = Variant(
        "no migration", {"migration": MigrationPolicy.disabled()}
    )
    if system_name == "large":
        return [
            no_migration,
            Variant(
                "hops per request = 1",
                {"migration": MigrationPolicy.paper_default()},
            ),
            Variant(
                "unlimited hops",
                {"migration": MigrationPolicy.unlimited_hops()},
            ),
        ]
    return [
        no_migration,
        Variant(
            "migration: chain length = 1",
            {"migration": MigrationPolicy.paper_default()},
        ),
    ]


def run_fig4(
    system: SystemConfig = LARGE_SYSTEM,
    theta_values: Optional[List[float]] = None,
    scale: Optional[float] = None,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Reproduce one panel of Figure 4 (utilization vs θ)."""
    exp_scale: ExperimentScale = resolve_scale(scale)
    base = SimulationConfig(
        system=system,
        theta=0.0,
        placement="even",
        staging_fraction=0.0,
        scheduler="eftf",
        duration=exp_scale.duration,
        warmup=exp_scale.warmup,
        seed=seed,
    )
    return run_sweep(
        base,
        theta_values if theta_values is not None else THETA_GRID,
        variants_for(system.name),
        exp_scale,
        base_seed=seed,
        progress=progress,
    )


# ----------------------------------------------------------------------
# CLI self-registration (see repro.experiments.registry)
# ----------------------------------------------------------------------

def _cli_trace_config(
    system: SystemConfig, seed: int, scale: Optional[float]
) -> SimulationConfig:
    """One representative traced run: mid-theta, DRM on, no staging."""
    exp_scale = resolve_scale(scale)
    return SimulationConfig(
        system=system,
        theta=0.0,
        placement="even",
        scheduler="eftf",
        migration=MigrationPolicy.paper_default(),
        staging_fraction=0.0,
        duration=exp_scale.duration,
        warmup=exp_scale.warmup,
        seed=seed,
    )


def _cli_run(args, progress) -> int:
    result = run_fig4(
        system=SYSTEMS[args.system], scale=args.scale,
        seed=args.seed, progress=progress,
    )
    print(result.render(title=f"Figure 4 ({args.system} system)"))
    return 0


def _cli_artifacts(scale, seed, progress):
    for system in (LARGE_SYSTEM, SMALL_SYSTEM):
        title = f"Figure 4 ({system.name})"
        result = run_fig4(
            system=system, scale=scale, seed=seed, progress=progress,
        )
        yield Artifact(
            stem=f"fig4_{system.name}",
            title=title,
            text=result.render(title=title),
            sweep=result,
        )


register(ExperimentSpec(
    name="fig4",
    help="effect of dynamic request migration (Figure 4)",
    run_cli=_cli_run,
    add_arguments=add_system_argument,
    trace_config=_cli_trace_config,
    artifacts=_cli_artifacts,
    order=10,
))


def main() -> None:  # pragma: no cover - CLI glue, exercised via repro.cli
    for system in (LARGE_SYSTEM, SMALL_SYSTEM):
        result = run_fig4(system=system, progress=print)
        print()
        print(result.render(title=f"Figure 4 ({system.name} system)"))
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
