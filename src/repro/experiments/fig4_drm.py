"""Figure 4 — the effect of Dynamic Request Migration.

Setup (Section 4.2): even video allocation, "only enough staging at the
client to allow for request migration" (we model that as a zero staging
buffer with an instantaneous switch), migration chain length 1.

Curves:

* **large system** — no migration / hops per request = 1 / unlimited
  hops per request;
* **small system** — no migration / migration (chain length = 1).

Expected shape: migration lifts utilization across the θ range;
hops = 1 is nearly indistinguishable from unlimited hops; every curve
sags at strongly negative θ where even placement runs out of copies of
the hot videos.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.cluster.system import LARGE_SYSTEM, SMALL_SYSTEM, SystemConfig
from repro.core.migration import MigrationPolicy
from repro.experiments.base import (
    ExperimentScale,
    SweepResult,
    THETA_GRID,
    Variant,
    resolve_scale,
    run_sweep,
)
from repro.simulation import SimulationConfig


def variants_for(system_name: str) -> List[Variant]:
    """The Figure 4 curve set for each panel."""
    no_migration = Variant(
        "no migration", {"migration": MigrationPolicy.disabled()}
    )
    if system_name == "large":
        return [
            no_migration,
            Variant(
                "hops per request = 1",
                {"migration": MigrationPolicy.paper_default()},
            ),
            Variant(
                "unlimited hops",
                {"migration": MigrationPolicy.unlimited_hops()},
            ),
        ]
    return [
        no_migration,
        Variant(
            "migration: chain length = 1",
            {"migration": MigrationPolicy.paper_default()},
        ),
    ]


def run_fig4(
    system: SystemConfig = LARGE_SYSTEM,
    theta_values: Optional[List[float]] = None,
    scale: Optional[float] = None,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Reproduce one panel of Figure 4 (utilization vs θ)."""
    exp_scale: ExperimentScale = resolve_scale(scale)
    base = SimulationConfig(
        system=system,
        theta=0.0,
        placement="even",
        staging_fraction=0.0,
        scheduler="eftf",
        duration=exp_scale.duration,
        warmup=exp_scale.warmup,
        seed=seed,
    )
    return run_sweep(
        base,
        theta_values if theta_values is not None else THETA_GRID,
        variants_for(system.name),
        exp_scale,
        base_seed=seed,
        progress=progress,
    )


def main() -> None:  # pragma: no cover - CLI glue, exercised via repro.cli
    for system in (LARGE_SYSTEM, SMALL_SYSTEM):
        result = run_fig4(system=system, progress=print)
        print()
        print(result.render(title=f"Figure 4 ({system.name} system)"))
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
