"""Batching / chaining admission: share one server stream among viewers.

When a request arrives for a video whose newest accepted stream (the
**parent**) started less than ``window_seconds`` ago, the tier can admit
it as a **chained** session instead of opening a new server stream.
The child plays the video from three spliced sources:

1. **Cached prefix** — positions ``[0, prefix_used)`` stream from the
   proxy's prefix cache at exactly the view bandwidth, starting the
   instant the child is admitted.  Zero server bandwidth.
2. **Catch-up patch** — positions ``[prefix_used, gap_mb)`` (whatever
   the cache doesn't cover) stream from a data server as an ordinary —
   but *truncated* — admission.  The patch occupies a server slot only
   for ``patch_mb / b_view`` seconds instead of the full video.
3. **Shared feed** — positions ``[gap_mb, size)`` arrive as a relay of
   the parent's *playout*: the parent client forwards each byte at the
   moment it plays it, so position ``p`` is delivered at
   ``parent.playback_start + p / b_view``.  Zero incremental server
   bandwidth, and — because the relay follows the playout schedule, not
   the parent's transmission — it is independent of the parent's
   workahead, buffer history, or DRM migrations (the parent's own
   minimum-flow invariant keeps *its* playback fed; the relay simply
   echoes it).

The no-underrun argument, with ``gap = child.start − parent.start``:
the child plays position ``p`` at ``child.start + p/b_view``; the relay
delivers it at ``parent.start + p/b_view`` — exactly ``gap`` seconds
earlier.  The cached prefix is delivered exactly on the playout
schedule, and the patch is an ordinary minimum-flow stream (rate ≥
``b_view``), so every source runs at or ahead of playback.  The child's
client buffers the early relay bytes, which is why admission requires
``client.buffer_capacity >= gap_mb``.  Full derivation in
``docs/CACHING.md``.

Batching policies live in the :data:`BATCHING` registry — callables
``(tier, request, parent, gap_seconds, prefix_mb, now) ->
Optional[ChainPlan]`` returning None to decline:

* ``window`` — chain only when the cached prefix covers the whole gap
  (no patch stream ever opened).
* ``patch``  — additionally open a truncated catch-up stream for the
  uncached part of the gap.
* ``none``   — never chain (cache-only operation; the live gateway
  requires this mode since chained sessions have no server stream for
  its pacing loop to drain).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster.request import EPS_MB, Request, RequestState
from repro.registry import Registry
from repro.workload.catalog import Video

#: Pluggable batching/chaining admission policies.
BATCHING: Registry = Registry("batching policy")


@dataclass(frozen=True)
class ChainPlan:
    """The splice geometry decided at admission time (all Mb / seconds).

    Attributes:
        gap_seconds: child start minus parent playback start.
        gap_mb: bytes the child must source outside the shared feed
            (``gap_seconds * b_view``).
        prefix_mb: leading part of the gap served from the cache.
        patch_mb: remainder of the gap served by a truncated server
            stream (0 for pure chains).
    """

    gap_seconds: float
    gap_mb: float
    prefix_mb: float
    patch_mb: float


def _gap_mb(tier, request: Request, gap_seconds: float) -> Optional[float]:
    """Shared admission gates; returns the gap in Mb, or None to decline."""
    if gap_seconds < 0 or gap_seconds > tier.policy.window_seconds:
        return None
    gap_mb = request.view_bandwidth * gap_seconds
    # The relay runs `gap_seconds` ahead of the child's playout, so the
    # client must be able to stage the whole gap.
    if request.client.buffer_capacity + EPS_MB < gap_mb:
        return None
    return gap_mb


@BATCHING.register(
    "window",
    help="chain when the cached prefix covers the whole join gap",
)
def batch_window(
    tier, request, parent, gap_seconds: float, prefix_mb: float, now: float
) -> Optional[ChainPlan]:
    gap_mb = _gap_mb(tier, request, gap_seconds)
    if gap_mb is None:
        return None
    used = min(prefix_mb, gap_mb)
    if gap_mb - used > EPS_MB:
        return None  # uncovered gap and no patching in this policy
    return ChainPlan(gap_seconds, gap_mb, used, 0.0)


@BATCHING.register(
    "patch",
    help="chain with a truncated catch-up stream for the uncached gap",
)
def batch_patch(
    tier, request, parent, gap_seconds: float, prefix_mb: float, now: float
) -> Optional[ChainPlan]:
    gap_mb = _gap_mb(tier, request, gap_seconds)
    if gap_mb is None:
        return None
    used = min(prefix_mb, gap_mb)
    return ChainPlan(gap_seconds, gap_mb, used, max(0.0, gap_mb - used))


@BATCHING.register(
    "none",
    help="never chain (cache-only; required by the live gateway)",
)
def batch_none(
    tier, request, parent, gap_seconds: float, prefix_mb: float, now: float
) -> Optional[ChainPlan]:
    return None


class ChainedSession:
    """Runtime state of one chained (shared) session.

    ``child`` is the chained request; for *patch* chains its ``video``
    and ``size`` are truncated to the patch while it streams, so this
    object keeps the original :class:`Video` for the full-session math.

    Attributes:
        merged: patch transmission complete (True from the start for
            pure chains) — the session is fully carried by the feed.
        parent_finished: the parent's server transmission has completed
            (its playout — and hence the relay — continues regardless).
        severed_at: time the shared feed was lost to a parent drop, or
            None while healthy.
        finished: terminal flag set by the tier when delivery completes.
    """

    __slots__ = (
        "child",
        "parent",
        "video",
        "join_time",
        "plan",
        "merged",
        "parent_finished",
        "severed_at",
        "finished",
    )

    def __init__(
        self, child: Request, parent: Request, video: Video,
        join_time: float, plan: ChainPlan,
    ) -> None:
        self.child = child
        self.parent = parent
        self.video = video
        self.join_time = float(join_time)
        self.plan = plan
        self.merged = plan.patch_mb <= EPS_MB
        self.parent_finished = False
        self.severed_at: Optional[float] = None
        self.finished = False

    # -- delivery / playout curves (the no-underrun invariant) ---------
    def patch_bytes(self, now: float) -> float:
        """Megabits delivered by the catch-up patch stream by *now*."""
        plan = self.plan
        if plan.patch_mb <= EPS_MB:
            return 0.0
        request = self.child
        sent = request.bytes_sent
        if request.state is RequestState.ACTIVE and request.server_id is not None:
            sent += max(0.0, request.rate) * max(0.0, now - request.last_sync)
        return min(plan.patch_mb, sent)

    def contiguous_delivered(self, now: float) -> float:
        """Megabits available *contiguously from position 0* by *now*.

        This is the quantity playback actually depends on: bytes from a
        later splice segment are useless until every earlier segment has
        filled in.  Piecewise: the cached prefix streams at ``b_view``
        from the join, the patch follows its server stream, and the feed
        frontier is the parent's playout position (frozen at
        ``severed_at`` if the parent was dropped).
        """
        plan = self.plan
        vb = self.video.view_bandwidth
        elapsed = max(0.0, now - self.join_time)
        covered = min(plan.prefix_mb, vb * elapsed)
        if covered + EPS_MB < plan.prefix_mb:
            return covered  # still draining the cached prefix
        if plan.patch_mb > EPS_MB:
            covered = plan.prefix_mb + self.patch_bytes(now)
            if covered + EPS_MB < plan.gap_mb:
                return covered  # patch still catching up
        horizon = now if self.severed_at is None else min(now, self.severed_at)
        frontier = vb * max(0.0, horizon - self.parent.playback_start)
        return min(self.video.size, max(plan.gap_mb, frontier))

    def playout(self, now: float) -> float:
        """Megabits consumed by the child's playback by *now*."""
        elapsed = max(0.0, now - self.join_time)
        return min(self.video.size, self.video.view_bandwidth * elapsed)

    def margin(self, now: float) -> float:
        """Delivered minus consumed, Mb — negative means underrun."""
        return self.contiguous_delivered(now) - self.playout(now)

    @property
    def delivery_end(self) -> float:
        """Time the feed delivers the last byte: the parent's playout
        end (the relay echoes the parent's playback)."""
        return self.parent.playback_start + self.video.length

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ChainedSession child=#{self.child.request_id} "
            f"parent=#{self.parent.request_id} video={self.video.video_id} "
            f"gap={self.plan.gap_seconds:.1f}s patch={self.plan.patch_mb:.1f}Mb"
            f"{' merged' if self.merged else ''}"
            f"{' severed' if self.severed_at is not None else ''}>"
        )
