"""The prefix-cache / stream-sharing tier: config and runtime.

:class:`PrefixPolicy` is the frozen config block (round-trips through
``to_dict``/``from_dict`` like every other policy); :class:`PrefixTier`
is the runtime that sits between the distribution controller's front
door and normal admission:

* at build time it computes a replication plan (via the
  :data:`~repro.prefix.cache.PREFIX_STRATEGIES` strategy named in the
  config) and warms the cache through the engine at disk throughput;
* on each arrival the controller offers it the request first
  (:meth:`PrefixTier.intercept`) — the active
  :data:`~repro.prefix.chaining.BATCHING` policy decides whether to
  chain it onto a live stream, open a truncated catch-up patch, or
  decline and let normal admission run;
* it rides the controller's decision hooks (:meth:`PrefixTier.observe`)
  to track stream leaders and commit patch chains, and the finish/drop
  notifications to complete or sever chains coherently (a DRM-migrated
  parent drags its children along for free — the relay follows the
  parent's *playout*, which migration never disturbs).

Chained sessions never occupy a server slot: the tier records their
arrival/acceptance itself and owns their lifecycle end-to-end.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.cluster.profile import DEFAULT_DISK_THROUGHPUT
from repro.cluster.request import EPS_MB, Request, RequestState
from repro.core.admission import AdmissionOutcome
from repro.faults.invariants import InvariantViolation
from repro.obs.records import TraceKind
from repro.prefix.cache import PREFIX_STRATEGIES, PrefixCache
from repro.prefix.chaining import BATCHING, ChainedSession
from repro.workload.catalog import Video


@dataclass(frozen=True)
class PrefixPolicy:
    """Configuration of the prefix-cache / stream-sharing tier.

    Attributes:
        strategy: replication strategy name from
            :data:`~repro.prefix.cache.PREFIX_STRATEGIES`.
        batching: chaining admission policy name from
            :data:`~repro.prefix.chaining.BATCHING`.
        capacity_mb: total cache budget for warmed prefixes, Mb.
        prefix_seconds: how much of each video's head a full prefix
            holds, seconds of playback.
        window_seconds: maximum join gap behind a live stream for
            chaining to be considered.
    """

    strategy: str = "popularity"
    batching: str = "window"
    capacity_mb: float = 50_000.0
    prefix_seconds: float = 300.0
    window_seconds: float = 120.0

    def __post_init__(self) -> None:
        PREFIX_STRATEGIES.get(self.strategy)
        BATCHING.get(self.batching)
        if self.capacity_mb < 0:
            raise ValueError(
                f"capacity_mb must be >= 0, got {self.capacity_mb}"
            )
        if self.prefix_seconds <= 0:
            raise ValueError(
                f"prefix_seconds must be positive, got {self.prefix_seconds}"
            )
        if self.window_seconds < 0:
            raise ValueError(
                f"window_seconds must be >= 0, got {self.window_seconds}"
            )

    def to_dict(self) -> Dict[str, Any]:
        from repro.serialize import shallow_dict

        return shallow_dict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PrefixPolicy":
        from repro.serialize import check_fields

        check_fields(cls, data)
        return cls(**data)


class PrefixTier:
    """Runtime of the proxy tier for one simulation.

    Args:
        engine: the simulation engine (warming + deferred completions).
        controller: the distribution controller this tier fronts.
        catalog / popularity / placement: the run's workload and replica
            map (strategies read these).
        placement_policy: the placement *policy* object, when available
            — its ``warm_targets`` seam supplies the popularity ranking.
        policy: the :class:`PrefixPolicy` config block.
        strict: raise :class:`InvariantViolation` on a chained-session
            underrun (otherwise underruns are only counted).
        tracer: optional obs tracer (``cache.*`` records).
    """

    def __init__(
        self,
        engine,
        controller,
        catalog,
        popularity,
        placement,
        placement_policy=None,
        policy: Optional[PrefixPolicy] = None,
        strict: bool = False,
        tracer=None,
    ) -> None:
        self.engine = engine
        self.controller = controller
        self.catalog = catalog
        self.popularity = popularity
        self.placement = placement
        self.placement_policy = placement_policy
        self.policy = policy if policy is not None else PrefixPolicy()
        self.strict = bool(strict)
        self.tracer = tracer
        self.cache = PrefixCache(self.policy.capacity_mb)
        self._batching = BATCHING.get(self.policy.batching)
        #: Newest accepted (server-backed) stream per video id.
        self._leaders: Dict[int, Request] = {}
        #: Committed chains by child request id.
        self._chains: Dict[int, ChainedSession] = {}
        #: Live chains by parent request id (drop cascade / finish fanout).
        self._children: Dict[int, List[ChainedSession]] = {}
        #: Patch chains awaiting their admission decision.
        self._pending: Dict[int, ChainedSession] = {}
        #: Ids of requests admitted as chains — never promoted to leader.
        self._chained_ids: Set[int] = set()
        self._warm_queue: Deque[Tuple[int, float]] = deque()
        self._warming = False
        #: Chained sessions whose delivery dipped below playout (should
        #: stay 0 — the acceptance gate of the ISSUE of record).
        self.chain_underruns = 0
        #: Shared feeds lost to a parent drop.
        self.feeds_severed = 0
        registry = self.metrics.registry
        if registry is not None:
            registry.gauge(
                "cache.bytes_held_mb", supplier=lambda: self.cache.bytes_held
            )
            registry.gauge(
                "cache.chained_active", supplier=lambda: float(self.chained_active)
            )

    @property
    def metrics(self):
        return self.controller.metrics

    @property
    def chained_active(self) -> int:
        """Chained sessions whose shared feed is still delivering."""
        return len(self._chains)

    # ------------------------------------------------------------------
    # Cache warming
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Compute the initial replication plan and begin warming."""
        self.recompute()

    def recompute(self) -> None:
        """Re-plan replication (call after catalog / popularity churn).

        Entries the new plan drops are evicted instantly; new entries
        queue behind any warm already in flight and stream in at disk
        throughput, one at a time (the proxy has one ingest path).
        """
        plan = PREFIX_STRATEGIES.get(self.policy.strategy)(self)
        self._warm_queue = deque(self.cache.retarget(plan))
        if not self._warming:
            self._warm_next()

    def _disk_throughput(self) -> float:
        rates = [
            s.disk_throughput for s in self.controller.servers.values() if s.up
        ]
        if not rates:
            return DEFAULT_DISK_THROUGHPUT
        return sum(rates) / len(rates)

    def _warm_next(self) -> None:
        if not self._warm_queue:
            self._warming = False
            return
        self._warming = True
        video_id, mb = self._warm_queue.popleft()
        seconds = mb / self._disk_throughput()
        self.engine.schedule(
            seconds,
            lambda: self._finish_warm(video_id, mb, seconds),
            kind="cache:warm",
        )

    def _finish_warm(self, video_id: int, mb: float, seconds: float) -> None:
        if self.cache.commit(video_id, mb) and self.tracer is not None:
            self.tracer.emit(
                TraceKind.CACHE_WARM, self.engine.now,
                video=video_id, prefix_mb=round(mb, 6),
                seconds=round(seconds, 6),
            )
        self._warm_next()

    # ------------------------------------------------------------------
    # Admission path
    # ------------------------------------------------------------------
    def _live_leader(self, video_id: int, now: float) -> Optional[Request]:
        """The chainable stream for *video_id*, or None.

        A leader stays chainable after its *transmission* finishes — the
        relay follows its playout, which runs to ``playback_end`` — but
        not once it pauses playback (the relay schedule would stall) or
        is dropped/rejected.
        """
        leader = self._leaders.get(video_id)
        if leader is None:
            return None
        if leader.state not in (RequestState.ACTIVE, RequestState.FINISHED):
            return None
        if leader.state is RequestState.ACTIVE and leader.server_id is None:
            return None  # dropped and awaiting re-admission (retry queue)
        if leader.playback_paused:
            return None
        return leader

    def intercept(
        self, request: Request, now: float
    ) -> Optional[AdmissionOutcome]:
        """Offer an arriving *request* to the tier (controller front door).

        Returns ``ACCEPTED_CHAINED`` for a pure chain (the request never
        reaches normal admission), or None to fall through — possibly
        with the request truncated to a catch-up patch, in which case
        :meth:`observe` completes or cancels the chain once the
        admission decision lands.
        """
        video_id = request.video.video_id
        prefix_mb = self.cache.warmed_mb(video_id)
        self.metrics.record_cache_lookup(hit=prefix_mb > 0.0)
        leader = self._live_leader(video_id, now)
        if leader is None:
            return None
        plan = self._batching(
            self, request, leader, now - leader.playback_start, prefix_mb, now
        )
        if plan is None:
            return None
        chain = ChainedSession(request, leader, request.video, now, plan)
        chain.parent_finished = leader.state is RequestState.FINISHED
        if plan.patch_mb > EPS_MB:
            # Truncate the transfer to the patch and fall through to
            # normal admission; the full Video is kept on the chain.
            patch = Video(
                video_id=video_id,
                length=plan.patch_mb / request.view_bandwidth,
                view_bandwidth=request.view_bandwidth,
            )
            request.video = patch
            request.size = patch.size
            self._pending[request.request_id] = chain
            return None
        self.metrics.record_arrival()
        self.metrics.record_accept()
        self._commit(chain, now, patched=False)
        return AdmissionOutcome.ACCEPTED_CHAINED

    def observe(self, outcome: AdmissionOutcome, request: Request) -> None:
        """Controller decision hook: commit/cancel pending patch chains
        and track stream leaders."""
        chain = self._pending.pop(request.request_id, None)
        now = self.engine.now
        if chain is not None:
            if outcome.accepted:
                self._commit(chain, now, patched=True)
            else:
                # Rejected patch: restore the full transfer so a retry
                # queue resubmits the real request.
                request.video = chain.video
                request.size = chain.video.size
            return
        if (
            outcome.accepted
            and request.server_id is not None
            and request.request_id not in self._chained_ids
        ):
            self._leaders[request.video.video_id] = request

    def _commit(
        self, chain: ChainedSession, now: float, patched: bool
    ) -> None:
        child = chain.child
        self._chains[child.request_id] = chain
        self._children.setdefault(chain.parent.request_id, []).append(chain)
        self._chained_ids.add(child.request_id)
        self.metrics.record_chained(patched=patched)
        if chain.plan.prefix_mb > EPS_MB:
            self.metrics.record_cache_bytes(chain.plan.prefix_mb)
        if self.tracer is not None:
            self.tracer.emit(
                TraceKind.CACHE_CHAIN, now,
                request=child.request_id,
                parent=chain.parent.request_id,
                video=chain.video.video_id,
                gap=round(chain.plan.gap_seconds, 6),
                prefix_mb=round(chain.plan.prefix_mb, 6),
                patch_mb=round(chain.plan.patch_mb, 6),
            )
        self._check_chain(chain, now)
        if chain.parent_finished and chain.merged:
            self._schedule_child_finish(chain)

    # ------------------------------------------------------------------
    # Lifecycle notifications
    # ------------------------------------------------------------------
    def on_stream_finish(self, request: Request, now: float) -> None:
        """Controller ``_on_finish`` hook: patch completions + parent
        transmission completions."""
        chain = self._chains.get(request.request_id)
        if chain is not None and not chain.merged:
            chain.merged = True
            if self.tracer is not None:
                self.tracer.emit(
                    TraceKind.CACHE_MERGE, now,
                    request=request.request_id,
                    parent=chain.parent.request_id,
                    video=chain.video.video_id,
                )
            self._check_chain(chain, now)
            if chain.parent_finished:
                self._schedule_child_finish(chain)
        children = self._children.get(request.request_id)
        if children:
            for child_chain in list(children):
                child_chain.parent_finished = True
                if child_chain.merged and not child_chain.finished:
                    self._schedule_child_finish(child_chain)
                # un-merged patch chains reschedule at merge time

    def on_stream_drop(self, request: Request) -> None:
        """Failover ``on_drop`` hook: sever chains touching *request*."""
        now = self.engine.now
        chain = self._chains.pop(request.request_id, None)
        if chain is not None and not chain.finished:
            # A chained child's *patch* stream was dropped mid-flight.
            chain.severed_at = now
            self.feeds_severed += 1
            siblings = self._children.get(chain.parent.request_id)
            if siblings and chain in siblings:
                siblings.remove(chain)
        children = self._children.pop(request.request_id, None)
        for child_chain in children or []:
            if child_chain.finished or child_chain.severed_at is not None:
                continue
            child_chain.severed_at = now
            self.feeds_severed += 1
            child = child_chain.child
            self._chains.pop(child.request_id, None)
            self._pending.pop(child.request_id, None)
            if child.state is RequestState.ACTIVE and child.server_id is None:
                # Pure chained session: lost with its parent.  (Patch
                # children keep their own server stream; only the
                # shared remainder is lost.)
                child.mark_dropped(now)
                self.metrics.record_drop()
                if self.tracer is not None:
                    self.tracer.emit(
                        TraceKind.REQUEST_DROP, now,
                        request=child.request_id, server=None,
                    )

    def _schedule_child_finish(self, chain: ChainedSession) -> None:
        now = self.engine.now
        self.engine.schedule(
            max(0.0, chain.delivery_end - now),
            lambda: self._finish_child(chain),
            kind="cache:chain_finish",
        )

    def _finish_child(self, chain: ChainedSession) -> None:
        if chain.finished or chain.severed_at is not None:
            return
        now = self.engine.now
        chain.finished = True
        child = chain.child
        self._check_chain(chain, now)
        self._chains.pop(child.request_id, None)
        siblings = self._children.get(chain.parent.request_id)
        if siblings and chain in siblings:
            siblings.remove(chain)
        if child.state is RequestState.ACTIVE and child.server_id is None:
            # Pure chained session: the tier owns its whole lifecycle.
            # (Patch children were already finished by their manager.)
            child.mark_finished(now)
            self.metrics.record_finish()
            self.controller.completed.append(child)
            if self.tracer is not None:
                self.tracer.emit(
                    TraceKind.REQUEST_FINISH, now,
                    request=child.request_id, server=None,
                )

    # ------------------------------------------------------------------
    # Invariants / introspection
    # ------------------------------------------------------------------
    def _check_chain(self, chain: ChainedSession, now: float) -> None:
        margin = chain.margin(now)
        if margin >= -1e-3:
            return
        self.chain_underruns += 1
        if self.tracer is not None:
            self.tracer.emit(
                TraceKind.INVARIANT_VIOLATION, now,
                invariant="chain_no_underrun",
                subject=f"request {chain.child.request_id}",
                detail=f"delivered {-margin:.6f} Mb behind playout",
            )
        if self.strict:
            raise InvariantViolation(
                "chain_no_underrun",
                f"request {chain.child.request_id}",
                f"contiguous delivery {-margin:.6f} Mb behind playout "
                f"(parent {chain.parent.request_id}, "
                f"gap {chain.plan.gap_seconds:.3f}s)",
                now,
                [],
            )

    def check_invariants(self, now: Optional[float] = None) -> None:
        """Check the no-underrun invariant on every live chain (tests
        and end-of-run sweeps call this liberally)."""
        at = self.engine.now if now is None else now
        for chain in list(self._chains.values()):
            if not chain.finished and chain.severed_at is None:
                self._check_chain(chain, at)

    def stats(self) -> Dict[str, Any]:
        """Flat cache/chaining stats for the ops plane and ``repro top``."""
        m = self.metrics
        return {
            "strategy": self.policy.strategy,
            "batching": self.policy.batching,
            "capacity_mb": round(self.policy.capacity_mb, 6),
            "bytes_held_mb": round(self.cache.bytes_held, 6),
            "entries": len(self.cache.entries),
            "pending_warm": len(self._warm_queue) + (1 if self._warming else 0),
            "hits": m.cache_hits,
            "misses": m.cache_misses,
            "hit_rate": round(m.cache_hit_rate, 6),
            "chained": m.chained,
            "patched": m.patched,
            "chained_active": self.chained_active,
            "cache_mb_served": round(m.cache_megabits, 6),
            "underruns": self.chain_underruns,
            "severed": self.feeds_severed,
        }
