"""Prefix-cache & stream-sharing tier (proxy between admission and
data servers).

The tier holds the first ``prefix_seconds`` of selected videos
(:mod:`repro.prefix.cache`, strategies in :data:`PREFIX_STRATEGIES`)
and chains closely-spaced requests for the same video onto one server
stream (:mod:`repro.prefix.chaining`, policies in :data:`BATCHING`),
so a burst of viewers costs one stream plus — at most — short
catch-up patches.  :class:`PrefixPolicy` is the config block;
:class:`PrefixTier` the runtime wired in by the ``prefix`` build stage
of :class:`repro.simulation.Simulation`.

Design, merge math and the add-a-strategy recipe: ``docs/CACHING.md``.
"""

from repro.prefix.cache import PREFIX_STRATEGIES, PrefixCache
from repro.prefix.chaining import BATCHING, ChainedSession, ChainPlan
from repro.prefix.tier import PrefixPolicy, PrefixTier

__all__ = [
    "BATCHING",
    "ChainPlan",
    "ChainedSession",
    "PREFIX_STRATEGIES",
    "PrefixCache",
    "PrefixPolicy",
    "PrefixTier",
]
