"""Prefix replication: which video prefixes the proxy tier holds.

The prefix-cache tier keeps the first ``prefix_seconds`` of selected
videos on the proxy so a chained viewer can start playback instantly
from the cache while its shared feed catches up (see
:mod:`repro.prefix.chaining` for the merge math).  *Which* prefixes to
hold is a policy decision, expressed as a **plan**: an insertion-ordered
``{video_id: prefix_mb}`` dict whose total fits the configured capacity.

Strategies live in the :data:`PREFIX_STRATEGIES` registry so experiments
can swap them by name:

* ``popularity`` — rank videos hottest-first (through the placement
  policy's ``warm_targets`` seam, so placement-aware rankings apply
  automatically) and greedily pack whole prefixes until capacity runs
  out.  Under Zipf demand this concentrates cache bytes where the
  request mass is.
* ``uniform`` — split capacity evenly across the catalog, ignoring
  demand skew.  The classic strawman: most of the budget sits on
  videos nobody asks for.
* ``none`` — hold nothing; the tier still observes traffic (useful as
  the no-cache baseline in the with/without-tier capacity figure).

A strategy is a callable ``(tier) -> Dict[int, float]`` reading
``tier.catalog`` / ``tier.popularity`` / ``tier.policy`` — register new
ones with ``@PREFIX_STRATEGIES.register(name, help=...)``; see
``docs/CACHING.md`` for the recipe.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.cluster.request import EPS_MB
from repro.cluster.server import DataServer
from repro.registry import Registry
from repro.workload.zipf import popularity_ranks

#: Pluggable prefix-replication strategies ``(tier) -> {video_id: Mb}``.
PREFIX_STRATEGIES: Registry = Registry("prefix strategy")


def hottest_first(tier) -> List[int]:
    """Video ids in demand order, hottest first.

    Routed through the placement policy's ``warm_targets`` seam (with an
    unconstrained proxy server, so nothing is skipped for space) when a
    placement policy is wired; falls back to a direct argsort of the
    Zipf demand vector otherwise.  Both paths are deterministic.
    """
    catalog = tier.catalog
    if tier.placement_policy is not None:
        proxy = DataServer(-1, 1.0, catalog.total_size() + 1.0)
        return list(
            tier.placement_policy.warm_targets(
                catalog, tier.popularity, tier.placement, proxy, len(catalog)
            )
        )
    probs = popularity_ranks(len(catalog), tier.popularity.theta)
    return [int(v) for v in np.argsort(-probs, kind="stable")]


@PREFIX_STRATEGIES.register(
    "popularity",
    help="pack whole prefixes hottest-first until capacity runs out",
)
def plan_popularity(tier) -> Dict[int, float]:
    prefixes = tier.catalog.prefix_sizes(tier.policy.prefix_seconds)
    plan: Dict[int, float] = {}
    used = 0.0
    capacity = tier.policy.capacity_mb
    for video_id in hottest_first(tier):
        mb = float(prefixes[video_id])
        if mb <= EPS_MB:
            continue
        if used + mb > capacity + EPS_MB:
            continue  # keep scanning: a shorter, colder video may fit
        plan[video_id] = mb
        used += mb
    return plan


@PREFIX_STRATEGIES.register(
    "uniform",
    help="split capacity evenly across the catalog, ignoring demand",
)
def plan_uniform(tier) -> Dict[int, float]:
    n = len(tier.catalog)
    if n == 0:
        return {}
    per_video = tier.policy.capacity_mb / n
    prefixes = tier.catalog.prefix_sizes(tier.policy.prefix_seconds)
    plan: Dict[int, float] = {}
    for video_id in range(n):
        mb = min(per_video, float(prefixes[video_id]))
        if mb > EPS_MB:
            plan[video_id] = mb
    return plan


@PREFIX_STRATEGIES.register(
    "none",
    help="hold no prefixes (no-cache baseline for the capacity figure)",
)
def plan_none(tier) -> Dict[int, float]:
    return {}


class PrefixCache:
    """Bounded store of warmed video prefixes, sized in megabits.

    The cache distinguishes the *target* plan (what the active strategy
    wants resident) from the *warmed* entries (what has actually been
    pulled off disk).  :meth:`retarget` swaps the plan — evicting
    entries the new plan no longer wants (eviction is instant; warming
    is not) — and returns the entries still to warm, in plan order.
    The tier drives those through the engine at disk throughput and
    calls :meth:`commit` as each completes; commits that a later
    retarget has obsoleted are ignored.

    Args:
        capacity_mb: total budget for warmed prefixes (>= 0).
    """

    def __init__(self, capacity_mb: float) -> None:
        if capacity_mb < 0:
            raise ValueError(f"capacity_mb must be >= 0, got {capacity_mb}")
        self.capacity_mb = float(capacity_mb)
        #: Warmed prefixes: ``{video_id: Mb}``.
        self.entries: Dict[int, float] = {}
        self._target: Dict[int, float] = {}

    @property
    def bytes_held(self) -> float:
        """Total warmed megabits currently resident."""
        return sum(self.entries.values())

    def warmed_mb(self, video_id: int) -> float:
        """Warmed prefix size for *video_id* (0.0 when absent)."""
        return self.entries.get(video_id, 0.0)

    def retarget(self, plan: Dict[int, float]) -> List[Tuple[int, float]]:
        """Adopt a new target *plan*; returns ``(video_id, mb)`` pairs
        still to warm, in plan order.

        Raises:
            ValueError: if the plan oversubscribes the capacity.
        """
        total = sum(plan.values())
        if total > self.capacity_mb + EPS_MB:
            raise ValueError(
                f"prefix plan wants {total:.1f} Mb but capacity is "
                f"{self.capacity_mb:.1f} Mb"
            )
        for video_id in [v for v in self.entries if v not in plan]:
            del self.entries[video_id]
        for video_id, mb in plan.items():
            held = self.entries.get(video_id)
            if held is not None and abs(held - mb) > EPS_MB:
                del self.entries[video_id]  # size changed: re-warm
        self._target = dict(plan)
        return [
            (video_id, mb)
            for video_id, mb in plan.items()
            if video_id not in self.entries
        ]

    def commit(self, video_id: int, mb: float) -> bool:
        """Record a completed warm; ignored (returns False) when a later
        retarget no longer wants this entry at this size."""
        want = self._target.get(video_id)
        if want is None or abs(want - mb) > EPS_MB:
            return False
        self.entries[video_id] = float(mb)
        return True
