"""Video catalog: titles, lengths, sizes, view bandwidth.

The paper (Figure 3 / Section 4.1) draws each video's length uniformly
at random from a range (10–30 min small system, 1–2 h large system); all
videos play at the same 3 Mb/s view bandwidth, so a video's size in
megabits is ``length_seconds * view_bandwidth``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple  # noqa: F401 - Tuple used in hints

import numpy as np

from repro.units import DEFAULT_VIEW_BANDWIDTH


@dataclass(frozen=True)
class Video:
    """An immutable catalog entry.

    Attributes:
        video_id: 0-based index; by convention, also the popularity rank
            (0 = most popular) so placement code can use ids directly.
        length: playback duration in seconds.
        view_bandwidth: playback rate in Mb/s.
    """

    video_id: int
    length: float
    view_bandwidth: float = DEFAULT_VIEW_BANDWIDTH
    #: Total data volume in megabits (= length × view_bandwidth).
    #: Materialised at construction — it is read millions of times in
    #: the scheduler's inner loop.
    size: float = field(init=False, compare=False)

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"video length must be positive, got {self.length}")
        if self.view_bandwidth <= 0:
            raise ValueError(
                f"view bandwidth must be positive, got {self.view_bandwidth}"
            )
        object.__setattr__(self, "size", self.length * self.view_bandwidth)


@dataclass(frozen=True)
class VideoCatalog:
    """An ordered collection of :class:`Video` objects.

    Index ``i`` is popularity rank ``i + 1``; demand distributions from
    :mod:`repro.workload.zipf` index into the catalog directly.
    """

    videos: Tuple[Video, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.videos)

    def __iter__(self) -> Iterator[Video]:
        return iter(self.videos)

    def __getitem__(self, video_id: int) -> Video:
        return self.videos[video_id]

    @property
    def sizes(self) -> np.ndarray:
        """Vector of video sizes (Mb), catalog order."""
        return np.array([v.size for v in self.videos], dtype=np.float64)

    @property
    def lengths(self) -> np.ndarray:
        """Vector of video lengths (s), catalog order."""
        return np.array([v.length for v in self.videos], dtype=np.float64)

    @property
    def mean_size(self) -> float:
        """Unweighted mean video size (Mb) — the basis for staging-buffer
        percentages ("20 % of the average sized video")."""
        return float(self.sizes.mean())

    @property
    def mean_length(self) -> float:
        """Unweighted mean video length (s)."""
        return float(self.lengths.mean())

    def total_size(self) -> float:
        """Sum of all single-copy sizes (Mb)."""
        return float(self.sizes.sum())

    def prefix_sizes(self, prefix_seconds: float) -> np.ndarray:
        """Per-video size (Mb) of the first *prefix_seconds*, catalog order.

        A short video contributes its whole size — a prefix is never
        larger than the title it fronts.  Used by the prefix-cache tier
        (:mod:`repro.prefix`) to budget its bounded capacity.
        """
        if prefix_seconds <= 0:
            raise ValueError(
                f"prefix_seconds must be positive, got {prefix_seconds}"
            )
        clipped = np.minimum(self.lengths, float(prefix_seconds))
        bandwidths = np.array(
            [v.view_bandwidth for v in self.videos], dtype=np.float64
        )
        return clipped * bandwidths


def make_catalog(
    n_videos: int,
    length_range: Sequence[float],
    rng: np.random.Generator,
    view_bandwidth: float = DEFAULT_VIEW_BANDWIDTH,
) -> VideoCatalog:
    """Build a catalog with lengths ~ Uniform(length_range).

    Args:
        n_videos: number of titles.
        length_range: (low, high) in seconds, inclusive-exclusive.
        rng: random stream (use ``RandomStreams.get("catalog")``).
        view_bandwidth: playback rate, Mb/s.

    Returns:
        A :class:`VideoCatalog` whose index order is the popularity rank
        order used by the demand distribution.
    """
    low, high = float(length_range[0]), float(length_range[1])
    if n_videos < 1:
        raise ValueError(f"n_videos must be >= 1, got {n_videos}")
    if not 0 < low <= high:
        raise ValueError(f"invalid length range ({low}, {high})")
    lengths = rng.uniform(low, high, size=n_videos)
    videos: List[Video] = [
        Video(video_id=i, length=float(lengths[i]), view_bandwidth=view_bandwidth)
        for i in range(n_videos)
    ]
    return VideoCatalog(videos=tuple(videos))
