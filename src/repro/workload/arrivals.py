"""Poisson request arrivals calibrated to a target offered load.

Section 4.1: "The arrival rate is chosen so that if all the requests are
accepted, the utilization will be 100 %.  That is, the expected sum of
the sizes of all requested videos is equal to the number of servers
times the server bandwidth times the length of the simulation."

With request rate λ (req/s) and expected requested-video size
``E_p[size]`` (Mb, expectation under the demand distribution), offered
load equals cluster egress capacity when::

    λ * E_p[size] = total_cluster_bandwidth      (Mb/s)

:func:`calibrated_arrival_rate` solves for λ;
:class:`PoissonArrivalProcess` is an engine process that draws
exponential inter-arrival times and a Zipf video choice per request.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

import numpy as np

from repro.sim.engine import Engine
from repro.sim.process import Process
from repro.workload.catalog import VideoCatalog
from repro.workload.zipf import ZipfPopularity


def offered_load(
    arrival_rate: float,
    popularity: ZipfPopularity,
    catalog: VideoCatalog,
    total_bandwidth: float,
) -> float:
    """Offered load as a fraction of cluster capacity (1.0 = saturating)."""
    expected_size = popularity.expected_value(catalog.sizes)
    return arrival_rate * expected_size / total_bandwidth


def calibrated_arrival_rate(
    popularity: ZipfPopularity,
    catalog: VideoCatalog,
    total_bandwidth: float,
    load: float = 1.0,
) -> float:
    """Arrival rate (req/s) that offers ``load`` × cluster capacity.

    Args:
        popularity: demand distribution over the catalog.
        catalog: the video catalog (for sizes).
        total_bandwidth: sum of server bandwidths, Mb/s.
        load: target offered load; the paper uses 1.0 throughout to
            "place as much stress as possible on the system".
    """
    if load <= 0:
        raise ValueError(f"load must be positive, got {load}")
    if total_bandwidth <= 0:
        raise ValueError(f"total bandwidth must be positive, got {total_bandwidth}")
    expected_size = popularity.expected_value(catalog.sizes)
    return load * total_bandwidth / expected_size


class PoissonArrivalProcess:
    """Generate requests with exponential inter-arrival times.

    Each arrival draws a video id from *popularity* and invokes
    ``on_arrival(video_id)``.  The process runs until stopped or until
    the engine's run window ends.

    Args:
        engine: the simulation engine.
        rate: arrival rate λ in requests/second.
        popularity: demand distribution (video chooser).
        rng: random stream dedicated to arrivals.
        on_arrival: callback receiving the 0-based video id.
        max_requests: optional hard cap on generated requests.
    """

    def __init__(
        self,
        engine: Engine,
        rate: float,
        popularity: ZipfPopularity,
        rng: np.random.Generator,
        on_arrival: Callable[[int], None],
        max_requests: Optional[int] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate}")
        self.engine = engine
        self.rate = float(rate)
        self.popularity = popularity
        self.rng = rng
        self.on_arrival = on_arrival
        self.max_requests = max_requests
        self.generated = 0
        self._process = Process(engine, self._run(), name="poisson-arrivals")

    def _run(self) -> Generator[float, None, None]:
        while self.max_requests is None or self.generated < self.max_requests:
            yield float(self.rng.exponential(1.0 / self.rate))
            video_id = self.popularity.sample(self.rng)
            self.generated += 1
            self.on_arrival(video_id)

    @property
    def done(self) -> bool:
        return self._process.done

    def stop(self) -> None:
        """Stop generating further arrivals."""
        self._process.stop()
