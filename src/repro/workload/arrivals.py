"""Poisson request arrivals calibrated to a target offered load.

Section 4.1: "The arrival rate is chosen so that if all the requests are
accepted, the utilization will be 100 %.  That is, the expected sum of
the sizes of all requested videos is equal to the number of servers
times the server bandwidth times the length of the simulation."

With request rate λ (req/s) and expected requested-video size
``E_p[size]`` (Mb, expectation under the demand distribution), offered
load equals cluster egress capacity when::

    λ * E_p[size] = total_cluster_bandwidth      (Mb/s)

:func:`calibrated_arrival_rate` solves for λ;
:class:`PoissonArrivalProcess` is an engine process that draws
exponential inter-arrival times and a Zipf video choice per request.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

import numpy as np

from repro.registry import Registry
from repro.sim.engine import Engine
from repro.sim.process import Process
from repro.workload.catalog import VideoCatalog
from repro.workload.zipf import ZipfPopularity


def offered_load(
    arrival_rate: float,
    popularity: ZipfPopularity,
    catalog: VideoCatalog,
    total_bandwidth: float,
) -> float:
    """Offered load as a fraction of cluster capacity (1.0 = saturating)."""
    expected_size = popularity.expected_value(catalog.sizes)
    return arrival_rate * expected_size / total_bandwidth


def calibrated_arrival_rate(
    popularity: ZipfPopularity,
    catalog: VideoCatalog,
    total_bandwidth: float,
    load: float = 1.0,
) -> float:
    """Arrival rate (req/s) that offers ``load`` × cluster capacity.

    Args:
        popularity: demand distribution over the catalog.
        catalog: the video catalog (for sizes).
        total_bandwidth: sum of server bandwidths, Mb/s.
        load: target offered load; the paper uses 1.0 throughout to
            "place as much stress as possible on the system".
    """
    if load <= 0:
        raise ValueError(f"load must be positive, got {load}")
    if total_bandwidth <= 0:
        raise ValueError(f"total bandwidth must be positive, got {total_bandwidth}")
    expected_size = popularity.expected_value(catalog.sizes)
    return load * total_bandwidth / expected_size


class PoissonArrivalProcess:
    """Generate requests with exponential inter-arrival times.

    Each arrival draws a video id from *popularity* and invokes
    ``on_arrival(video_id)``.  The process runs until stopped or until
    the engine's run window ends.

    Args:
        engine: the simulation engine.
        rate: arrival rate λ in requests/second.
        popularity: demand distribution (video chooser).
        rng: random stream dedicated to arrivals.
        on_arrival: callback receiving the 0-based video id.
        max_requests: optional hard cap on generated requests.
    """

    def __init__(
        self,
        engine: Engine,
        rate: float,
        popularity: ZipfPopularity,
        rng: np.random.Generator,
        on_arrival: Callable[[int], None],
        max_requests: Optional[int] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate}")
        self.engine = engine
        self.rate = float(rate)
        self.popularity = popularity
        self.rng = rng
        self.on_arrival = on_arrival
        self.max_requests = max_requests
        self.generated = 0
        self._process = Process(engine, self._run(), name="poisson-arrivals")

    def _run(self) -> Generator[float, None, None]:
        while self.max_requests is None or self.generated < self.max_requests:
            yield float(self.rng.exponential(1.0 / self.rate))
            video_id = self.popularity.sample(self.rng)
            self.generated += 1
            self.on_arrival(video_id)

    @property
    def done(self) -> bool:
        return self._process.done

    def stop(self) -> None:
        """Stop generating further arrivals."""
        self._process.stop()


class ModulatedArrivalProcess:
    """Poisson arrivals with periodic rate bursts (prime-time surges).

    The instantaneous rate is piecewise constant: within each
    ``burst_interval`` window the first ``burst_length`` seconds run at
    ``rate * burst_multiplier`` and the remainder at the base *rate*.
    Sampling uses **thinning** (Lewis & Shedler): candidates are drawn
    at the peak rate and accepted with probability ``rate(t) / peak``,
    which keeps the process exact and — because every candidate draws
    the same two variates — bit-reproducible from the RNG stream
    regardless of which candidates are accepted.

    The *mean* rate exceeds the base rate, so a load-calibrated config
    offers more than its nominal load during bursts — the point of the
    bursty workload.

    Args:
        engine: the simulation engine.
        rate: base arrival rate λ in requests/second.
        popularity: demand distribution (video chooser).
        rng: random stream dedicated to arrivals.
        on_arrival: callback receiving the 0-based video id.
        burst_interval: seconds between burst starts.
        burst_length: burst duration per interval (< interval).
        burst_multiplier: rate factor inside a burst (> 0; values < 1
            model off-peak lulls instead).
        max_requests: optional hard cap on generated requests.
    """

    def __init__(
        self,
        engine: Engine,
        rate: float,
        popularity: ZipfPopularity,
        rng: np.random.Generator,
        on_arrival: Callable[[int], None],
        burst_interval: float = 3600.0,
        burst_length: float = 600.0,
        burst_multiplier: float = 3.0,
        max_requests: Optional[int] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate}")
        if burst_interval <= 0:
            raise ValueError(
                f"burst_interval must be positive, got {burst_interval}"
            )
        if not 0.0 < burst_length < burst_interval:
            raise ValueError(
                f"burst_length must be in (0, burst_interval), "
                f"got {burst_length} (interval {burst_interval})"
            )
        if burst_multiplier <= 0:
            raise ValueError(
                f"burst_multiplier must be positive, got {burst_multiplier}"
            )
        self.engine = engine
        self.rate = float(rate)
        self.popularity = popularity
        self.rng = rng
        self.on_arrival = on_arrival
        self.burst_interval = float(burst_interval)
        self.burst_length = float(burst_length)
        self.burst_multiplier = float(burst_multiplier)
        self.max_requests = max_requests
        self.generated = 0
        self._peak = self.rate * max(1.0, self.burst_multiplier)
        self._process = Process(engine, self._run(), name="modulated-arrivals")

    def _rate_at(self, t: float) -> float:
        phase = t % self.burst_interval
        if phase < self.burst_length:
            return self.rate * self.burst_multiplier
        return self.rate

    def _run(self) -> Generator[float, None, None]:
        while self.max_requests is None or self.generated < self.max_requests:
            yield float(self.rng.exponential(1.0 / self._peak))
            accept = float(self.rng.uniform())
            now = self.engine.now
            if accept * self._peak >= self._rate_at(now):
                continue  # thinned candidate (off-burst phase)
            video_id = self.popularity.sample(self.rng)
            self.generated += 1
            self.on_arrival(video_id)

    @property
    def done(self) -> bool:
        return self._process.done

    def stop(self) -> None:
        """Stop generating further arrivals."""
        self._process.stop()


#: Arrival-process registry used by the simulation builder's workload
#: stage; entries are factories with the :class:`PoissonArrivalProcess`
#: constructor signature plus per-process keyword parameters
#: (``SimulationConfig.arrival_params``).
ARRIVALS: Registry[type] = Registry("arrival process")
ARRIVALS.register(
    "poisson", PoissonArrivalProcess,
    help="homogeneous Poisson arrivals (the paper's Section 4.1 model)",
)
ARRIVALS.register(
    "bursty", ModulatedArrivalProcess,
    help="periodically modulated Poisson arrivals via thinning "
         "(prime-time bursts; params: burst_interval, burst_length, "
         "burst_multiplier)",
)
