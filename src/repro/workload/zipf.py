"""Zipf-like popularity distribution with the paper's θ parameterisation.

Section 4.1 of the paper defines the probability that a new request is
for video ``i`` (1-indexed rank) as::

    p_i = c / i**(1 - theta),      c = 1 / sum_i 1 / i**(1 - theta)

so the *exponent* is ``1 − θ``:

* ``θ = 1``  → exponent 0 → **uniform** demand;
* ``θ = 0``  → exponent 1 → classic Zipf (highly skewed);
* ``θ < 0``  → exponent > 1 → even more skewed — the paper sweeps down
  to ``θ = −1.5`` to find where simple placement breaks.

Larger catalogs are *more* skewed at a fixed θ (the tail gets longer and
thinner), which the paper also notes.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


def popularity_ranks(n: int, theta: float) -> np.ndarray:
    """Normalised demand probabilities for ranks 1…n, in rank order.

    The single source of popularity truth: the catalog convention
    (video id = rank), the arrival process (:class:`ZipfPopularity`)
    and the prefix-cache strategies (:mod:`repro.prefix`) all derive
    their weights from this one function instead of recomputing
    ``c / i**(1 - theta)`` independently.

    Args:
        n: catalog size (>= 1).
        theta: the paper's skew parameter; exponent is ``1 - theta``.

    Returns:
        Length-``n`` float64 vector summing to 1; index 0 is rank 1
        (the most popular title).
    """
    if n < 1:
        raise ValueError(f"catalog size must be >= 1, got {n}")
    ranks = np.arange(1, int(n) + 1, dtype=np.float64)
    weights = ranks ** -(1.0 - float(theta))
    return weights / weights.sum()


class ZipfPopularity:
    """Zipf-like demand over ``n`` items, ranks 1 (hottest) … n (coldest).

    Args:
        n: catalog size (>= 1).
        theta: the paper's skew parameter; exponent is ``1 - theta``.

    Attributes:
        probabilities: length-``n`` numpy vector summing to 1, in rank
            order (index 0 = rank 1 = most popular).
    """

    def __init__(self, n: int, theta: float) -> None:
        if n < 1:
            raise ValueError(f"catalog size must be >= 1, got {n}")
        self.n = int(n)
        self.theta = float(theta)
        self.probabilities = popularity_ranks(self.n, self.theta)
        # Cumulative distribution for O(log n) inverse-CDF sampling.
        self._cdf = np.cumsum(self.probabilities)
        self._cdf[-1] = 1.0  # guard against rounding

    @property
    def exponent(self) -> float:
        """The Zipf exponent ``1 - theta``."""
        return 1.0 - self.theta

    def probability(self, rank: int) -> float:
        """Demand probability of the video at *rank* (1-indexed)."""
        if not 1 <= rank <= self.n:
            raise ValueError(f"rank must be in [1, {self.n}], got {rank}")
        return float(self.probabilities[rank - 1])

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        """Draw video indices (0-based, 0 = most popular).

        Args:
            rng: numpy generator.
            size: None for a scalar int, otherwise an ndarray of ints.
        """
        u = rng.random(size)
        idx = np.searchsorted(self._cdf, u, side="right")
        if size is None:
            return int(idx)
        return idx.astype(np.int64)

    def expected_value(self, values: Sequence[float]) -> float:
        """Popularity-weighted mean of per-video *values* (rank order).

        Used to calibrate the arrival rate: the expected size of a
        requested video is ``E_p[size_i]``.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.n,):
            raise ValueError(
                f"expected {self.n} values, got shape {values.shape}"
            )
        return float(np.dot(self.probabilities, values))

    def skew_ratio(self) -> float:
        """p_max / p_min — a simple scalar summary of the skew."""
        return float(self.probabilities[0] / self.probabilities[-1])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ZipfPopularity(n={self.n}, theta={self.theta})"
