"""VCR interactivity: viewer pause/resume behaviour.

The paper lists "interactivity in semi-continuous transmission" as
future work, and Theorem 1 explicitly assumes "the videos are not
paused".  This driver attaches a stochastic pause/resume process to
every admitted stream so that assumption can be relaxed empirically
(EXT-VCR):

* after an exponential delay (mean ``1/pause_hazard``), an active
  viewer hits pause;
* the pause lasts an exponential ``mean_pause_duration``;
* up to ``max_pauses_per_stream`` pause episodes per stream.

While paused, consumption freezes and the minimum-flow floor is
exempted once the staging buffer fills (see
:meth:`repro.cluster.request.Request.pause_playback` and the allocator
base pass) — transmission workahead may continue until then, which is
exactly the paper's "delay switching till resources … become available"
adaptation observation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cluster.controller import DistributionController
from repro.cluster.request import Request, RequestState
from repro.core.admission import AdmissionOutcome
from repro.sim.engine import Engine


class InteractivityModel:
    """Attach stochastic pause/resume behaviour to admitted streams.

    Args:
        engine: the simulation engine.
        controller: the distribution controller (hooked via
            ``decision_hooks``).
        rng: dedicated random stream.
        pause_hazard: per-second probability rate of a playing viewer
            pausing (e.g. ``1/1800`` = one pause per half hour watched).
        mean_pause_duration: seconds, exponential.
        max_pauses_per_stream: bound on episodes per stream (None =
            unbounded).
    """

    def __init__(
        self,
        engine: Engine,
        controller: DistributionController,
        rng: np.random.Generator,
        pause_hazard: float,
        mean_pause_duration: float,
        max_pauses_per_stream: Optional[int] = None,
    ) -> None:
        if pause_hazard <= 0:
            raise ValueError(f"pause_hazard must be positive, got {pause_hazard}")
        if mean_pause_duration <= 0:
            raise ValueError(
                f"mean_pause_duration must be positive, got {mean_pause_duration}"
            )
        self.engine = engine
        self.controller = controller
        self.rng = rng
        self.pause_hazard = float(pause_hazard)
        self.mean_pause_duration = float(mean_pause_duration)
        self.max_pauses_per_stream = max_pauses_per_stream
        self.pauses_executed = 0
        self.resumes_executed = 0
        controller.decision_hooks.append(self._on_decision)

    # ------------------------------------------------------------------
    def _on_decision(self, outcome: AdmissionOutcome, request: Request) -> None:
        if outcome.accepted:
            self._schedule_pause(request)

    def _schedule_pause(self, request: Request) -> None:
        if (
            self.max_pauses_per_stream is not None
            and request.pauses >= self.max_pauses_per_stream
        ):
            return
        delay = float(self.rng.exponential(1.0 / self.pause_hazard))
        self.engine.schedule(
            delay,
            lambda: self._pause(request),
            kind=f"vcr-pause:req{request.request_id}",
        )

    def _pause(self, request: Request) -> None:
        now = self.engine.now
        # Only streams still server-attached matter to the cluster; a
        # finished stream's pause is purely client-side.
        if request.state is not RequestState.ACTIVE:
            return
        if request.playback_paused:
            return
        if request.bytes_viewed(now) >= request.size:
            return  # playback already over
        request.pause_playback(now)
        self.pauses_executed += 1
        if request.server_id is not None:
            self.controller.managers[request.server_id].reallocate(now)
        gap = float(self.rng.exponential(self.mean_pause_duration))
        self.engine.schedule(
            gap,
            lambda: self._resume(request),
            kind=f"vcr-resume:req{request.request_id}",
        )

    def _resume(self, request: Request) -> None:
        now = self.engine.now
        if not request.playback_paused:
            return
        request.resume_playback(now)
        self.resumes_executed += 1
        if (
            request.state is RequestState.ACTIVE
            and request.server_id is not None
        ):
            self.controller.managers[request.server_id].reallocate(now)
        self._schedule_pause(request)
