"""Workload generation: demand skew, video catalogs, arrival processes.

The paper's evaluation (Section 4.1) drives the cluster with:

* a **Zipf-like popularity** over videos with skew parameter θ varied
  from −1.5 (pathologically skewed) to 1 (uniform) —
  :mod:`repro.workload.zipf`;
* a **video catalog** whose lengths are uniform over a range (10–30 min
  for the small system, 1–2 h for the large one) at a 3 Mb/s view rate —
  :mod:`repro.workload.catalog`;
* a **Poisson arrival process** calibrated to 100 % offered load —
  :mod:`repro.workload.arrivals`;
* optional pre-generated **request traces** for replayable and mutated
  workloads (flash crowds, popularity drift) —
  :mod:`repro.workload.trace`.
"""

from repro.workload.arrivals import (
    PoissonArrivalProcess,
    calibrated_arrival_rate,
    offered_load,
)
from repro.workload.catalog import Video, VideoCatalog, make_catalog
from repro.workload.trace import RequestSpec, Trace, generate_trace
from repro.workload.zipf import ZipfPopularity, popularity_ranks

__all__ = [
    "PoissonArrivalProcess",
    "RequestSpec",
    "Trace",
    "Video",
    "VideoCatalog",
    "ZipfPopularity",
    "calibrated_arrival_rate",
    "generate_trace",
    "make_catalog",
    "offered_load",
    "popularity_ranks",
]
