"""Pre-generated request traces: replayable and mutable workloads.

Live Poisson generation (``arrivals.py``) is what the paper simulates,
but a materialised trace is useful for:

* **replay** — running the *same* arrival sequence under different
  policies isolates policy effects from sampling noise (paired
  comparison, lower variance than independent trials);
* **mutation** — modelling non-stationary demand (flash crowds,
  popularity drift) by editing a base trace, which the paper lists as
  future work ("extreme variations in request patterns");
* **persistence** — saving/loading workloads as simple CSV for
  cross-tool comparisons.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, List, Sequence, Union

import numpy as np

from repro.sim.engine import Engine
from repro.workload.zipf import ZipfPopularity


@dataclass(frozen=True)
class RequestSpec:
    """One arrival in a trace: (time, video)."""

    time: float
    video_id: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"arrival time must be >= 0, got {self.time}")
        if self.video_id < 0:
            raise ValueError(f"video_id must be >= 0, got {self.video_id}")


class Trace:
    """An ordered sequence of :class:`RequestSpec`.

    Construction sorts by time (stable), so mutated traces stay valid.
    """

    def __init__(self, requests: Sequence[RequestSpec]) -> None:
        self.requests: List[RequestSpec] = sorted(requests, key=lambda r: r.time)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[RequestSpec]:
        return iter(self.requests)

    def __getitem__(self, i: int) -> RequestSpec:
        return self.requests[i]

    @property
    def duration(self) -> float:
        """Time of the last arrival (0 for an empty trace)."""
        return self.requests[-1].time if self.requests else 0.0

    def video_frequencies(self, n_videos: int) -> np.ndarray:
        """Histogram of requests per video id."""
        counts = np.zeros(n_videos, dtype=np.int64)
        for req in self.requests:
            counts[req.video_id] += 1
        return counts

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def window(self, start: float, end: float) -> "Trace":
        """Sub-trace with arrivals in [start, end), times re-based to 0."""
        return Trace(
            [
                RequestSpec(r.time - start, r.video_id)
                for r in self.requests
                if start <= r.time < end
            ]
        )

    def with_flash_crowd(
        self,
        video_id: int,
        start: float,
        duration: float,
        extra_rate: float,
        rng: np.random.Generator,
    ) -> "Trace":
        """Overlay a Poisson burst of requests for one video.

        Models a flash crowd: ``extra_rate`` req/s for *video_id* during
        [start, start+duration) on top of the base trace.
        """
        extra: List[RequestSpec] = []
        t = start + float(rng.exponential(1.0 / extra_rate))
        while t < start + duration:
            extra.append(RequestSpec(t, video_id))
            t += float(rng.exponential(1.0 / extra_rate))
        return Trace(self.requests + extra)

    def remapped(self, mapping: Callable[[int], int]) -> "Trace":
        """Apply a video-id permutation (models popularity drift)."""
        return Trace(
            [RequestSpec(r.time, mapping(r.video_id)) for r in self.requests]
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save_csv(self, path: Union[str, Path]) -> None:
        """Write the trace as ``time,video_id`` CSV with a header row."""
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["time", "video_id"])
            for req in self.requests:
                writer.writerow([f"{req.time:.6f}", req.video_id])

    @classmethod
    def load_csv(cls, path: Union[str, Path]) -> "Trace":
        """Read a trace written by :meth:`save_csv`.

        Raises:
            ValueError: naming the file and 1-based line number for a
                truncated or otherwise corrupt row (a partially written
                trace must not replay silently shortened).
        """
        requests: List[RequestSpec] = []
        with open(path, newline="") as fh:
            reader = csv.DictReader(fh)
            if reader.fieldnames != ["time", "video_id"]:
                raise ValueError(
                    f"{path}: expected header 'time,video_id', "
                    f"got {reader.fieldnames!r}"
                )
            # DictReader line numbers start after the header row.
            for row in reader:
                try:
                    time = float(row["time"])
                    video_id = int(row["video_id"])
                    requests.append(RequestSpec(time, video_id))
                except (KeyError, TypeError, ValueError) as exc:
                    raise ValueError(
                        f"{path}: line {reader.line_num}: corrupt or "
                        f"truncated trace row {row!r}: {exc}"
                    ) from None
        return cls(requests)

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def schedule_on(
        self, engine: Engine, on_arrival: Callable[[int], None]
    ) -> None:
        """Schedule every arrival on *engine* (times are absolute)."""
        for req in self.requests:
            engine.schedule_at(
                req.time,
                (lambda vid=req.video_id: on_arrival(vid)),
                kind="trace-arrival",
            )


def generate_bursty_trace(
    duration: float,
    base_rate: float,
    popularity: ZipfPopularity,
    rng: np.random.Generator,
    bursts: Sequence[tuple] = (),
) -> Trace:
    """Poisson trace with piecewise-constant rate bursts.

    Args:
        duration: total trace length, seconds.
        base_rate: arrival rate outside bursts, req/s.
        popularity: demand distribution.
        rng: random stream.
        bursts: iterable of ``(start, length, multiplier)`` windows; the
            arrival rate inside a window is ``base_rate * multiplier``.
            Windows may not overlap.

    Models transient demand peaks (prime-time surges) — the regime that
    separates overbooking-capable schedulers from minimum-flow ones.
    """
    windows = sorted((float(s), float(s) + float(l), float(m))
                     for s, l, m in bursts)
    for (s1, e1, _), (s2, _e2, _m) in zip(windows, windows[1:]):
        if s2 < e1:
            raise ValueError("burst windows may not overlap")
    requests: List[RequestSpec] = []
    edges = [0.0]
    rates = []
    cursor = 0.0
    for start, end, mult in windows:
        if not 0.0 <= start < end <= duration:
            raise ValueError(
                f"burst window ({start}, {end}) outside trace [0, {duration}]"
            )
        if start > cursor:
            rates.append(base_rate)
            edges.append(start)
        rates.append(base_rate * mult)
        edges.append(end)
        cursor = end
    if cursor < duration:
        rates.append(base_rate)
        edges.append(duration)
    for (seg_start, seg_end), rate in zip(zip(edges, edges[1:]), rates):
        seg_len = seg_end - seg_start
        count = int(rng.poisson(rate * seg_len))
        times = np.sort(rng.uniform(seg_start, seg_end, size=count))
        videos = popularity.sample(rng, size=count) if count else []
        requests.extend(
            RequestSpec(float(t), int(v)) for t, v in zip(times, videos)
        )
    return Trace(requests)


def generate_trace(
    duration: float,
    rate: float,
    popularity: ZipfPopularity,
    rng: np.random.Generator,
) -> Trace:
    """Materialise a Poisson/Zipf trace of the given duration.

    Statistically identical to :class:`PoissonArrivalProcess` output
    with the same rate and demand distribution.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    # Draw arrival count, then order statistics of uniforms: equivalent
    # to summing exponentials but one vectorised numpy call.
    count = int(rng.poisson(rate * duration))
    times = np.sort(rng.uniform(0.0, duration, size=count))
    videos = popularity.sample(rng, size=count) if count else np.array([], int)
    return Trace(
        [RequestSpec(float(t), int(v)) for t, v in zip(times, videos)]
    )
