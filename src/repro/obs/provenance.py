"""Run provenance: who produced this result, from what inputs.

Every export (JSONL traces, CSV sidecars, the ``all`` report header)
carries a provenance dict so a result file found on disk months later
can be traced back to the exact seed, scale, package version and
environment overrides that produced it.
"""

from __future__ import annotations

import hashlib
import os
import platform
from datetime import datetime, timezone
from typing import Any, Dict, Optional


def config_hash(config: Any) -> str:
    """Short stable digest of a config object.

    Uses ``repr`` — the config dataclasses have deterministic reprs
    covering every field (nested dataclasses included), so equal
    configs hash equal and any field change changes the hash.
    """
    return hashlib.sha256(repr(config).encode()).hexdigest()[:12]


def repro_env_overrides() -> Dict[str, str]:
    """The ``REPRO_*`` environment variables in effect (sorted)."""
    return {
        key: value
        for key, value in sorted(os.environ.items())
        if key.startswith("REPRO_")
    }


def run_provenance(
    seed: Optional[int] = None,
    scale: Optional[float] = None,
    config: Any = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the provenance dict stamped into every export.

    Args:
        seed: root random seed of the run/sweep.
        scale: fidelity factor (None when not applicable).
        config: hashed into ``config_hash`` when given; configs that
            serialize (``to_dict``) are additionally embedded verbatim
            under ``config`` so the sidecar alone can rebuild the exact
            run (``SimulationConfig.from_dict``).
        extra: caller-specific additions (merged last).
    """
    # Imported lazily: repro/__init__ imports modules that import this
    # one, so a top-level import would be circular.
    from repro import __version__

    prov: Dict[str, Any] = {
        "repro_version": __version__,
        "timestamp_utc": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "python": platform.python_version(),
        "seed": seed,
        "scale": scale,
        "env": repro_env_overrides(),
    }
    if config is not None:
        prov["config_hash"] = config_hash(config)
        to_dict = getattr(config, "to_dict", None)
        if callable(to_dict):
            prov["config"] = to_dict()
    if extra:
        prov.update(extra)
    return prov
