"""Wall-clock profiling of engine events, grouped by event kind.

The engine calls :meth:`EventProfiler.record` around each event's
callback *only when a profiler is attached* (one ``is None`` check per
event otherwise — measured < 1 % of the per-event cost).  Kinds are
grouped by their prefix up to the first ``:`` so the per-server tags
(``tx-boundary:srv7``) aggregate into one row.

A module-level aggregate lets multi-trial sweeps (forced to a single
worker while profiling — see ``repro.experiments.base``) accumulate one
report across runs; the CLI prints and clears it on exit::

    REPRO_PROFILE=1 repro-vod fig5 --system small --scale 0.002
    # ... per-kind wall-clock table on stderr after the sweep
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Tuple


class ProfileReport:
    """Immutable-ish summary of one or more profiled runs."""

    def __init__(
        self,
        by_kind: Dict[str, Tuple[int, float]],
        wall_seconds: float,
        events: int,
    ) -> None:
        #: kind-group -> (event count, wall-clock seconds in callbacks)
        self.by_kind = by_kind
        self.wall_seconds = wall_seconds
        self.events = events

    @property
    def events_per_second(self) -> float:
        return self.events / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def render(self) -> str:
        """ASCII table: per-kind wall clock, share, and throughput."""
        rows = sorted(
            self.by_kind.items(), key=lambda kv: kv[1][1], reverse=True
        )
        callback_total = sum(sec for _n, sec in self.by_kind.values()) or 1e-12
        width = max([len(k) for k, _ in rows] + [len("event kind")])
        lines = [
            f"{'event kind':<{width}}  {'events':>10}  {'seconds':>9}  "
            f"{'share':>6}  {'us/event':>9}",
            f"{'-' * width}  {'-' * 10}  {'-' * 9}  {'-' * 6}  {'-' * 9}",
        ]
        for kind, (count, seconds) in rows:
            per_event = seconds / count * 1e6 if count else 0.0
            lines.append(
                f"{kind:<{width}}  {count:>10}  {seconds:>9.3f}  "
                f"{seconds / callback_total:>6.1%}  {per_event:>9.2f}"
            )
        lines.append(
            f"total: {self.events} events in {self.wall_seconds:.3f}s wall "
            f"({self.events_per_second:,.0f} events/sec)"
        )
        return "\n".join(lines)


class EventProfiler:
    """Accumulates per-kind wall-clock spent in event callbacks.

    Attach/detach to an :class:`~repro.sim.engine.Engine`; the engine
    fast path stays a single attribute check when no profiler is set.
    """

    def __init__(self) -> None:
        self._by_kind: Dict[str, List[float]] = {}
        self._events = 0
        self._wall = 0.0
        self._started_at: Optional[float] = None
        self._engine = None

    # ------------------------------------------------------------------
    # Engine lifecycle
    # ------------------------------------------------------------------
    def attach(self, engine) -> None:
        """Install on *engine* and start the wall clock."""
        if engine.profiler is not None and engine.profiler is not self:
            raise RuntimeError("engine already has a profiler attached")
        engine.profiler = self
        self._engine = engine
        self._started_at = perf_counter()

    def detach(self) -> None:
        """Stop the wall clock and release the engine."""
        if self._started_at is not None:
            self._wall += perf_counter() - self._started_at
            self._started_at = None
        if self._engine is not None:
            if self._engine.profiler is self:
                self._engine.profiler = None
            self._engine = None

    # ------------------------------------------------------------------
    # Hot path (called by Engine.step)
    # ------------------------------------------------------------------
    def record(self, kind: str, seconds: float) -> None:
        """Account *seconds* of callback time to *kind*'s prefix group."""
        group = kind.partition(":")[0] or "<untagged>"
        cell = self._by_kind.get(group)
        if cell is None:
            cell = self._by_kind[group] = [0, 0.0]
        cell[0] += 1
        cell[1] += seconds
        self._events += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def events(self) -> int:
        return self._events

    def report(self) -> ProfileReport:
        wall = self._wall
        if self._started_at is not None:  # still attached: include so far
            wall += perf_counter() - self._started_at
        return ProfileReport(
            {k: (int(n), s) for k, (n, s) in self._by_kind.items()},
            wall_seconds=wall,
            events=self._events,
        )

    def merge_into(self, other: "EventProfiler") -> None:
        """Fold this profiler's accounting into *other* (aggregation)."""
        for kind, (n, sec) in self._by_kind.items():
            cell = other._by_kind.get(kind)
            if cell is None:
                cell = other._by_kind[kind] = [0, 0.0]
            cell[0] += n
            cell[1] += sec
        other._events += self._events
        report = self.report()
        other._wall += report.wall_seconds


# ----------------------------------------------------------------------
# Process-wide aggregate (used by the CLI's --profile flag)
# ----------------------------------------------------------------------
_AGGREGATE = EventProfiler()


def aggregate(profiler: EventProfiler) -> None:
    """Fold *profiler* into the process-wide aggregate."""
    profiler.merge_into(_AGGREGATE)


def aggregate_report() -> Optional[ProfileReport]:
    """The process-wide report, or None if nothing was profiled."""
    if _AGGREGATE.events == 0:
        return None
    return _AGGREGATE.report()


def reset_aggregate() -> None:
    global _AGGREGATE
    _AGGREGATE = EventProfiler()
