"""Typed trace records: the vocabulary of the structured trace.

Every record is a :class:`TraceRecord` — a simulation timestamp, a
:class:`TraceKind` tag and a flat field dict — so the whole trace
serialises to one JSON object per line.  The kinds mirror the three
subsystems the ISSUE of record calls out:

* request lifecycle: ``request.arrive`` → ``request.admit`` /
  ``request.reject`` (+ ``request.migrate`` hops) → ``request.finish``
  or ``request.drop``;
* server health: ``server.saturate`` / ``server.fail`` /
  ``server.recover``;
* scheduler activity: ``sched.realloc`` (one per EFTF reallocation),
  ``stream.buffer_full``, ``stream.underrun``, and the DRM search
  results ``drm.chain`` / ``drm.fail``.

The field schema per kind is documented in ``docs/OBSERVABILITY.md``;
:data:`KIND_FIELDS` is the machine-readable version used by tests.
"""

from __future__ import annotations

import enum
import json
from typing import Any, Dict, Mapping


class TraceKind(str, enum.Enum):
    """Tag of one trace record (string-valued, JSON-friendly)."""

    # -- run framing -------------------------------------------------
    RUN_META = "run.meta"

    # -- request lifecycle -------------------------------------------
    REQUEST_ARRIVE = "request.arrive"
    REQUEST_ADMIT = "request.admit"
    REQUEST_REJECT = "request.reject"
    REQUEST_MIGRATE = "request.migrate"
    REQUEST_FINISH = "request.finish"
    REQUEST_DROP = "request.drop"

    # -- graceful degradation (bounded retry queue) ------------------
    REQUEST_RETRY = "request.retry"
    REQUEST_RETRY_EXHAUST = "request.retry_exhaust"

    # -- server health -----------------------------------------------
    SERVER_SATURATE = "server.saturate"
    SERVER_FAIL = "server.fail"
    SERVER_RECOVER = "server.recover"
    SERVER_DEGRADE = "server.degrade"
    SERVER_LINK_RESTORE = "server.link_restore"
    SERVER_REPLICA_LOSS = "server.replica_loss"

    # -- elastic membership lifecycle (repro.core.elastic) -----------
    SERVER_JOIN = "server.join"
    SERVER_WARM = "server.warm"
    SERVER_ACTIVATE = "server.activate"
    SERVER_DRAIN = "server.drain"
    SERVER_DEPART = "server.depart"

    # -- online invariant checking -----------------------------------
    INVARIANT_VIOLATION = "invariant.violation"

    # -- live serving sessions (repro.serve) -------------------------
    SESSION_OPEN = "session.open"
    SESSION_CLOSE = "session.close"
    SESSION_SPAN = "session.span"

    # -- live telemetry plane (ops endpoint / flight recorder) -------
    SERVE_STATS = "serve.stats"
    POSTMORTEM_META = "postmortem.meta"

    # -- gateway task supervision (repro.serve.supervisor) -----------
    TASK_TRIP = "task.trip"
    TASK_RESTART = "task.restart"

    # -- prefix-cache / stream-sharing tier (repro.prefix) -----------
    CACHE_WARM = "cache.warm"
    CACHE_CHAIN = "cache.chain"
    CACHE_MERGE = "cache.merge"

    # -- scheduler / stream dynamics ---------------------------------
    SCHED_REALLOC = "sched.realloc"
    STREAM_BUFFER_FULL = "stream.buffer_full"
    STREAM_UNDERRUN = "stream.underrun"
    DRM_CHAIN = "drm.chain"
    DRM_FAIL = "drm.fail"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Documented fields per kind (superset allowed; used by schema tests).
KIND_FIELDS: Dict[TraceKind, tuple] = {
    TraceKind.RUN_META: ("provenance",),
    TraceKind.REQUEST_ARRIVE: ("request", "video"),
    TraceKind.REQUEST_ADMIT: ("request", "video", "server", "migrated"),
    TraceKind.REQUEST_REJECT: ("request", "video", "reason"),
    TraceKind.REQUEST_MIGRATE: ("request", "source", "target", "cause"),
    TraceKind.REQUEST_FINISH: ("request", "server"),
    TraceKind.REQUEST_DROP: ("request", "server"),
    TraceKind.REQUEST_RETRY: ("request", "video", "attempt", "delay"),
    TraceKind.REQUEST_RETRY_EXHAUST: ("request", "video", "attempts",
                                      "reason"),
    TraceKind.SERVER_SATURATE: ("servers", "video"),
    TraceKind.SERVER_FAIL: ("server", "orphans"),
    TraceKind.SERVER_RECOVER: ("server",),
    TraceKind.SERVER_DEGRADE: ("server", "factor", "shed"),
    TraceKind.SERVER_LINK_RESTORE: ("server",),
    TraceKind.SERVER_REPLICA_LOSS: ("server", "video", "orphans"),
    TraceKind.SERVER_JOIN: ("server", "bandwidth", "disk", "epoch"),
    TraceKind.SERVER_WARM: ("server", "video", "seconds"),
    TraceKind.SERVER_ACTIVATE: ("server", "replicas", "epoch"),
    TraceKind.SERVER_DRAIN: ("server", "active", "epoch"),
    TraceKind.SERVER_DEPART: ("server", "moved", "epoch"),
    TraceKind.INVARIANT_VIOLATION: ("invariant", "subject", "detail"),
    TraceKind.SESSION_OPEN: ("request", "video", "server", "peer"),
    TraceKind.SESSION_CLOSE: ("request", "reason", "delivered_mb",
                              "chunks"),
    TraceKind.SESSION_SPAN: ("session", "phase", "wall"),
    TraceKind.SERVE_STATS: ("wall", "admits", "rejects", "active",
                            "chunks"),
    TraceKind.POSTMORTEM_META: ("reason", "provenance", "pid",
                                "dump_seq"),
    TraceKind.TASK_TRIP: ("task", "error", "detail", "restarting"),
    TraceKind.TASK_RESTART: ("task", "restarts"),
    TraceKind.CACHE_WARM: ("video", "prefix_mb", "seconds"),
    TraceKind.CACHE_CHAIN: ("request", "parent", "video", "gap",
                            "prefix_mb", "patch_mb"),
    TraceKind.CACHE_MERGE: ("request", "parent", "video"),
    TraceKind.SCHED_REALLOC: ("server", "allocator", "streams", "boosted"),
    TraceKind.STREAM_BUFFER_FULL: ("request", "server"),
    TraceKind.STREAM_UNDERRUN: ("request", "server"),
    TraceKind.DRM_CHAIN: ("video", "length", "path"),
    TraceKind.DRM_FAIL: ("video",),
}


class TraceRecord:
    """One structured trace entry.

    Attributes:
        time: simulation clock at emission (seconds).
        kind: the :class:`TraceKind` tag.
        fields: flat, JSON-serialisable payload.
    """

    __slots__ = ("time", "kind", "fields")

    def __init__(
        self, time: float, kind: TraceKind, fields: Mapping[str, Any]
    ) -> None:
        self.time = time
        self.kind = kind
        self.fields = fields

    def to_dict(self) -> Dict[str, Any]:
        """Flatten to a single JSON-ready dict (``t`` and ``kind`` first)."""
        out: Dict[str, Any] = {"t": self.time, "kind": str(self.kind.value)}
        out.update(self.fields)
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), separators=(",", ":"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TraceRecord t={self.time:.6g} {self.kind.value} {self.fields}>"
