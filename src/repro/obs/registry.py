"""Named metrics: counters, gauges and histograms with one snapshot API.

:class:`repro.analysis.metrics.SimulationMetrics` *registers into* a
:class:`MetricsRegistry` (when given one) rather than being replaced by
it: the fixed dataclass counters stay the fast source of truth for the
paper's Section 4.1 measures, while the registry carries the open-ended
set — DRM chain-length distribution, per-server rejection counts,
buffer-occupancy-at-finish histogram, live-stream gauges — that
downstream tooling reads via :meth:`MetricsRegistry.snapshot`.

Instruments are get-or-create by name, so independent subsystems can
share one registry without coordination::

    reg = MetricsRegistry()
    reg.counter("requests.accepted").inc()
    reg.histogram("drm.chain_length").observe(2)
    reg.gauge("streams.active", supplier=lambda: controller.active_count)
    reg.snapshot()                    # -> plain nested dict, JSON-ready
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Callable, Dict, Optional, Sequence

#: Default histogram bucket upper bounds (generic log-ish spacing that
#: covers chain lengths, seconds-of-buffer and queue depths alike).
DEFAULT_BOUNDS: Sequence[float] = (
    0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1000.0, 2000.0, 5000.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative inc {amount}")
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """A point-in-time value: settable, or computed by a supplier."""

    __slots__ = ("name", "_value", "supplier")

    def __init__(
        self, name: str, supplier: Optional[Callable[[], float]] = None
    ) -> None:
        self.name = name
        self._value = 0.0
        self.supplier = supplier

    def set(self, value: float) -> None:
        self._value = float(value)

    def reset(self) -> None:
        self._value = 0.0

    def snapshot(self) -> float:
        if self.supplier is not None:
            return float(self.supplier())
        return self._value


class Histogram:
    """Fixed-bucket histogram with streaming summary statistics.

    Buckets are cumulative-style upper bounds (``value <= bound``); an
    implicit overflow bucket catches the rest.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total",
                 "min", "max")

    def __init__(
        self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS
    ) -> None:
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name}: bounds must be sorted")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def reset(self) -> None:
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentiles(
        self, qs: Sequence[float] = (50.0, 95.0, 99.0)
    ) -> Dict[float, Optional[float]]:
        """Estimate the *qs*-th percentiles from the bucket counts.

        Uses linear interpolation inside the containing bucket, with the
        observed ``min``/``max`` standing in for the open outer edges —
        so the estimate is exact at q=0/q=100 and never leaves the
        observed range.  With no observations every value is ``None``.
        """
        out: Dict[float, Optional[float]] = {}
        for q in qs:
            if not 0.0 <= q <= 100.0:
                raise ValueError(
                    f"histogram {self.name}: percentile {q} not in [0, 100]"
                )
            out[q] = None
        if self.count == 0:
            return out
        for q in out:
            rank = q / 100.0 * self.count
            cumulative = 0
            for i, n in enumerate(self.bucket_counts):
                if n == 0:
                    continue
                if cumulative + n >= rank:
                    lo = self.bounds[i - 1] if i > 0 else self.min
                    hi = self.bounds[i] if i < len(self.bounds) else self.max
                    lo = max(lo, self.min)
                    hi = min(hi, self.max)
                    if hi < lo:
                        lo = hi
                    fraction = (rank - cumulative) / n
                    out[q] = lo + fraction * (hi - lo)
                    break
                cumulative += n
            else:  # pragma: no cover - rank <= count always lands
                out[q] = self.max
        return out

    def snapshot(self) -> Dict[str, Any]:
        buckets = {
            f"le_{bound:g}": n
            for bound, n in zip(self.bounds, self.bucket_counts)
        }
        buckets["inf"] = self.bucket_counts[-1]
        pct = self.percentiles((50.0, 95.0, 99.0))
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "p50": pct[50.0],
            "p95": pct[95.0],
            "p99": pct[99.0],
            "buckets": buckets,
        }


class MetricsRegistry:
    """Get-or-create home for named instruments."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            self._check_free(name)
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(
        self, name: str, supplier: Optional[Callable[[], float]] = None
    ) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            self._check_free(name)
            inst = self._gauges[name] = Gauge(name, supplier)
        elif supplier is not None:
            inst.supplier = supplier
        return inst

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS
    ) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            self._check_free(name)
            inst = self._histograms[name] = Histogram(name, bounds)
        return inst

    def _check_free(self, name: str) -> None:
        if (
            name in self._counters
            or name in self._gauges
            or name in self._histograms
        ):
            raise ValueError(
                f"metric name {name!r} already registered as another type"
            )

    # ------------------------------------------------------------------
    def names(self) -> list:
        return sorted(
            list(self._counters)
            + list(self._gauges)
            + list(self._histograms)
        )

    def counters(self) -> Dict[str, Counter]:
        """Registered counters by name (read-only view semantics)."""
        return dict(self._counters)

    def gauges(self) -> Dict[str, Gauge]:
        """Registered gauges by name."""
        return dict(self._gauges)

    def histograms(self) -> Dict[str, Histogram]:
        """Registered histograms by name."""
        return dict(self._histograms)

    def reset(self) -> None:
        """Zero every instrument (warmup-window reset)."""
        for group in (self._counters, self._gauges, self._histograms):
            for inst in group.values():
                inst.reset()

    def snapshot(self) -> Dict[str, Any]:
        """One JSON-ready dict of every instrument's current value."""
        return {
            "counters": {
                name: c.snapshot() for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.snapshot() for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.snapshot()
                for name, h in sorted(self._histograms.items())
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<MetricsRegistry counters={len(self._counters)} "
            f"gauges={len(self._gauges)} histograms={len(self._histograms)}>"
        )
