"""Environment-driven obs switches.

The CLI flags ``--trace-out`` / ``--profile`` set these variables
before dispatching, and :class:`repro.Simulation` reads them at build
time, so observability reaches *every* run a command performs — sweep
trials included — without threading options through each experiment
signature.  While either switch is active, :func:`obs_active` makes
the sweep executor in ``repro.experiments.base`` fall back from its
grid-level process pool to one in-process worker running tasks in
strict grid order, so traces append to one file and profiles fold into
one process-wide aggregate; sweep provenance records the effective
worker count either way (see docs/PERFORMANCE.md).

* ``REPRO_TRACE_OUT=<path>`` — each run appends its JSONL trace
  (prefixed with a ``run.meta`` provenance line) to *path*.
* ``REPRO_PROFILE=1`` — each run profiles its engine and folds the
  result into the process-wide aggregate
  (:func:`repro.obs.profiler.aggregate_report`).
"""

from __future__ import annotations

import os
from typing import Optional

TRACE_OUT_VAR = "REPRO_TRACE_OUT"
PROFILE_VAR = "REPRO_PROFILE"
INVARIANTS_VAR = "REPRO_INVARIANTS"

_FALSY = ("", "0", "false", "no", "off")


def env_trace_path() -> Optional[str]:
    """Path for JSONL trace appends, or None when tracing is off."""
    path = os.environ.get(TRACE_OUT_VAR)
    return path if path else None


def check_trace_path(path: str, flag: str = "--trace-out") -> str:
    """Fail fast — one actionable line — on an unusable trace path.

    Called before a run starts (CLI flag parsing, Simulation build) so
    a missing parent directory surfaces as ``SystemExit`` with a single
    sentence naming the path and the fix, not as a raw
    ``FileNotFoundError`` traceback after minutes of simulation.
    Returns *path* unchanged when it is writable.
    """
    parent = os.path.dirname(os.path.abspath(path))
    if not os.path.isdir(parent):
        raise SystemExit(
            f"{flag} {path!r}: parent directory {parent!r} does not exist "
            f"— create it first or point {flag} at an existing directory"
        )
    try:
        with open(path, "a"):
            pass
    except OSError as exc:
        raise SystemExit(f"{flag} {path!r}: not writable ({exc})")
    return path


def env_profile_enabled() -> bool:
    """Whether event profiling is requested via the environment."""
    return os.environ.get(PROFILE_VAR, "").strip().lower() not in _FALSY


def env_invariants_enabled() -> bool:
    """Whether online invariant checking is forced via the environment.

    ``REPRO_INVARIANTS=1`` attaches a
    :class:`repro.faults.invariants.InvariantChecker` to every
    :class:`repro.Simulation` run — the CI chaos-soak job and local
    debugging both use this to turn any experiment into a checked run
    without touching its config.
    """
    return os.environ.get(INVARIANTS_VAR, "").strip().lower() not in _FALSY


def obs_active() -> bool:
    """True when any env-driven instrument is on (forces one worker)."""
    return env_profile_enabled() or env_trace_path() is not None
