"""repro.obs — observability for the simulation stack.

Three independent instruments, designed to coexist on one engine:

* :mod:`repro.obs.tracer` — structured event tracing.  A
  :class:`~repro.obs.tracer.Tracer` collects typed
  :class:`~repro.obs.records.TraceRecord` objects (request lifecycle,
  server health, scheduler activity) into a bounded ring buffer and
  exports them as JSONL.  Instrumentation points live in
  ``cluster.controller``, ``core.admission``, ``core.migration``,
  ``core.failover``, ``core.schedulers`` and ``core.transmission`` and
  cost a single ``is None`` check when tracing is off.
* :mod:`repro.obs.registry` — a named-metrics registry (counters,
  gauges, histograms) that :class:`repro.analysis.metrics.SimulationMetrics`
  registers into, with a ``snapshot() -> dict`` API consumed by
  :mod:`repro.analysis.export`.
* :mod:`repro.obs.profiler` — wall-clock accounting per engine event
  kind plus an events/sec throughput figure, attached to
  :class:`repro.sim.engine.Engine` behind a flag (zero-cost when off).

Run provenance (seed, scale, package version, config hash, REPRO_*
environment overrides) is produced by :mod:`repro.obs.provenance` and
stamped into every export.

Environment switches (consumed by :class:`repro.Simulation` and the
CLI ``--trace-out`` / ``--profile`` flags):

* ``REPRO_TRACE_OUT=<path>`` — append a JSONL trace of every run.
* ``REPRO_PROFILE=1`` — profile events and aggregate a report.
* ``REPRO_INVARIANTS=1`` — attach the online invariant checker
  (:mod:`repro.faults.invariants`) to every run.

See ``docs/OBSERVABILITY.md`` for the record schema and metric names.
"""

from repro.obs.logging import get_logger, progress_printer
from repro.obs.profiler import EventProfiler, ProfileReport
from repro.obs.prometheus import parse_prometheus, render_prometheus
from repro.obs.provenance import config_hash, run_provenance
from repro.obs.recorder import FlightRecorder, read_postmortem
from repro.obs.records import TraceKind, TraceRecord
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.runtime import (
    check_trace_path,
    env_invariants_enabled,
    env_profile_enabled,
    env_trace_path,
    obs_active,
)
from repro.obs.spans import SessionSpan, SpanEvent, SpanLog, SpanPhase
from repro.obs.tracer import Tracer

__all__ = [
    "Counter",
    "EventProfiler",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProfileReport",
    "SessionSpan",
    "SpanEvent",
    "SpanLog",
    "SpanPhase",
    "TraceKind",
    "TraceRecord",
    "Tracer",
    "check_trace_path",
    "config_hash",
    "env_invariants_enabled",
    "env_profile_enabled",
    "env_trace_path",
    "get_logger",
    "obs_active",
    "parse_prometheus",
    "progress_printer",
    "read_postmortem",
    "render_prometheus",
    "run_provenance",
]
