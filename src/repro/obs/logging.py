"""The obs logging layer: human chatter to stderr, data to stdout.

Progress lines, profile reports and trace notices are *diagnostics*:
they go to **stderr** via the ``repro`` logger so that stdout stays a
clean, machine-readable channel (``repro-vod fig5 --quiet > out.txt``
composes with ``--trace-out`` and shell pipelines).

The handler resolves ``sys.stderr`` at emit time, so pytest's capture
machinery and late stream redirections both behave.
"""

from __future__ import annotations

import logging
import sys
from typing import Callable, Optional

_LOGGER_NAME = "repro"


class _DynamicStderrHandler(logging.Handler):
    """Writes to whatever ``sys.stderr`` is at emit time."""

    def emit(self, record: logging.LogRecord) -> None:
        try:
            print(self.format(record), file=sys.stderr)
        except Exception:  # pragma: no cover - logging must never raise
            self.handleError(record)


def get_logger() -> logging.Logger:
    """The shared ``repro`` logger (stderr, message-only format)."""
    logger = logging.getLogger(_LOGGER_NAME)
    if not logger.handlers:
        handler = _DynamicStderrHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        logger.propagate = False
    return logger


def progress_printer(quiet: bool = False) -> Optional[Callable[[str], None]]:
    """A per-line progress callback routed through the obs logger.

    Returns None when *quiet* — experiment runners treat a None
    progress callback as "don't report".
    """
    if quiet:
        return None
    logger = get_logger()
    return lambda message: logger.info(message)
