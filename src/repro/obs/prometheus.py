"""Prometheus text exposition for a :class:`MetricsRegistry`.

:func:`render_prometheus` turns one registry into the plain-text
`exposition format <https://prometheus.io/docs/instrumenting/exposition_formats/>`_
a Prometheus server scrapes: counters become ``*_total`` samples,
gauges plain samples, histograms the conventional cumulative
``*_bucket{le="..."}`` series plus ``*_sum`` / ``*_count``.  Metric
names are namespaced (default ``repro_``) and sanitised to the
``[a-zA-Z_:][a-zA-Z0-9_:]*`` charset, so dotted registry names like
``serve.chunk_latency_ms`` export as ``repro_serve_chunk_latency_ms``.

:func:`parse_prometheus` is the matching (deliberately small) reader:
it folds an exposition body back into ``{sample_name: value}`` with
the label set inlined into the key.  The CI serve-smoke job and the
test suite use it to assert a live gateway's export is well-formed —
it is not a general Prometheus client.
"""

from __future__ import annotations

import math
import re
from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.obs.registry import MetricsRegistry

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)


def sanitize_metric_name(name: str) -> str:
    """Map a dotted registry name onto the Prometheus charset."""
    clean = _NAME_OK.sub("_", name)
    if not clean or clean[0].isdigit():
        clean = "_" + clean
    return clean


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def render_prometheus(
    registry: "MetricsRegistry", namespace: str = "repro"
) -> str:
    """The registry's current state as one exposition-format document.

    Args:
        registry: the instruments to export (snapshotted atomically —
            the caller runs on the event loop, nothing mutates between
            two reads).
        namespace: prefix prepended to every metric name.
    """
    prefix = sanitize_metric_name(namespace) + "_" if namespace else ""
    lines: List[str] = []

    for name, counter in sorted(registry.counters().items()):
        metric = prefix + sanitize_metric_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(counter.snapshot())}")

    for name, gauge in sorted(registry.gauges().items()):
        metric = prefix + sanitize_metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(gauge.snapshot())}")

    for name, histogram in sorted(registry.histograms().items()):
        metric = prefix + sanitize_metric_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(histogram.bounds, histogram.bucket_counts):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{bound:g}"}} {cumulative}'
            )
        cumulative += histogram.bucket_counts[-1]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {_format_value(histogram.total)}")
        lines.append(f"{metric}_count {histogram.count}")

    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Dict[str, float]:
    """Fold an exposition document into ``{sample: value}``.

    The label set stays inlined in the key (``x_bucket{le="+Inf"}``).
    Comment and blank lines are skipped; any other unparseable line
    raises ``ValueError`` naming it — the point of this parser is to
    *fail* on a malformed export, not to tolerate one.
    """
    samples: Dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(
                f"unparseable exposition line {lineno}: {line!r}"
            )
        key = match.group("name") + (match.group("labels") or "")
        raw = match.group("value")
        try:
            value = float(raw)
        except ValueError:
            raise ValueError(
                f"bad sample value on line {lineno}: {raw!r}"
            ) from None
        samples[key] = value
    return samples
