"""Session spans: the typed lifecycle of one live stream, twice-clocked.

A live session crosses two clocks — the gateway's wall clock and the
policy core's virtual clock — and the interesting bugs live in the gap
between them.  A :class:`SessionSpan` therefore records every phase
transition with *both* timestamps:

    accept  ->  admit | reject  ->  pacing  ->  handoff*  ->  drain? -> close

``accept`` is the arrival frame hitting the gateway; ``admit`` /
``reject`` the policy decision; ``pacing`` the first paced chunk;
``handoff`` one DRM migration picked up by the new server's task (zero
or more per span); ``drain`` a force-close during gateway drain; and
``close`` the terminal transition carrying the end reason.

Spans live in a :class:`SpanLog` — active spans in a dict, completed
spans in a bounded ring — and every transition is *also* emitted
through the attached :class:`~repro.obs.tracer.Tracer` as a
``session.span`` record (virtual timestamp as the record time, wall
timestamp as a field), so a JSONL trace replays the full story and the
flight recorder's postmortem window contains the most recent
transitions.  The gateway's ops endpoint serves the live view
(:meth:`SpanLog.active` / :meth:`SpanLog.recent`).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.obs.records import TraceKind
from repro.obs.tracer import Tracer

#: Completed spans retained by default (the live-query window).
DEFAULT_SPAN_CAPACITY = 1_000


class SpanPhase(str, enum.Enum):
    """One lifecycle transition of a live session."""

    ACCEPT = "accept"     #: request frame parsed, arrival enqueued
    ADMIT = "admit"       #: policy said yes
    REJECT = "reject"     #: policy (or drain) said no — terminal
    PACING = "pacing"     #: first chunk left the gateway
    HANDOFF = "handoff"   #: DRM migration picked up by the new server
    DRAIN = "drain"       #: force-closed while the gateway drains
    CLOSE = "close"       #: session over — terminal

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Phases after which a span is complete.
TERMINAL_PHASES = frozenset((SpanPhase.REJECT, SpanPhase.CLOSE))


class SpanEvent:
    """One phase transition: wall + virtual timestamps and details."""

    __slots__ = ("phase", "wall", "virtual", "fields")

    def __init__(
        self,
        phase: SpanPhase,
        wall: float,
        virtual: float,
        fields: Dict[str, Any],
    ) -> None:
        self.phase = phase
        self.wall = wall
        self.virtual = virtual
        self.fields = fields

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "phase": self.phase.value,
            "wall": round(self.wall, 6),
            "vt": round(self.virtual, 9),
        }
        out.update(self.fields)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SpanEvent {self.phase.value} wall={self.wall:.3f} "
            f"vt={self.virtual:.6g}>"
        )


class SessionSpan:
    """The recorded lifecycle of one session, keyed by arrival seq."""

    __slots__ = ("key", "video", "request", "server", "retries", "events")

    def __init__(self, key: int, video: Optional[int] = None) -> None:
        self.key = key
        self.video = video
        self.request: Optional[int] = None
        self.server: Optional[int] = None
        #: Client-announced reconnect attempt (``retry`` field of the
        #: request frame): 0 for a first try, k for the k-th re-request
        #: after a disconnect or drop (docs/ROBUSTNESS.md, live chaos).
        self.retries: int = 0
        self.events: List[SpanEvent] = []

    @property
    def phase(self) -> Optional[SpanPhase]:
        """The most recent phase, or None before any transition."""
        return self.events[-1].phase if self.events else None

    @property
    def closed(self) -> bool:
        return self.phase in TERMINAL_PHASES

    @property
    def handoffs(self) -> int:
        return sum(
            1 for e in self.events if e.phase is SpanPhase.HANDOFF
        )

    def wall_of(self, phase: SpanPhase) -> Optional[float]:
        """Wall time of the first transition into *phase* (or None)."""
        for event in self.events:
            if event.phase is phase:
                return event.wall
        return None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready view (what ``ops sessions`` returns per span)."""
        return {
            "key": self.key,
            "video": self.video,
            "request": self.request,
            "server": self.server,
            "phase": self.phase.value if self.phase else None,
            "handoffs": self.handoffs,
            "retries": self.retries,
            "events": [e.to_dict() for e in self.events],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SessionSpan key={self.key} phase="
            f"{self.phase.value if self.phase else None} "
            f"events={len(self.events)}>"
        )


class SpanLog:
    """Bounded, queryable home of session spans.

    Args:
        tracer: optional tracer mirroring every transition as a
            ``session.span`` record (the replay/postmortem path).
        capacity: completed spans retained (oldest evicted first);
            active spans are never evicted — they are bounded by the
            gateway's live session count.
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        capacity: int = DEFAULT_SPAN_CAPACITY,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.tracer = tracer
        self.capacity = int(capacity)
        self._active: Dict[int, SessionSpan] = {}
        self._closed: Deque[SessionSpan] = deque(maxlen=self.capacity)
        self._recorded = 0

    def record(
        self,
        key: int,
        phase: SpanPhase,
        wall: float,
        virtual: float,
        **fields: Any,
    ) -> SessionSpan:
        """Append one transition to *key*'s span (created on first use).

        Well-known fields (``video``, ``request``, ``server``,
        ``retry``) are also promoted onto the span itself so the live
        view needs no event scan.  Returns the span.
        """
        span = self._active.get(key)
        if span is None:
            span = self._active[key] = SessionSpan(key)
        if "video" in fields:
            span.video = fields["video"]
        if "request" in fields:
            span.request = fields["request"]
        if "server" in fields and fields["server"] is not None:
            span.server = fields["server"]
        if "retry" in fields and fields["retry"]:
            span.retries = max(span.retries, int(fields["retry"]))
        span.events.append(SpanEvent(phase, wall, virtual, fields))
        self._recorded += 1
        if self.tracer is not None:
            self.tracer.emit(
                TraceKind.SESSION_SPAN,
                virtual,
                session=key,
                phase=phase.value,
                wall=round(wall, 6),
                **fields,
            )
        if phase in TERMINAL_PHASES:
            self._active.pop(key, None)
            self._closed.append(span)
        return span

    # ------------------------------------------------------------------
    # Queries (the ops endpoint's live view)
    # ------------------------------------------------------------------
    def get(self, key: int) -> Optional[SessionSpan]:
        """The span for *key*: active first, then the retained ring."""
        span = self._active.get(key)
        if span is not None:
            return span
        for span in self._closed:
            if span.key == key:
                return span
        return None

    def active(self) -> List[SessionSpan]:
        """Open spans, oldest key first."""
        return [self._active[k] for k in sorted(self._active)]

    def recent(self, limit: Optional[int] = None) -> List[SessionSpan]:
        """Completed spans, newest first (up to *limit*)."""
        spans = list(self._closed)
        spans.reverse()
        return spans if limit is None else spans[:limit]

    @property
    def recorded(self) -> int:
        """Total transitions recorded over the log's lifetime."""
        return self._recorded

    def __len__(self) -> int:
        return len(self._active) + len(self._closed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SpanLog active={len(self._active)} "
            f"closed={len(self._closed)} capacity={self.capacity}>"
        )
