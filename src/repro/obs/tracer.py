"""The Tracer: a bounded ring of typed records with JSONL export.

Design constraints (from the tentpole):

* **bounded memory** — records land in a ``deque(maxlen=capacity)``;
  long runs keep the most recent window.  Per-kind *counts* are kept
  separately and are exact over the whole run even after the ring
  wraps.
* **cheap when off** — instrumentation sites hold an
  ``Optional[Tracer]`` and guard with one ``is None`` check; no record
  objects are built unless a tracer is attached.
* **cheap when on** — ``emit`` builds one small object and appends to
  a deque; no formatting happens until export.

Example:
    >>> from repro.obs import TraceKind, Tracer
    >>> tr = Tracer(capacity=2)
    >>> tr.emit(TraceKind.REQUEST_ARRIVE, 1.0, request=1, video=3)
    >>> tr.emit(TraceKind.REQUEST_ADMIT, 1.0, request=1, video=3, server=0)
    >>> tr.emit(TraceKind.REQUEST_FINISH, 9.0, request=1, server=0)
    >>> len(tr)                   # ring holds the newest 2
    2
    >>> tr.counts[TraceKind.REQUEST_ARRIVE]   # counts stay exact
    1
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.obs.records import TraceKind, TraceRecord

#: Default ring capacity — enough for a scaled-down experiment's full
#: record stream while bounding a full-fidelity run to ~tens of MB.
DEFAULT_CAPACITY = 200_000


class Tracer:
    """Collects :class:`TraceRecord` objects into a bounded ring buffer.

    Args:
        capacity: maximum records retained (oldest evicted first).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._ring: deque = deque(maxlen=self.capacity)
        #: Exact per-kind emission counts (never truncated by the ring).
        self.counts: Dict[TraceKind, int] = {}
        self._emitted = 0

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(self, kind: TraceKind, time: float, **fields: Any) -> None:
        """Record one event at simulation *time*."""
        self._ring.append(TraceRecord(time, kind, fields))
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self._emitted += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Records currently in the ring (<= capacity)."""
        return len(self._ring)

    @property
    def emitted(self) -> int:
        """Total records emitted over the tracer's lifetime."""
        return self._emitted

    @property
    def dropped(self) -> int:
        """Records evicted by the ring bound."""
        return self._emitted - len(self._ring)

    def records(self) -> Iterator[TraceRecord]:
        """Yield retained records oldest-first."""
        return iter(self._ring)

    def records_of(self, kind: TraceKind) -> List[TraceRecord]:
        """Retained records of one kind, oldest-first."""
        return [r for r in self._ring if r.kind is kind]

    def clear(self) -> None:
        """Drop retained records and zero the counts (warmup reset)."""
        self._ring.clear()
        self.counts = {}
        self._emitted = 0

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export_jsonl(
        self,
        path: Union[str, Path],
        provenance: Optional[dict] = None,
        append: bool = False,
    ) -> int:
        """Write retained records to *path*, one JSON object per line.

        A leading ``run.meta`` line carries *provenance* (plus the
        tracer's own emitted/dropped accounting) when given.

        Returns:
            Number of lines written.
        """
        mode = "a" if append else "w"
        lines = 0
        with open(path, mode) as fh:
            if provenance is not None:
                meta = TraceRecord(
                    0.0,
                    TraceKind.RUN_META,
                    {
                        "provenance": provenance,
                        "records": len(self._ring),
                        "emitted": self._emitted,
                        "dropped": self.dropped,
                    },
                )
                fh.write(meta.to_json() + "\n")
                lines += 1
            for record in self._ring:
                fh.write(record.to_json() + "\n")
                lines += 1
        return lines

    def summary_table(self) -> str:
        """ASCII table of per-kind counts (exact, whole-run)."""
        if not self.counts:
            return "trace: no records"
        width = max(len(k.value) for k in self.counts)
        lines = [f"{'kind':<{width}}  count", f"{'-' * width}  -----"]
        for kind in sorted(self.counts, key=lambda k: k.value):
            lines.append(f"{kind.value:<{width}}  {self.counts[kind]}")
        lines.append(
            f"({self._emitted} emitted, {len(self._ring)} retained, "
            f"{self.dropped} evicted by ring bound {self.capacity})"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Tracer emitted={self._emitted} retained={len(self._ring)} "
            f"capacity={self.capacity}>"
        )


def iter_jsonl(path: Union[str, Path]) -> Iterator[dict]:
    """Parse a JSONL trace file back into dicts (skips blank lines)."""
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)
