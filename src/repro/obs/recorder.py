"""The flight recorder: dump the recent trace window on disaster.

A long-lived gateway cannot keep (or ship) its full trace, but the
moments *before* a crash are exactly the ones worth keeping.  The
:class:`FlightRecorder` leans on the :class:`~repro.obs.tracer.Tracer`'s
bounded ring — the newest records are already retained in memory — and
adds the three trigger paths a serving process needs:

* **operator-requested** — ``SIGUSR2`` (installed via
  :meth:`install_signal_handler`) dumps without disturbing the run, so
  a live incident can be snapshotted mid-flight;
* **invariant violation** — the gateway's policy loop dumps before an
  :class:`~repro.faults.invariants.InvariantViolation` propagates;
* **unhandled crash** — :meth:`guard` wraps any critical section and
  dumps on the way out of an unexpected exception.

A dump is one JSONL file: a leading ``postmortem.meta`` record carrying
provenance (reason, trigger detail, pid, UTC wall time, dump sequence
number, ring accounting, plus whatever ``state`` supplier the owner
registered — typically a metrics snapshot), followed by the retained
trace records oldest-first.  Repeated dumps overwrite the same path
with the newest window (``dump_seq`` disambiguates), keeping the
artifact path predictable for CI collection.
"""

from __future__ import annotations

import contextlib
import json
import os
import signal
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, Optional, Union

from repro.obs.records import TraceKind, TraceRecord
from repro.obs.tracer import Tracer


class FlightRecorder:
    """Dump a tracer's retained ring to a provenance-stamped postmortem.

    Args:
        tracer: the ring to dump (shared with normal tracing — one
            tracer serves live export, spans and the recorder).
        path: postmortem file; each dump rewrites it with the newest
            window.
        provenance: run provenance embedded in the meta record
            (seed/config hash/mode — see :func:`repro.obs.run_provenance`).
        state: optional supplier of extra JSON-ready state captured at
            dump time (e.g. ``registry.snapshot``); failures inside the
            supplier are recorded, never raised — a recorder must not
            turn a crash into a different crash.
    """

    def __init__(
        self,
        tracer: Tracer,
        path: Union[str, Path],
        provenance: Optional[dict] = None,
        state: Optional[Callable[[], Any]] = None,
    ) -> None:
        self.tracer = tracer
        self.path = Path(path)
        self.provenance = provenance
        self.state = state
        self.dumps = 0
        self._installed: Optional[tuple] = None

    # ------------------------------------------------------------------
    # The dump itself
    # ------------------------------------------------------------------
    def dump(
        self,
        reason: str,
        detail: Optional[str] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Write the postmortem file now; returns its path.

        Safe to call from a signal handler (pure synchronous I/O) and
        from ``except`` blocks; any failure of the optional *state*
        supplier is embedded as ``state_error`` instead of raising.
        *extra* (JSON-ready) is merged into the meta record — the task
        supervisor stamps each trip's task name and restart count here.
        """
        self.dumps += 1
        state: Any = None
        state_error: Optional[str] = None
        if self.state is not None:
            try:
                state = self.state()
            except Exception as exc:  # noqa: BLE001 - must not re-crash
                state_error = f"{type(exc).__name__}: {exc}"
        meta = TraceRecord(
            0.0,
            TraceKind.POSTMORTEM_META,
            {
                "reason": reason,
                "detail": detail,
                "pid": os.getpid(),
                "wall_utc": datetime.now(timezone.utc).isoformat(
                    timespec="seconds"
                ),
                "dump_seq": self.dumps,
                "records": len(self.tracer),
                "emitted": self.tracer.emitted,
                "dropped": self.tracer.dropped,
                "provenance": self.provenance,
                "state": state,
                "state_error": state_error,
                **(extra or {}),
            },
        )
        with open(self.path, "w") as fh:
            fh.write(meta.to_json() + "\n")
            for record in self.tracer.records():
                fh.write(record.to_json() + "\n")
        return self.path

    # ------------------------------------------------------------------
    # Trigger paths
    # ------------------------------------------------------------------
    def install_signal_handler(
        self,
        signum: Optional[int] = None,
        loop: Optional[Any] = None,
    ) -> bool:
        """Dump on *signum* (default ``SIGUSR2``); True when installed.

        With an asyncio *loop* the handler runs as a loop callback
        (``loop.add_signal_handler``); otherwise a plain
        :func:`signal.signal` handler is used.  Returns False on
        platforms without the signal (Windows) instead of raising.
        """
        if signum is None:
            signum = getattr(signal, "SIGUSR2", None)
            if signum is None:  # pragma: no cover - non-POSIX
                return False
        if loop is not None:
            try:
                loop.add_signal_handler(
                    signum, self.dump, "signal", signal.Signals(signum).name
                )
            except NotImplementedError:  # pragma: no cover - non-POSIX
                return False
            self._installed = ("loop", loop, signum)
            return True
        previous = signal.signal(
            signum, lambda s, frame: self.dump("signal", signal.Signals(s).name)
        )
        self._installed = ("signal", previous, signum)
        return True

    def uninstall_signal_handler(self) -> None:
        """Undo :meth:`install_signal_handler` (idempotent)."""
        if self._installed is None:
            return
        kind, token, signum = self._installed
        self._installed = None
        if kind == "loop":
            token.remove_signal_handler(signum)
        else:
            signal.signal(signum, token)

    @contextlib.contextmanager
    def guard(self, where: str = "run") -> Iterator["FlightRecorder"]:
        """Dump on the way out of an unexpected exception.

        ``InvariantViolation`` dumps with reason ``invariant_violation``
        (the checker's message as detail); any other exception dumps
        with reason ``crash``.  The exception always propagates —
        recording is a side effect, not a handler.
        """
        from repro.faults.invariants import InvariantViolation

        try:
            yield self
        except InvariantViolation as exc:
            self.dump("invariant_violation", f"{where}: {exc}")
            raise
        except Exception as exc:
            self.dump("crash", f"{where}: {type(exc).__name__}: {exc}")
            raise

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FlightRecorder path={str(self.path)!r} dumps={self.dumps}>"


def read_postmortem(path: Union[str, Path]) -> Dict[str, Any]:
    """Parse a postmortem file into ``{"meta": ..., "records": [...]}``.

    Raises ``ValueError`` (one line, naming the path) when the file is
    not a postmortem dump.
    """
    meta: Optional[dict] = None
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            if meta is None:
                if entry.get("kind") != TraceKind.POSTMORTEM_META.value:
                    raise ValueError(
                        f"{path}: not a postmortem dump (first record is "
                        f"{entry.get('kind')!r}, expected "
                        f"{TraceKind.POSTMORTEM_META.value!r})"
                    )
                meta = entry
            else:
                records.append(entry)
    if meta is None:
        raise ValueError(f"{path}: empty postmortem file")
    return {"meta": meta, "records": records}
