"""Cluster membership: the lifecycle of every server, epoch-stamped.

The static model froze the server set at build time; elastic scaling
makes membership a runtime variable.  Every server moves through::

    joining -> warming -> active -> draining -> departed

* **joining** — the node exists and is being calibrated/wired; it
  accepts nothing.
* **warming** — replicas are being copied onto it (bounded by its
  measured ``disk_throughput``); still not accepting.
* **active** — full member: admission, DRM and failover may use it.
* **draining** — scheduled to leave: no new streams, existing streams
  are migrated off by DRM.
* **departed** — empty and out of placement; its engine-side manager is
  deactivated and its serve-layer task retires.  Terminal.

Every transition bumps the cluster-wide **epoch** — the serve layer
reconciles its supervised per-server tasks against the epoch, and the
ops endpoint / ``repro top`` display it.  Transitions are virtual-time
events, so membership history is part of the deterministic replay.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Tuple

#: Transitions a server may take (initial registration is not a
#: transition; seed servers start ACTIVE at epoch 0).
_ALLOWED: Dict["ServerLifecycle", Tuple["ServerLifecycle", ...]] = {}


class ServerLifecycle(str, enum.Enum):
    """Where one server stands in the membership lifecycle."""

    JOINING = "joining"
    WARMING = "warming"
    ACTIVE = "active"
    DRAINING = "draining"
    DEPARTED = "departed"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_ALLOWED.update(
    {
        ServerLifecycle.JOINING: (
            ServerLifecycle.WARMING,
            ServerLifecycle.ACTIVE,
        ),
        ServerLifecycle.WARMING: (ServerLifecycle.ACTIVE,),
        ServerLifecycle.ACTIVE: (ServerLifecycle.DRAINING,),
        ServerLifecycle.DRAINING: (ServerLifecycle.DEPARTED,),
        ServerLifecycle.DEPARTED: (),
    }
)


class ClusterMembership:
    """Lifecycle state per server id plus the cluster epoch.

    The epoch starts at 0 (the seed membership) and increments once per
    lifecycle transition.  Hooks — ``(server_id, state, epoch)`` — fire
    after each transition; the serve layer's gateway registers one to
    spawn/retire supervised server tasks.
    """

    def __init__(self) -> None:
        self.states: Dict[int, ServerLifecycle] = {}
        self.epoch = 0
        self.hooks: List[Callable[[int, ServerLifecycle, int], None]] = []

    # ------------------------------------------------------------------
    def register(
        self,
        server_id: int,
        state: ServerLifecycle = ServerLifecycle.ACTIVE,
    ) -> None:
        """Add a server to the membership map.

        Seed servers register ACTIVE without bumping the epoch (they
        *are* epoch 0); mid-run joiners register JOINING, which counts
        as a transition.
        """
        if server_id in self.states:
            raise ValueError(f"server {server_id} already a member")
        self.states[server_id] = state
        if state is not ServerLifecycle.ACTIVE:
            self._bump(server_id, state)

    def transition(self, server_id: int, state: ServerLifecycle) -> None:
        """Move *server_id* to *state*, enforcing the lifecycle order."""
        current = self.states.get(server_id)
        if current is None:
            raise KeyError(f"server {server_id} is not a member")
        if state not in _ALLOWED[current]:
            raise ValueError(
                f"server {server_id}: illegal transition "
                f"{current.value} -> {state.value}"
            )
        self.states[server_id] = state
        self._bump(server_id, state)

    def _bump(self, server_id: int, state: ServerLifecycle) -> None:
        self.epoch += 1
        for hook in self.hooks:
            hook(server_id, state, self.epoch)

    # ------------------------------------------------------------------
    def state(self, server_id: int) -> ServerLifecycle:
        return self.states[server_id]

    def members(self, *states: ServerLifecycle) -> List[int]:
        """Server ids currently in any of *states* (all when empty),
        sorted for determinism."""
        if not states:
            return sorted(self.states)
        return sorted(
            sid for sid, st in self.states.items() if st in states
        )

    def counts(self) -> Dict[str, int]:
        """How many servers sit in each lifecycle state (JSON-ready)."""
        out = {state.value: 0 for state in ServerLifecycle}
        for st in self.states.values():
            out[st.value] += 1
        return out

    def to_dict(self) -> Dict:
        """JSON-ready snapshot for ops/health and run summaries."""
        return {
            "epoch": self.epoch,
            "servers": {
                str(sid): st.value for sid, st in sorted(self.states.items())
            },
            "counts": self.counts(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ClusterMembership epoch={self.epoch} {self.counts()}>"
