"""Cluster-based video server model (paper Section 2).

A cluster is a **distribution controller** in front of independent
**data servers** with private (non-shared) storage.  Clients have a
disk-backed **staging buffer** and a bounded receive link.

* :mod:`repro.cluster.client` — client capability profile.
* :mod:`repro.cluster.request` — the per-stream fluid-flow state machine
  (bytes sent, buffer occupancy, projected finish).
* :mod:`repro.cluster.server` — a data server: outbound bandwidth, disk
  capacity, video holdings and the active stream set.
* :mod:`repro.cluster.controller` — the distribution controller:
  admission, assignment, migration hooks, metrics.
* :mod:`repro.cluster.system` — the paper's Figure 3 system presets and
  heterogeneous variants.
"""

from repro.cluster.client import ClientProfile, staging_capacity
from repro.cluster.controller import DistributionController
from repro.cluster.request import Request, RequestState
from repro.cluster.server import DataServer, StorageError
from repro.cluster.system import (
    LARGE_SYSTEM,
    SMALL_SYSTEM,
    SystemConfig,
    heterogeneous_bandwidth,
    heterogeneous_storage,
)

__all__ = [
    "ClientProfile",
    "DataServer",
    "DistributionController",
    "LARGE_SYSTEM",
    "Request",
    "RequestState",
    "SMALL_SYSTEM",
    "StorageError",
    "SystemConfig",
    "heterogeneous_bandwidth",
    "heterogeneous_storage",
    "staging_capacity",
]
