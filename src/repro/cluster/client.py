"""Client capability profile: staging buffer and receive bandwidth.

The paper distinguishes *client buffering* (small memory buffer) from
*client staging* (larger disk buffer for workahead transmission); the
model only needs their combined capacity.  Section 4.3 expresses the
staging buffer "as a percentage of the storage required to store an
entire copy of the average sized video".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.units import DEFAULT_CLIENT_RECEIVE_BANDWIDTH


@dataclass(frozen=True)
class ClientProfile:
    """Capabilities of a receiving client.

    Attributes:
        buffer_capacity: staging buffer size in Mb; 0 forces purely
            continuous transmission, ``math.inf`` removes the limit
            (the Theorem 1 regime).
        receive_bandwidth: maximum rate the client can ingest, Mb/s;
            the staging experiments cap this at 30 Mb/s.
    """

    buffer_capacity: float = 0.0
    receive_bandwidth: float = DEFAULT_CLIENT_RECEIVE_BANDWIDTH

    def __post_init__(self) -> None:
        if self.buffer_capacity < 0:
            raise ValueError(
                f"buffer capacity must be >= 0, got {self.buffer_capacity}"
            )
        if self.receive_bandwidth <= 0:
            raise ValueError(
                f"receive bandwidth must be positive, got {self.receive_bandwidth}"
            )

    @property
    def unbounded_receive(self) -> bool:
        """True when the receive link is effectively unlimited."""
        return math.isinf(self.receive_bandwidth)


def staging_capacity(fraction: float, mean_video_size: float) -> float:
    """Buffer capacity (Mb) for a staging degree given as a fraction.

    Args:
        fraction: staging degree, e.g. 0.2 for the paper's near-optimal
            "20 % of the average sized video"; 1.0 stores a whole
            average video.
        mean_video_size: catalog mean video size in Mb.
    """
    if fraction < 0:
        raise ValueError(f"staging fraction must be >= 0, got {fraction}")
    if mean_video_size <= 0:
        raise ValueError(
            f"mean video size must be positive, got {mean_video_size}"
        )
    return fraction * mean_video_size
