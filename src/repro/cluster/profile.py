"""Server capacity profiles: measured inputs for placement/admission.

The preset numbers in :class:`repro.cluster.system.SystemConfig` are
*nominal* capacities — what the hardware datasheet claims.  The
FFmpeg-Cluster exemplar benchmarks every node before partitioning work
by *measured* speed; this module applies the same idea to the cluster
model.  A :func:`calibrate` pass produces one :class:`ServerProfile`
per server (effective outbound bandwidth, disk copy-in throughput,
usable storage) from a deterministic simulated micro-benchmark on a
named RNG substream, and every capacity a policy reads downstream —
placement disk fitting, minimum-flow admission, EFTF spare-bandwidth
allocation, DRM chain search — flows through
:meth:`repro.cluster.server.DataServer.effective_bandwidth`, never the
preset constants.

With ``jitter=0`` (the default) the measured numbers equal the nominal
ones exactly, so calibration is digest-neutral unless a scenario opts
into measurement noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (system imports us)
    from repro.cluster.system import SystemConfig

#: Nominal disk copy-in rate, Mb/s, when no calibration measures one.
#: Matches :class:`repro.core.replication.ReplicationPolicy`'s default
#: tertiary-storage ``copy_bandwidth`` so warming and replication agree.
DEFAULT_DISK_THROUGHPUT = 100.0


@dataclass(frozen=True)
class ServerProfile:
    """Measured capacities of one server.

    Attributes:
        server_id: which server this profile describes.
        bandwidth: effective outbound link capacity, Mb/s.
        disk_throughput: replica copy-in rate, Mb/s (bounds warming).
        storage: usable disk, Mb.
    """

    server_id: int
    bandwidth: float
    disk_throughput: float = DEFAULT_DISK_THROUGHPUT
    storage: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(
                f"profile bandwidth must be positive, got {self.bandwidth}"
            )
        if self.disk_throughput <= 0:
            raise ValueError(
                f"profile disk_throughput must be positive, "
                f"got {self.disk_throughput}"
            )
        if self.storage < 0:
            raise ValueError(
                f"profile storage must be >= 0, got {self.storage}"
            )

    def to_dict(self) -> dict:
        from repro.serialize import shallow_dict

        return shallow_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ServerProfile":
        from repro.serialize import check_fields

        check_fields(cls, data)
        return cls(**data)


@dataclass(frozen=True)
class ClusterProfile:
    """One profile per server: the calibrated view of a whole cluster.

    Attributes:
        profiles: per-server profiles, ordered by server id.
        calibrated: False for the identity profile (nominal == measured).
    """

    profiles: Tuple[ServerProfile, ...]
    calibrated: bool = False

    def __post_init__(self) -> None:
        ids = [p.server_id for p in self.profiles]
        if ids != sorted(set(ids)):
            raise ValueError(
                f"profiles must be unique and ordered by server id, got {ids}"
            )

    def profile_for(self, server_id: int) -> ServerProfile:
        for p in self.profiles:
            if p.server_id == server_id:
                return p
        raise KeyError(f"no profile for server {server_id}")

    @property
    def total_bandwidth(self) -> float:
        """Cluster effective egress, Mb/s."""
        return float(sum(p.bandwidth for p in self.profiles))

    def bandwidth_weight(self, server_id: int) -> float:
        """This server's share of effective cluster egress, in [0, 1]."""
        total = self.total_bandwidth
        return self.profile_for(server_id).bandwidth / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "profiles": [p.to_dict() for p in self.profiles],
            "calibrated": self.calibrated,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterProfile":
        from repro.serialize import check_fields

        check_fields(cls, data)
        profiles = tuple(
            p if isinstance(p, ServerProfile) else ServerProfile.from_dict(p)
            for p in data.get("profiles", ())
        )
        return cls(
            profiles=profiles, calibrated=bool(data.get("calibrated", False))
        )


@dataclass(frozen=True)
class CalibrationConfig:
    """How the calibration micro-benchmark probes each server.

    Attributes:
        trials: probe repetitions per server; the median is kept, so a
            single outlier measurement cannot skew a weight.
        jitter: relative standard deviation of one probe measurement.
            ``0`` (default) makes calibration exact — measured equals
            nominal and every existing digest is unchanged.
        disk_throughput: nominal copy-in rate the disk probe measures
            around, Mb/s.
    """

    trials: int = 3
    jitter: float = 0.0
    disk_throughput: float = DEFAULT_DISK_THROUGHPUT

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ValueError(f"trials must be >= 1, got {self.trials}")
        if not 0.0 <= self.jitter < 0.5:
            raise ValueError(
                f"jitter must be in [0, 0.5), got {self.jitter}"
            )
        if self.disk_throughput <= 0:
            raise ValueError(
                f"disk_throughput must be positive, got {self.disk_throughput}"
            )

    def to_dict(self) -> dict:
        from repro.serialize import shallow_dict

        return shallow_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CalibrationConfig":
        from repro.serialize import check_fields

        check_fields(cls, data)
        return cls(**data)


def _measure(
    nominal: float,
    config: CalibrationConfig,
    rng: np.random.Generator,
) -> float:
    """One probe: median of ``trials`` noisy samples around *nominal*.

    Draws happen even at ``jitter=0`` so enabling noise later does not
    shift any *other* substream — the draw count per server is fixed.
    """
    samples = nominal * (1.0 + config.jitter * rng.standard_normal(config.trials))
    measured = float(np.median(samples))
    # A probe cannot report a nonsensical capacity; clamp to half/double
    # nominal (jitter < 0.5 keeps the clamp rarely binding).
    return min(max(measured, 0.5 * nominal), 2.0 * nominal)


def calibrate_server(
    server_id: int,
    bandwidth: float,
    storage: float,
    config: CalibrationConfig,
    rng: np.random.Generator,
) -> ServerProfile:
    """Benchmark one server: link probe then disk probe, both medians."""
    return ServerProfile(
        server_id=server_id,
        bandwidth=_measure(bandwidth, config, rng),
        disk_throughput=_measure(config.disk_throughput, config, rng),
        storage=float(storage),
    )


def calibrate(
    system: "SystemConfig",
    config: CalibrationConfig,
    rng: np.random.Generator,
) -> ClusterProfile:
    """Deterministic calibration pass over every server of *system*.

    Servers are probed in id order on the caller's substream, so the
    same seed always yields the same profile.
    """
    profiles = tuple(
        calibrate_server(i, bw, disk, config, rng)
        for i, (bw, disk) in enumerate(
            zip(system.server_bandwidths, system.disk_capacities)
        )
    )
    return ClusterProfile(profiles=profiles, calibrated=True)


def identity_profile(system: "SystemConfig") -> ClusterProfile:
    """The uncalibrated view: measured capacities equal the presets."""
    profiles = tuple(
        ServerProfile(
            server_id=i,
            bandwidth=float(bw),
            disk_throughput=DEFAULT_DISK_THROUGHPUT,
            storage=float(disk),
        )
        for i, (bw, disk) in enumerate(
            zip(system.server_bandwidths, system.disk_capacities)
        )
    )
    return ClusterProfile(profiles=profiles, calibrated=False)


def profile_of(
    server_id: int,
    profile: Optional[ClusterProfile],
    bandwidth: float,
    storage: float,
) -> ServerProfile:
    """The profile for *server_id*, or an identity one when absent."""
    if profile is not None:
        try:
            return profile.profile_for(server_id)
        except KeyError:
            pass
    return ServerProfile(
        server_id=server_id, bandwidth=float(bandwidth), storage=float(storage)
    )
