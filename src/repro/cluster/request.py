"""Per-stream fluid-flow state: the request lifecycle.

A request is admitted, plays back at ``b_view`` from the moment of
admission, and receives data from its assigned server at a
piecewise-constant rate chosen by the bandwidth allocator.  Between
scheduler events the state evolves linearly, so we integrate lazily:
:meth:`Request.sync` advances ``bytes_sent`` by ``rate * dt`` and
reports the delta to the metrics sink.

Derived quantities (Section 3.3 of the paper):

* ``bytes_viewed(t) = min(size, b_view * (t - playback_start))``
* ``buffer(t) = bytes_sent(t) - bytes_viewed(t)``  — staging occupancy
* ``headroom(t) = min(capacity - buffer, size - bytes_sent)`` — how much
  workahead the client can still absorb
* ``projected_finish(t) = t + remaining / b_view`` — EFTF's sort key;
  minimising it is equivalent to minimising ``remaining``.

The **minimum-flow invariant** (every unfinished request transmits at
``rate >= b_view``) guarantees ``buffer(t) >= 0``; the only exception is
a migration switch gap, which is allowed to eat into the buffer and is
bounded by the eligibility check in :mod:`repro.core.migration`.
"""

from __future__ import annotations

import enum
import itertools
from typing import Optional, TYPE_CHECKING

from repro.cluster.client import ClientProfile
from repro.workload.catalog import Video

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.analysis.metrics import MetricsSink

#: Float tolerance for "zero megabits" comparisons, chosen far below a
#: single bit at our scales (videos are 10**3..10**5 Mb).
EPS_MB: float = 1e-6


def reset_request_ids() -> None:
    """Restart the global request-id counter at zero.

    Request ids are process-global, and they seed per-request RNG
    substreams (retry jitter keys off ``retry.req<id>``), so leftover
    counter state from a previous in-process run would change both
    trace bytes and results.  :class:`repro.Simulation` calls this at
    construction so every run is hermetic — same seed, same ids, same
    trace — even in a reused sweep worker process; hand-wired harnesses
    that build requests directly can call it themselves.
    """
    Request._ids = itertools.count()


class RequestState(enum.Enum):
    """Lifecycle states of a request."""

    ACTIVE = "active"          #: admitted, transmission in progress
    FINISHED = "finished"      #: all data sent (playback may continue)
    REJECTED = "rejected"      #: admission denied
    DROPPED = "dropped"        #: lost mid-stream (server failure)


class Request:
    """One admitted (or rejected) stream.

    Attributes:
        request_id: unique, monotonically increasing.
        video: the requested :class:`~repro.workload.catalog.Video`.
        client: receiving client's :class:`ClientProfile`.
        arrival_time: submission time.
        server_id: current assigned server (None before admission /
            after rejection).
        rate: current transmission rate, Mb/s.
        bytes_sent: cumulative megabits transmitted.
        hops: number of times this stream has been migrated.
        paused_until: end of a migration switch gap during which the
            stream receives no data (0 when not paused).
    """

    __slots__ = (
        "request_id",
        "video",
        "client",
        "size",
        "view_bandwidth",
        "arrival_time",
        "server_id",
        "state",
        "rate",
        "bytes_sent",
        "last_sync",
        "playback_start",
        "hops",
        "paused_until",
        "finish_time",
        "starved",
        "playback_pause_time",
        "pauses",
    )

    _ids = itertools.count()

    def __init__(
        self,
        video: Video,
        client: ClientProfile,
        arrival_time: float,
    ) -> None:
        self.request_id: int = next(Request._ids)
        self.video = video
        self.client = client
        # Hot-loop copies of video attributes (saves an indirection in
        # the allocator's inner loop).
        self.size = video.size
        self.view_bandwidth = video.view_bandwidth
        self.arrival_time = float(arrival_time)
        self.server_id: Optional[int] = None
        self.state = RequestState.ACTIVE
        self.rate = 0.0
        self.bytes_sent = 0.0
        self.last_sync = float(arrival_time)
        self.playback_start = float(arrival_time)
        self.hops = 0
        self.paused_until = 0.0
        self.finish_time: Optional[float] = None
        #: True while the stream is underrunning (intermittent
        #: allocators only; see repro.core.intermittent).
        self.starved = False
        #: Time playback was paused by the viewer (VCR interactivity);
        #: ``inf`` while playing.  ``playback_start`` shifts forward on
        #: resume so ``bytes_viewed`` stays a single linear formula.
        self.playback_pause_time = float("inf")
        #: Number of VCR pauses performed so far.
        self.pauses = 0

    # ------------------------------------------------------------------
    # Lazy integration
    # ------------------------------------------------------------------
    def sync(self, now: float, metrics: "Optional[MetricsSink]" = None) -> float:
        """Integrate state forward to *now*; returns megabits transferred.

        Clamps at the video size (the finish boundary is scheduled
        exactly, so any overshoot is float noise).  Reports the clamped
        delta to *metrics* attributed to the current server.
        """
        dt = now - self.last_sync
        if dt < 0:
            raise ValueError(
                f"sync backwards: now={now} < last_sync={self.last_sync}"
            )
        delta = self.rate * dt
        remaining = self.video.size - self.bytes_sent
        if delta > remaining:
            delta = remaining
        self.bytes_sent += delta
        self.last_sync = now
        if metrics is not None and delta > 0.0:
            metrics.record_bytes(self.server_id, delta, now)
        return delta

    # ------------------------------------------------------------------
    # Derived quantities (read-only; *now* must be >= last_sync)
    # ------------------------------------------------------------------
    @property
    def remaining(self) -> float:
        """Megabits still to transmit (as of last sync)."""
        return max(0.0, self.video.size - self.bytes_sent)

    @property
    def transmission_finished(self) -> bool:
        """True when (almost) all data has been sent."""
        return self.remaining <= EPS_MB

    def bytes_viewed(self, now: float) -> float:
        """Megabits consumed by playback by time *now*.

        While the viewer has paused (VCR interactivity) consumption is
        frozen at the pause instant.
        """
        played_until = min(now, self.playback_pause_time)
        elapsed = max(0.0, played_until - self.playback_start)
        return min(self.video.size, self.view_bandwidth * elapsed)

    def buffer_occupancy(self, now: float) -> float:
        """Client staging buffer occupancy, Mb (>= 0 up to float noise)."""
        return max(0.0, self.bytes_sent - self.bytes_viewed(now))

    def headroom(self, now: float) -> float:
        """Workahead the client can still absorb, Mb."""
        by_capacity = self.client.buffer_capacity - self.buffer_occupancy(now)
        by_data = self.video.size - self.bytes_sent
        return max(0.0, min(by_capacity, by_data))

    def projected_finish(self, now: float) -> float:
        """Finish time if transmitted at exactly ``b_view`` from *now* on."""
        return now + self.remaining / self.view_bandwidth

    @property
    def playback_end(self) -> float:
        """Time playback completes, assuming no further viewer pauses
        (``playback_start`` already accounts for completed pauses)."""
        return self.playback_start + self.video.length

    def is_paused(self, now: float) -> bool:
        """True during a migration switch gap."""
        return now < self.paused_until

    # ------------------------------------------------------------------
    # VCR interactivity (paper future work: "interactivity in
    # semi-continuous transmission")
    # ------------------------------------------------------------------
    @property
    def playback_paused(self) -> bool:
        """True while the viewer has hit pause."""
        return self.playback_pause_time != float("inf")

    def pause_playback(self, now: float) -> None:
        """Viewer pauses; consumption freezes, transmission may continue
        into the staging buffer.  Idempotent."""
        if self.playback_paused:
            return
        if now < self.playback_start:
            raise ValueError(
                f"cannot pause at {now} before playback start "
                f"{self.playback_start}"
            )
        self.playback_pause_time = float(now)
        self.pauses += 1

    def resume_playback(self, now: float) -> None:
        """Viewer resumes; the playback clock shifts by the pause length
        so ``bytes_viewed`` remains a single linear formula.  Idempotent."""
        if not self.playback_paused:
            return
        if now < self.playback_pause_time:
            raise ValueError(
                f"cannot resume at {now} before the pause at "
                f"{self.playback_pause_time}"
            )
        self.playback_start += now - self.playback_pause_time
        self.playback_pause_time = float("inf")

    # ------------------------------------------------------------------
    # Retry lifecycle (graceful degradation, repro.faults.retry)
    # ------------------------------------------------------------------
    def prepare_retry(self, now: float) -> None:
        """Re-enter the admission pipeline at *now* after a rejection or
        a mid-stream drop.

        A never-served request restarts playback from the resubmission
        instant; a dropped stream keeps its transmitted bytes (the
        viewer's player is stalled — the retry queue freezes consumption
        via :meth:`pause_playback` at drop time and resumes it only once
        the stream is re-admitted).
        """
        if self.state not in (RequestState.REJECTED, RequestState.DROPPED):
            raise ValueError(
                f"cannot retry a request in state {self.state.value}"
            )
        self.state = RequestState.ACTIVE
        self.rate = 0.0
        self.server_id = None
        self.finish_time = None
        self.last_sync = float(now)
        if self.bytes_sent <= EPS_MB and not self.playback_paused:
            # Nothing was ever sent: playback starts when (if) the
            # retry is admitted, not at the original arrival.
            self.playback_start = float(now)

    # ------------------------------------------------------------------
    # State transitions
    # ------------------------------------------------------------------
    def mark_finished(self, now: float) -> None:
        """Record transmission completion."""
        self.state = RequestState.FINISHED
        self.finish_time = now
        self.rate = 0.0

    def mark_rejected(self) -> None:
        self.state = RequestState.REJECTED
        self.server_id = None

    def mark_dropped(self, now: float) -> None:
        """Stream lost (e.g. server failure with no migration target)."""
        self.state = RequestState.DROPPED
        self.finish_time = now
        self.rate = 0.0
        self.server_id = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Request #{self.request_id} video={self.video.video_id} "
            f"{self.state.value} srv={self.server_id} sent={self.bytes_sent:.1f}"
            f"/{self.video.size:.1f}Mb rate={self.rate:.2f}>"
        )
