"""System configurations: the paper's Figure 3 presets and variants.

Figure 3 defines two reference systems::

    System                      Small       Large
    Number of servers           5           20
    Server bandwidth            100 Mb/s    300 Mb/s
    Video length                10-30 min   1-2 hrs
    Average copies per video    2.2         2.2
    Disk capacity per server    100 GB      50 GB
    View bandwidth              3 Mb/s      3 Mb/s

The catalog sizes are unreadable in the available copy of the paper; we
pick 300 (small) and 200 (large) titles, the largest round numbers for
which 2.2 copies per video fit the stated disks (see DESIGN.md).  The
resulting server-to-view-bandwidth ratios (SVBR) — 33 streams/server
small, 100 large — are the quantities the paper's analysis keys on.

Section 4.6 studies **heterogeneous** clusters;
:func:`heterogeneous_bandwidth` / :func:`heterogeneous_storage` spread a
fixed total unevenly so heterogeneous and homogeneous systems are
capacity-matched.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

from repro.cluster.profile import ClusterProfile
from repro.cluster.server import DataServer
from repro.registry import Registry
from repro.units import (
    DEFAULT_CLIENT_RECEIVE_BANDWIDTH,
    DEFAULT_VIEW_BANDWIDTH,
    gb_to_mb,
    minutes,
)


@dataclass(frozen=True)
class SystemConfig:
    """A full cluster + workload parameterisation.

    Attributes:
        name: human-readable label.
        server_bandwidths: per-server outbound capacity, Mb/s.
        disk_capacities: per-server storage, Mb.
        n_videos: catalog size.
        video_length_range: (low, high) playback seconds.
        avg_copies: mean replicas per video (paper: 2.2).
        view_bandwidth: playback rate, Mb/s.
        client_receive_bandwidth: per-client ingest cap, Mb/s.
    """

    name: str
    server_bandwidths: Tuple[float, ...]
    disk_capacities: Tuple[float, ...]
    n_videos: int
    video_length_range: Tuple[float, float]
    avg_copies: float = 2.2
    view_bandwidth: float = DEFAULT_VIEW_BANDWIDTH
    client_receive_bandwidth: float = DEFAULT_CLIENT_RECEIVE_BANDWIDTH

    def __post_init__(self) -> None:
        if len(self.server_bandwidths) != len(self.disk_capacities):
            raise ValueError(
                "server_bandwidths and disk_capacities must have equal length"
            )
        if not self.server_bandwidths:
            raise ValueError("a system needs at least one server")
        if self.n_videos < 1:
            raise ValueError(f"n_videos must be >= 1, got {self.n_videos}")
        if self.avg_copies < 1.0:
            raise ValueError(
                f"avg_copies must be >= 1 (every video needs a replica), "
                f"got {self.avg_copies}"
            )

    @property
    def n_servers(self) -> int:
        return len(self.server_bandwidths)

    @property
    def total_bandwidth(self) -> float:
        """Cluster egress capacity, Mb/s."""
        return float(sum(self.server_bandwidths))

    @property
    def total_storage(self) -> float:
        """Cluster storage, Mb."""
        return float(sum(self.disk_capacities))

    @property
    def total_copies(self) -> int:
        """Replica budget implied by ``avg_copies``."""
        return int(round(self.avg_copies * self.n_videos))

    @property
    def svbr(self) -> float:
        """Mean server-to-view bandwidth ratio (streams per server)."""
        return self.total_bandwidth / (self.n_servers * self.view_bandwidth)

    def build_servers(
        self, profile: Optional[ClusterProfile] = None
    ) -> List[DataServer]:
        """Instantiate fresh :class:`DataServer` objects for a run.

        With a *profile* (a calibration pass's output, see
        :mod:`repro.cluster.profile`) each server adopts its measured
        capacities; without one the presets stand unmodified.
        """
        servers = [
            DataServer(i, bw, disk)
            for i, (bw, disk) in enumerate(
                zip(self.server_bandwidths, self.disk_capacities)
            )
        ]
        if profile is not None:
            if len(profile.profiles) != len(servers):
                raise ValueError(
                    f"profile covers {len(profile.profiles)} servers, "
                    f"system has {len(servers)}"
                )
            for server, server_profile in zip(servers, profile.profiles):
                server.apply_profile(server_profile)
        return servers

    def scaled(self, n_videos: int = 0, name: str = "") -> "SystemConfig":
        """Copy with an overridden catalog size (for quick experiments)."""
        return replace(
            self,
            n_videos=n_videos or self.n_videos,
            name=name or self.name,
        )

    def to_dict(self) -> dict:
        """JSON-compatible dict; round-trips via :meth:`from_dict`."""
        from repro.serialize import shallow_dict

        return shallow_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SystemConfig":
        """Build from a dict, or resolve a ``{"preset": name}`` shorthand.

        Scenario files may name a registered preset instead of spelling
        out every server (``{"preset": "small"}``); any further keys
        then override the preset's fields.  Unknown keys raise an
        actionable error.
        """
        from repro.serialize import check_fields

        check_fields(cls, data, extra=("preset",))
        data = dict(data)
        preset_name = data.pop("preset", None)
        for key in ("server_bandwidths", "disk_capacities", "video_length_range"):
            if isinstance(data.get(key), list):
                data[key] = tuple(data[key])
        if preset_name is not None:
            preset = SYSTEMS.get(preset_name)
            return replace(preset, **data) if data else preset
        return cls(**data)


def homogeneous(
    name: str,
    n_servers: int,
    bandwidth: float,
    disk_capacity_gb: float,
    n_videos: int,
    video_length_range: Tuple[float, float],
    avg_copies: float = 2.2,
    **kwargs,
) -> SystemConfig:
    """Build a homogeneous :class:`SystemConfig` (Figure 3 style)."""
    return SystemConfig(
        name=name,
        server_bandwidths=tuple([float(bandwidth)] * n_servers),
        disk_capacities=tuple([gb_to_mb(disk_capacity_gb)] * n_servers),
        n_videos=n_videos,
        video_length_range=video_length_range,
        avg_copies=avg_copies,
        **kwargs,
    )


#: Figure 3, "Small": short clips, low SVBR (33 streams/server).
SMALL_SYSTEM: SystemConfig = homogeneous(
    name="small",
    n_servers=5,
    bandwidth=100.0,
    disk_capacity_gb=100.0,
    n_videos=300,
    video_length_range=(minutes(10), minutes(30)),
)

#: Figure 3, "Large": feature-length movies, high SVBR (100 streams/server).
LARGE_SYSTEM: SystemConfig = homogeneous(
    name="large",
    n_servers=20,
    bandwidth=300.0,
    disk_capacity_gb=50.0,
    n_videos=200,
    video_length_range=(minutes(60), minutes(120)),
)

#: Named system presets (scenario files and the CLI's ``--system`` flag
#: resolve through this); unknown names raise an actionable error.
SYSTEMS: Registry[SystemConfig] = Registry("system")
SYSTEMS.register(
    "small", SMALL_SYSTEM,
    help="Figure 3 'Small': 5 servers x 100 Mb/s, 10-30 min clips "
         "(SVBR 33)",
)
SYSTEMS.register(
    "large", LARGE_SYSTEM,
    help="Figure 3 'Large': 20 servers x 300 Mb/s, 1-2 h movies "
         "(SVBR 100)",
)


def _spread(total: float, n: int, spread: float, rng: np.random.Generator) -> Tuple[float, ...]:
    """Split *total* into n parts with relative spread in [1-s, 1+s].

    Weights are uniform in [1-s, 1+s] and renormalised, so the total is
    exactly preserved — heterogeneous systems stay capacity-matched with
    their homogeneous counterparts.
    """
    if not 0.0 <= spread < 1.0:
        raise ValueError(f"spread must be in [0, 1), got {spread}")
    weights = rng.uniform(1.0 - spread, 1.0 + spread, size=n)
    weights /= weights.sum()
    return tuple(float(total * w) for w in weights)


def heterogeneous_bandwidth(
    base: SystemConfig,
    spread: float,
    rng: np.random.Generator,
    name: str = "",
) -> SystemConfig:
    """Variant of *base* with unevenly distributed link capacity.

    Total cluster bandwidth is preserved; individual servers get between
    ``(1-spread)`` and ``(1+spread)`` of the mean (before renormalising).
    """
    bandwidths = _spread(base.total_bandwidth, base.n_servers, spread, rng)
    return replace(
        base,
        name=name or f"{base.name}-hetbw{spread:g}",
        server_bandwidths=bandwidths,
    )


def heterogeneous_storage(
    base: SystemConfig,
    spread: float,
    rng: np.random.Generator,
    name: str = "",
) -> SystemConfig:
    """Variant of *base* with unevenly distributed disk capacity."""
    disks = _spread(base.total_storage, base.n_servers, spread, rng)
    return replace(
        base,
        name=name or f"{base.name}-hetdisk{spread:g}",
        disk_capacities=disks,
    )


def sized_system(
    n_servers: int,
    base: SystemConfig = SMALL_SYSTEM,
    name: str = "",
) -> SystemConfig:
    """A *base*-like system with a different server count (Section 4.6
    studies 5/10/20-server classes).  Catalog scales proportionally so
    copies still fit."""
    scale = n_servers / base.n_servers
    return replace(
        base,
        name=name or f"{base.name}-x{n_servers}",
        server_bandwidths=tuple([base.server_bandwidths[0]] * n_servers),
        disk_capacities=tuple([base.disk_capacities[0]] * n_servers),
        n_videos=max(1, int(round(base.n_videos * scale))),
    )
