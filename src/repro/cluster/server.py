"""A data server: outbound link, private disk, holdings, active streams.

Servers do **not** share storage (Section 2); a request can only be
served by a server that holds a replica of its video.  The outbound
link is the unit of admission: under the minimum-flow discipline a
server can host an unfinished stream only if the sum of view bandwidths
of its unfinished streams plus the newcomer's fits in the link
(Section 3.3: "a new request can be allocated to a given server if and
only if …").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Set

from repro.cluster.profile import DEFAULT_DISK_THROUGHPUT
from repro.cluster.request import EPS_MB, Request
from repro.workload.catalog import Video

if TYPE_CHECKING:  # pragma: no cover - hint only
    from repro.cluster.profile import ServerProfile


class StorageError(RuntimeError):
    """Raised when a replica does not fit on the server's disk."""


class DataServer:
    """One cluster node.

    Attributes:
        server_id: index within the cluster.
        nominal_bandwidth: datasheet outbound link capacity, Mb/s.
        disk_capacity: private storage, Mb.
        disk_throughput: replica copy-in rate, Mb/s (bounds warming).
        holdings: set of video ids with a local replica.
        active: unfinished requests currently assigned here, keyed by
            request id (insertion-ordered for determinism).
        up: False while the server has failed.
        accepting: False while membership keeps the server out of
            admission (joining/warming/draining); streams already here
            keep playing, but no new stream may land — the flag gates
            :meth:`has_slot_for`, so least-loaded picks, DRM chains and
            failover relocation all respect it.
    """

    def __init__(
        self, server_id: int, bandwidth: float, disk_capacity: float
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if disk_capacity < 0:
            raise ValueError(
                f"disk capacity must be >= 0, got {disk_capacity}"
            )
        self.server_id = int(server_id)
        #: Healthy-link datasheet capacity; the effective link composes
        #: this with the calibration weight and any link-fault scale.
        self.nominal_bandwidth = float(bandwidth)
        # The two multiplicative capacity seams.  Calibration (measured
        # vs. datasheet speed) and link degradation (a fault) compose
        # instead of overwriting each other: effective = nominal ×
        # calibration × link.
        self._calibration_scale = 1.0
        self._link_scale = 1.0
        self._effective = self.nominal_bandwidth
        self.disk_capacity = float(disk_capacity)
        self.disk_throughput = DEFAULT_DISK_THROUGHPUT
        self.holdings: Set[int] = set()
        self.storage_used = 0.0
        self.active: Dict[int, Request] = {}
        self.up = True
        self.accepting = True
        # Incrementally maintained sum of active view bandwidths; the
        # admission test runs per arrival per candidate server, so the
        # O(n) recomputation was a measured hot spot.
        self._reserved = 0.0

    # ------------------------------------------------------------------
    # Capacity seams (calibration × link faults)
    # ------------------------------------------------------------------
    def effective_bandwidth(self) -> float:
        """The outbound capacity every policy reads, Mb/s:
        ``nominal × calibration × link-fault scale``."""
        return self._effective

    @property
    def bandwidth(self) -> float:
        """Alias of :meth:`effective_bandwidth` (read-only; mutate via
        :meth:`apply_profile` / :meth:`set_link_scale`)."""
        return self._effective

    def apply_profile(self, profile: "ServerProfile") -> None:
        """Adopt a calibration measurement: the measured bandwidth sets
        the calibration weight, the measured storage and disk throughput
        replace the presets.  Composes with any active link fault."""
        self._calibration_scale = profile.bandwidth / self.nominal_bandwidth
        self._effective = (
            self.nominal_bandwidth * self._calibration_scale * self._link_scale
        )
        self.disk_throughput = float(profile.disk_throughput)
        if profile.storage > 0:
            self.disk_capacity = float(profile.storage)

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------
    def store_replica(self, video: Video) -> None:
        """Place a replica of *video* on this server's disk.

        Raises:
            StorageError: when the disk cannot hold another copy.
        """
        if video.video_id in self.holdings:
            return  # idempotent: at most one replica per server
        if self.storage_used + video.size > self.disk_capacity + EPS_MB:
            free = self.disk_capacity - self.storage_used
            raise StorageError(
                f"server {self.server_id}: replica of video "
                f"{video.video_id} ({video.size:.0f} Mb) exceeds free space "
                f"({free:.0f} Mb free, short by {video.size - free:.0f} Mb)"
            )
        self.holdings.add(video.video_id)
        self.storage_used += video.size

    def drop_replica(self, video: Video) -> None:
        """Remove a replica (used by dynamic placement extensions)."""
        if video.video_id in self.holdings:
            self.holdings.remove(video.video_id)
            self.storage_used -= video.size

    def holds(self, video_id: int) -> bool:
        """True when a replica of *video_id* is on local disk."""
        return video_id in self.holdings

    @property
    def storage_free(self) -> float:
        """Unused disk, Mb."""
        return max(0.0, self.disk_capacity - self.storage_used)

    def can_store(self, video: Video) -> bool:
        """True if a replica of *video* would fit (and isn't already here)."""
        if video.video_id in self.holdings:
            return False
        return self.storage_used + video.size <= self.disk_capacity + EPS_MB

    # ------------------------------------------------------------------
    # Bandwidth / admission
    # ------------------------------------------------------------------
    @property
    def active_count(self) -> int:
        """Number of unfinished streams assigned here."""
        return len(self.active)

    @property
    def reserved_bandwidth(self) -> float:
        """Sum of view bandwidths of unfinished streams (the minimum-flow
        floor), Mb/s.  Maintained incrementally by attach/detach."""
        return self._reserved

    @property
    def spare_bandwidth(self) -> float:
        """Link capacity beyond the minimum-flow floor, Mb/s."""
        return max(0.0, self.bandwidth - self.reserved_bandwidth)

    def stream_slots(self, view_bandwidth: float) -> int:
        """Server-to-view bandwidth ratio (SVBR): concurrent streams this
        link sustains at the given view rate."""
        return int(self.bandwidth / view_bandwidth + 1e-9)

    def has_slot_for(self, request: Request) -> bool:
        """Minimum-flow admission test for *request* on this server."""
        if not self.up or not self.accepting:
            return False
        return (
            self.reserved_bandwidth + request.view_bandwidth
            <= self.bandwidth + EPS_MB
        )

    # ------------------------------------------------------------------
    # Active set management (called by the transmission manager)
    # ------------------------------------------------------------------
    def attach(self, request: Request) -> None:
        """Add an unfinished stream to this server."""
        if request.request_id in self.active:
            raise ValueError(
                f"request {request.request_id} already on server {self.server_id}"
            )
        if not self.holds(request.video.video_id):
            raise ValueError(
                f"server {self.server_id} holds no replica of video "
                f"{request.video.video_id}"
            )
        self.active[request.request_id] = request
        self._reserved += request.view_bandwidth
        request.server_id = self.server_id

    def detach(self, request: Request) -> None:
        """Remove a stream (finished, migrated away, or dropped)."""
        if self.active.pop(request.request_id, None) is None:
            raise ValueError(
                f"request {request.request_id} not on server {self.server_id}"
            )
        self._reserved -= request.view_bandwidth
        if self._reserved < 0.0:  # float guard; exact for uniform rates
            self._reserved = 0.0

    def iter_active(self) -> Iterable[Request]:
        """Unfinished streams in deterministic (insertion) order."""
        return self.active.values()

    def migratable_requests(self) -> List[Request]:
        """Streams that could in principle move (unfinished, attached)."""
        return list(self.active.values())

    # ------------------------------------------------------------------
    # Failure model
    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """True while a link-degradation fault is active (independent of
        the calibration weight, which is not a fault)."""
        return self._link_scale < 1.0

    def set_link_scale(self, factor: float) -> None:
        """Scale the outbound link to ``factor`` of its calibrated
        capacity (partial link degradation fault).  ``factor=1``
        restores the healthy link.  The fault composes with the
        calibration weight instead of overwriting it — restoring the
        link lands back on the *calibrated* capacity, not the preset.

        The caller (:class:`repro.core.failover.FailoverManager`) is
        responsible for shedding streams whose minimum-flow floor no
        longer fits — this only moves the capacity number.
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError(
                f"link scale factor must be in (0, 1], got {factor}"
            )
        self._link_scale = float(factor)
        self._effective = (
            self.nominal_bandwidth * self._calibration_scale * self._link_scale
        )

    def fail(self) -> List[Request]:
        """Take the server down; returns (and detaches) its streams."""
        self.up = False
        orphans = list(self.active.values())
        self.active.clear()
        self._reserved = 0.0
        return orphans

    def restore(self) -> None:
        """Bring a failed server back (holdings survive the outage)."""
        self.up = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<DataServer {self.server_id} bw={self.bandwidth:.0f}Mb/s "
            f"active={self.active_count} holdings={len(self.holdings)} "
            f"{'up' if self.up else 'DOWN'}>"
        )
