"""A data server: outbound link, private disk, holdings, active streams.

Servers do **not** share storage (Section 2); a request can only be
served by a server that holds a replica of its video.  The outbound
link is the unit of admission: under the minimum-flow discipline a
server can host an unfinished stream only if the sum of view bandwidths
of its unfinished streams plus the newcomer's fits in the link
(Section 3.3: "a new request can be allocated to a given server if and
only if …").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.cluster.request import EPS_MB, Request
from repro.workload.catalog import Video


class StorageError(RuntimeError):
    """Raised when a replica does not fit on the server's disk."""


class DataServer:
    """One cluster node.

    Attributes:
        server_id: index within the cluster.
        bandwidth: outbound link capacity, Mb/s.
        disk_capacity: private storage, Mb.
        holdings: set of video ids with a local replica.
        active: unfinished requests currently assigned here, keyed by
            request id (insertion-ordered for determinism).
        up: False while the server has failed.
    """

    def __init__(
        self, server_id: int, bandwidth: float, disk_capacity: float
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if disk_capacity < 0:
            raise ValueError(
                f"disk capacity must be >= 0, got {disk_capacity}"
            )
        self.server_id = int(server_id)
        self.bandwidth = float(bandwidth)
        #: Healthy-link capacity; ``bandwidth`` drops below this while a
        #: partial link degradation fault is active.
        self.nominal_bandwidth = float(bandwidth)
        self.disk_capacity = float(disk_capacity)
        self.holdings: Set[int] = set()
        self.storage_used = 0.0
        self.active: Dict[int, Request] = {}
        self.up = True
        # Incrementally maintained sum of active view bandwidths; the
        # admission test runs per arrival per candidate server, so the
        # O(n) recomputation was a measured hot spot.
        self._reserved = 0.0

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------
    def store_replica(self, video: Video) -> None:
        """Place a replica of *video* on this server's disk.

        Raises:
            StorageError: when the disk cannot hold another copy.
        """
        if video.video_id in self.holdings:
            return  # idempotent: at most one replica per server
        if self.storage_used + video.size > self.disk_capacity + EPS_MB:
            raise StorageError(
                f"server {self.server_id}: replica of video "
                f"{video.video_id} ({video.size:.0f} Mb) exceeds free space "
                f"({self.disk_capacity - self.storage_used:.0f} Mb)"
            )
        self.holdings.add(video.video_id)
        self.storage_used += video.size

    def drop_replica(self, video: Video) -> None:
        """Remove a replica (used by dynamic placement extensions)."""
        if video.video_id in self.holdings:
            self.holdings.remove(video.video_id)
            self.storage_used -= video.size

    def holds(self, video_id: int) -> bool:
        """True when a replica of *video_id* is on local disk."""
        return video_id in self.holdings

    @property
    def storage_free(self) -> float:
        """Unused disk, Mb."""
        return max(0.0, self.disk_capacity - self.storage_used)

    def can_store(self, video: Video) -> bool:
        """True if a replica of *video* would fit (and isn't already here)."""
        if video.video_id in self.holdings:
            return False
        return self.storage_used + video.size <= self.disk_capacity + EPS_MB

    # ------------------------------------------------------------------
    # Bandwidth / admission
    # ------------------------------------------------------------------
    @property
    def active_count(self) -> int:
        """Number of unfinished streams assigned here."""
        return len(self.active)

    @property
    def reserved_bandwidth(self) -> float:
        """Sum of view bandwidths of unfinished streams (the minimum-flow
        floor), Mb/s.  Maintained incrementally by attach/detach."""
        return self._reserved

    @property
    def spare_bandwidth(self) -> float:
        """Link capacity beyond the minimum-flow floor, Mb/s."""
        return max(0.0, self.bandwidth - self.reserved_bandwidth)

    def stream_slots(self, view_bandwidth: float) -> int:
        """Server-to-view bandwidth ratio (SVBR): concurrent streams this
        link sustains at the given view rate."""
        return int(self.bandwidth / view_bandwidth + 1e-9)

    def has_slot_for(self, request: Request) -> bool:
        """Minimum-flow admission test for *request* on this server."""
        if not self.up:
            return False
        return (
            self.reserved_bandwidth + request.view_bandwidth
            <= self.bandwidth + EPS_MB
        )

    # ------------------------------------------------------------------
    # Active set management (called by the transmission manager)
    # ------------------------------------------------------------------
    def attach(self, request: Request) -> None:
        """Add an unfinished stream to this server."""
        if request.request_id in self.active:
            raise ValueError(
                f"request {request.request_id} already on server {self.server_id}"
            )
        if not self.holds(request.video.video_id):
            raise ValueError(
                f"server {self.server_id} holds no replica of video "
                f"{request.video.video_id}"
            )
        self.active[request.request_id] = request
        self._reserved += request.view_bandwidth
        request.server_id = self.server_id

    def detach(self, request: Request) -> None:
        """Remove a stream (finished, migrated away, or dropped)."""
        if self.active.pop(request.request_id, None) is None:
            raise ValueError(
                f"request {request.request_id} not on server {self.server_id}"
            )
        self._reserved -= request.view_bandwidth
        if self._reserved < 0.0:  # float guard; exact for uniform rates
            self._reserved = 0.0

    def iter_active(self) -> Iterable[Request]:
        """Unfinished streams in deterministic (insertion) order."""
        return self.active.values()

    def migratable_requests(self) -> List[Request]:
        """Streams that could in principle move (unfinished, attached)."""
        return list(self.active.values())

    # ------------------------------------------------------------------
    # Failure model
    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """True while the outbound link runs below nominal capacity."""
        return self.bandwidth < self.nominal_bandwidth

    def set_link_scale(self, factor: float) -> None:
        """Scale the outbound link to ``factor * nominal`` (partial link
        degradation fault).  ``factor=1`` restores the healthy link.

        The caller (:class:`repro.core.failover.FailoverManager`) is
        responsible for shedding streams whose minimum-flow floor no
        longer fits — this only moves the capacity number.
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError(
                f"link scale factor must be in (0, 1], got {factor}"
            )
        self.bandwidth = self.nominal_bandwidth * factor

    def fail(self) -> List[Request]:
        """Take the server down; returns (and detaches) its streams."""
        self.up = False
        orphans = list(self.active.values())
        self.active.clear()
        self._reserved = 0.0
        return orphans

    def restore(self) -> None:
        """Bring a failed server back (holdings survive the outage)."""
        self.up = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<DataServer {self.server_id} bw={self.bandwidth:.0f}Mb/s "
            f"active={self.active_count} holdings={len(self.holdings)} "
            f"{'up' if self.up else 'DOWN'}>"
        )
