"""The distribution controller: front door of the cluster (Section 2).

"A central distribution controller (DC) governs the operation of the
data sources within the cluster.  When a request to view a particular
video arrives in the system, the distribution controller must decide
whether or not to accept the incoming request based on current resource
allocation."

This class wires together the servers, their transmission managers, the
admission controller and the metrics for one simulation run, and is the
object workload generators talk to.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.analysis.metrics import SimulationMetrics
from repro.cluster.request import Request, RequestState
from repro.cluster.server import DataServer
from repro.core.admission import AdmissionController, AdmissionOutcome
from repro.core.migration import MigrationPolicy
from repro.core.schedulers import BandwidthAllocator
from repro.core.transmission import TransmissionManager
from repro.obs.records import TraceKind
from repro.obs.tracer import Tracer
from repro.placement.base import PlacementMap
from repro.sim.engine import Engine
from repro.workload.catalog import VideoCatalog


class DistributionController:
    """Admission front-end plus per-run bookkeeping.

    Args:
        engine: the simulation engine.
        servers: cluster nodes (holdings already populated by placement).
        catalog: the video catalog.
        placement: the static replica map.
        client_profile: capabilities assumed for every client; pass a
            callable ``(video_id) -> ClientProfile`` for heterogeneous
            client populations.
        allocator: spare-bandwidth policy shared by all servers.
        migration_policy: DRM configuration.
        metrics: optional pre-built metrics object (a fresh one is
            created by default).
        tracer: optional :class:`repro.obs.tracer.Tracer`; when given,
            request-lifecycle, server and scheduler records are emitted
            from every layer (zero overhead when None).
    """

    def __init__(
        self,
        engine: Engine,
        servers: List[DataServer],
        catalog: VideoCatalog,
        placement: PlacementMap,
        client_profile,
        allocator: BandwidthAllocator,
        migration_policy: MigrationPolicy,
        metrics: Optional[SimulationMetrics] = None,
        admission_mode: str = "minflow",
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.engine = engine
        self.catalog = catalog
        self.placement = placement
        self.metrics = metrics if metrics is not None else SimulationMetrics()
        self.tracer = tracer
        if callable(client_profile):
            self._profile_for = client_profile
        else:
            self._profile_for = lambda video_id: client_profile

        self.servers: Dict[int, DataServer] = {
            s.server_id: s for s in servers
        }
        self.managers: Dict[int, TransmissionManager] = {
            s.server_id: TransmissionManager(
                engine, s, allocator, self.metrics,
                on_finish=self._on_finish, tracer=tracer,
            )
            for s in servers
        }
        #: The shared allocator instance — kept so elastic scale-out can
        #: wire a mid-run joiner's TransmissionManager identically.
        self._allocator = allocator
        self._allocator_name = allocator.name
        if tracer is not None:
            allocator.obs_hook = self._on_allocate
        park_seconds = getattr(allocator, "park_seconds", 120.0)
        self.admission = AdmissionController(
            self.servers,
            self.managers,
            placement,
            migration_policy,
            self.metrics,
            mode=admission_mode,
            park_seconds=park_seconds,
            tracer=tracer,
        )
        registry = self.metrics.registry
        if registry is not None:
            registry.gauge("streams.active", supplier=lambda: self.active_count)
        #: Completed requests kept for post-run analysis (finished or
        #: dropped); rejected requests are only counted.
        self.completed: List[Request] = []
        #: Optional prefix-cache / stream-sharing tier
        #: (:class:`repro.prefix.PrefixTier`).  When set, fresh arrivals
        #: are offered to the tier before normal admission: a chained
        #: admission short-circuits the pipeline, a patch admission
        #: falls through with a truncated transfer.
        self.prefix_tier = None
        #: Per-admission observers ``(outcome, request)`` — used by the
        #: dynamic replicator, tests and trace tooling.  Append freely;
        #: hooks run in order after each decision.
        self.decision_hooks: List[
            Callable[[AdmissionOutcome, Request], None]
        ] = []

    def add_server(self, server: DataServer) -> None:
        """Wire a mid-run joiner into the cluster (elastic scale-out).

        The controller's ``servers``/``managers`` dicts are shared *by
        reference* with the admission controller and any failover
        manager, so registering here makes the joiner visible to every
        layer at once.  The caller (the elastic scaler) is responsible
        for lifecycle gating via ``server.accepting``.
        """
        sid = server.server_id
        if sid in self.servers:
            raise ValueError(f"server {sid} already in the cluster")
        self.servers[sid] = server
        self.managers[sid] = TransmissionManager(
            self.engine, server, self._allocator, self.metrics,
            on_finish=self._on_finish, tracer=self.tracer,
        )

    @property
    def on_decision(self):
        """Back-compat single-observer view of :attr:`decision_hooks`."""
        return self.decision_hooks[0] if self.decision_hooks else None

    @on_decision.setter
    def on_decision(self, hook) -> None:
        self.decision_hooks.append(hook)

    # ------------------------------------------------------------------
    def submit(self, video_id: int) -> AdmissionOutcome:
        """Handle one arriving request for *video_id* at the current time."""
        now = self.engine.now
        video = self.catalog[video_id]
        request = Request(
            video=video,
            client=self._profile_for(video_id),
            arrival_time=now,
        )
        if self.tracer is not None:
            self.tracer.emit(
                TraceKind.REQUEST_ARRIVE, now,
                request=request.request_id, video=video_id,
            )
        if self.prefix_tier is not None:
            chained = self.prefix_tier.intercept(request, now)
            if chained is not None:
                self._after_decision(chained, request, now)
                return chained
        outcome = self.admission.submit(request, now)
        self._after_decision(outcome, request, now)
        return outcome

    def resubmit(self, request: Request) -> AdmissionOutcome:
        """Re-run admission for a retry-queue resubmission.

        The caller (:class:`repro.faults.retry.RetryQueue`) has already
        reset the request via :meth:`Request.prepare_retry`.  Every
        attempt counts as an arrival, is traced like one, and runs the
        decision hooks — so a re-rejection flows straight back into the
        retry queue's own hook.
        """
        now = self.engine.now
        if self.tracer is not None:
            self.tracer.emit(
                TraceKind.REQUEST_ARRIVE, now,
                request=request.request_id, video=request.video.video_id,
            )
        outcome = self.admission.submit(request, now, retry=True)
        self._after_decision(outcome, request, now)
        return outcome

    def _after_decision(
        self, outcome: AdmissionOutcome, request: Request, now: float
    ) -> None:
        """Shared post-admission tracing + decision hooks."""
        if self.tracer is not None:
            if outcome.accepted:
                self.tracer.emit(
                    TraceKind.REQUEST_ADMIT, now,
                    request=request.request_id,
                    video=request.video.video_id,
                    server=request.server_id,
                    migrated=(
                        outcome is AdmissionOutcome.ACCEPTED_WITH_MIGRATION
                    ),
                )
            else:
                self.tracer.emit(
                    TraceKind.REQUEST_REJECT, now,
                    request=request.request_id,
                    video=request.video.video_id,
                    reason=(
                        "no_replica"
                        if outcome is AdmissionOutcome.REJECTED_NO_REPLICA
                        else "saturated"
                    ),
                )
        for hook in self.decision_hooks:
            hook(outcome, request)

    def _on_finish(self, request: Request) -> None:
        self.metrics.record_finish()
        self.completed.append(request)
        now = self.engine.now
        registry = self.metrics.registry
        if registry is not None:
            # Buffer occupancy at transmission finish, in seconds of
            # playback banked — the quantity client staging exists to
            # maximise (Section 3.3's workahead).
            registry.histogram("client.buffer_at_finish_seconds").observe(
                request.buffer_occupancy(now) / request.view_bandwidth
            )
        if self.tracer is not None:
            self.tracer.emit(
                TraceKind.REQUEST_FINISH, now,
                request=request.request_id, server=request.server_id,
            )
        if self.prefix_tier is not None:
            self.prefix_tier.on_stream_finish(request, now)

    def _on_allocate(self, server, requests, rates, now: float) -> None:
        """Allocator obs hook: one ``sched.realloc`` record per pass."""
        boosted = 0
        for r in requests:
            if rates[r.request_id] > r.view_bandwidth:
                boosted += 1
        self.tracer.emit(
            TraceKind.SCHED_REALLOC, now,
            server=server.server_id, allocator=self._allocator_name,
            streams=len(rates), boosted=boosted,
        )

    # ------------------------------------------------------------------
    @property
    def active_count(self) -> int:
        """Unfinished streams cluster-wide."""
        return sum(s.active_count for s in self.servers.values())

    def total_bandwidth(self) -> float:
        """Cluster egress capacity, Mb/s (failed servers included — a
        down node still counts against the utilization denominator)."""
        return sum(s.bandwidth for s in self.servers.values())

    def finalize(self, now: float) -> None:
        """Flush all in-flight transfer accounting at end of run and run
        the metrics consistency checks."""
        for manager in self.managers.values():
            manager.flush(now)
        self.metrics.sanity_check()

    def check_invariants(self) -> None:
        """Assert structural invariants (tests call this liberally).

        * every active stream's server holds its video;
        * per-server minimum-flow floors fit the links (minimum-flow
          allocators only — overbooked intermittent servers may carry
          more than their SVBR by design);
        * active streams are in state ACTIVE.
        """
        for server in self.servers.values():
            minimum_flow = self.managers[server.server_id].allocator.minimum_flow
            floor = 0.0
            for request in server.iter_active():
                if not server.holds(request.video.video_id):
                    raise AssertionError(
                        f"request {request.request_id} on server "
                        f"{server.server_id} without a replica"
                    )
                if request.state is not RequestState.ACTIVE:
                    raise AssertionError(
                        f"non-active request {request.request_id} attached"
                    )
                if request.server_id != server.server_id:
                    raise AssertionError(
                        f"request {request.request_id} server_id out of sync"
                    )
                floor += request.view_bandwidth
            if minimum_flow and floor > server.bandwidth + 1e-6:
                raise AssertionError(
                    f"server {server.server_id} over-committed: "
                    f"{floor} > {server.bandwidth}"
                )
