"""Generic typed plugin registries (docs/ARCHITECTURE.md).

Every pluggable family in the codebase — bandwidth allocators,
placement policies, arrival processes, system presets, experiments —
is published through a :class:`Registry` instead of an ad-hoc module
dict.  A registry is a small, uniform contract:

* ``register(name, obj, help=...)`` — add an entry (usable as a
  decorator); duplicate names raise :class:`DuplicateKeyError` so two
  plugins cannot silently shadow each other.
* ``get(name)`` — look an entry up; unknown names raise
  :class:`UnknownKeyError`, whose message names the bad key *and* every
  valid choice (a bare ``KeyError: 'eftc'`` helps nobody at a CLI).
* ``names()`` / ``describe()`` — enumerate the registered names
  (sorted) and their one-line help texts, which is how the CLI builds
  its choice lists and help screens without hand-maintained tuples.

Registries preserve **registration order** for iteration (``list(reg)``,
``items()``, ``values()``) because some consumers are order-sensitive
(the P1–P8 policy matrix renders in matrix order), while ``names()`` is
sorted for stable user-facing listings.

:class:`UnknownKeyError` subclasses both :class:`KeyError` and
:class:`ValueError`: lookup sites historically raised one or the other,
and callers that catch either keep working.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

T = TypeVar("T")


class RegistryError(Exception):
    """Base class for registry failures."""


class UnknownKeyError(RegistryError, KeyError, ValueError):
    """Lookup of a name that is not registered.

    ``str()`` is a complete, printable diagnostic (plain ``KeyError``
    would repr-mangle it): the registry kind, the offending name, and
    the sorted valid choices.
    """

    def __init__(self, kind: str, name: object, choices: Tuple[str, ...]) -> None:
        self.kind = kind
        self.name = name
        self.choices = choices
        super().__init__(name)

    def __str__(self) -> str:
        if not self.choices:
            return f"unknown {self.kind} {self.name!r} (no {self.kind}s registered)"
        return (
            f"unknown {self.kind} {self.name!r}; "
            f"choose from: {', '.join(self.choices)}"
        )


class DuplicateKeyError(RegistryError, ValueError):
    """Registration under a name that is already taken."""

    def __init__(self, kind: str, name: str) -> None:
        self.kind = kind
        self.name = name
        super().__init__(f"{kind} {name!r} is already registered")


class Registry(Generic[T]):
    """An ordered name → entry mapping with actionable lookup errors.

    Args:
        kind: what one entry is called in error messages and help
            output (``"scheduler"``, ``"placement"``, ``"experiment"``).

    The mapping surface (``[]``, ``in``, ``len``, iteration, ``items``,
    ``values``, ``keys``) matches a plain dict so existing call sites
    keep working; lookups additionally raise :class:`UnknownKeyError`
    listing the valid names.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, T] = {}
        self._help: Dict[str, str] = {}

    # -- registration --------------------------------------------------
    def register(
        self,
        name: str,
        obj: Optional[T] = None,
        *,
        help: str = "",
        replace: bool = False,
    ):
        """Register *obj* under *name*; usable as a decorator.

        Direct form::

            ALLOCATORS.register("eftf", EFTFAllocator, help="...")

        Decorator form (registers the decorated object unchanged)::

            @ALLOCATORS.register("eftf", help="...")
            class EFTFAllocator: ...

        Args:
            name: registry key (the user-facing spelling).
            obj: the entry; omit to use as a decorator.
            help: one-line description surfaced by :meth:`describe`.
            replace: allow overwriting an existing entry (tests and
                plugin overrides); default False raises
                :class:`DuplicateKeyError` on collision.

        Returns:
            *obj* (so the decorator form is transparent).
        """
        if obj is None:
            def _decorator(target: T) -> T:
                self.register(name, target, help=help, replace=replace)
                return target

            return _decorator
        if not replace and name in self._entries:
            raise DuplicateKeyError(self.kind, name)
        self._entries[name] = obj
        self._help[name] = help
        return obj

    def unregister(self, name: str) -> T:
        """Remove and return the entry under *name* (tests, plugins)."""
        entry = self.get(name)
        del self._entries[name]
        del self._help[name]
        return entry

    # -- lookup --------------------------------------------------------
    def get(self, name: str) -> T:
        """Return the entry for *name*.

        Raises:
            UnknownKeyError: naming the bad key and the valid choices.
        """
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownKeyError(self.kind, name, self.names()) from None

    def help_for(self, name: str) -> str:
        """The one-line help text registered with *name*."""
        self.get(name)  # raise the actionable error for unknown names
        return self._help[name]

    # -- enumeration ---------------------------------------------------
    def names(self) -> Tuple[str, ...]:
        """All registered names, sorted (for stable user-facing lists)."""
        return tuple(sorted(self._entries))

    def describe(self) -> Dict[str, str]:
        """Name → help text, in registration order."""
        return dict(self._help)

    # -- dict-compatible surface ---------------------------------------
    __getitem__ = get

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        """Iterate names in registration order (like a dict)."""
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> List[str]:
        return list(self._entries)

    def values(self) -> List[T]:
        return list(self._entries.values())

    def items(self) -> List[Tuple[str, T]]:
        return list(self._entries.items())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Registry kind={self.kind!r} names={list(self._entries)}>"
