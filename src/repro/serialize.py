"""Shared helpers for config ``to_dict()``/``from_dict()`` round trips.

Every configuration dataclass (``SimulationConfig`` and its nested
parts) serializes to plain JSON-compatible dicts so a run can be
captured as a *scenario file* (:mod:`repro.scenario`) and embedded
verbatim in provenance sidecars.  The contract, enforced by property
tests:

* ``Cls.from_dict(cfg.to_dict()) == cfg`` for every valid config;
* ``from_dict`` accepts **partial** dicts (missing keys fall back to
  the dataclass defaults) so hand-written scenario files stay terse;
* unknown keys raise an actionable :class:`ValueError` naming the bad
  key and the valid field names — a typo in a scenario file must not
  silently vanish.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Mapping, Optional, Type


def check_fields(
    cls: Type, data: Mapping[str, Any], *, extra: tuple = ()
) -> None:
    """Reject keys of *data* that are not fields of dataclass *cls*.

    Args:
        cls: the target dataclass.
        data: the incoming dict.
        extra: additionally accepted keys (e.g. ``"preset"``).

    Raises:
        ValueError: naming every unknown key and the valid choices.
    """
    valid = {f.name for f in dataclasses.fields(cls)} | set(extra)
    unknown = sorted(set(data) - valid)
    if unknown:
        keys = ", ".join(repr(k) for k in unknown)
        raise ValueError(
            f"unknown {cls.__name__} key(s) {keys}; "
            f"valid keys: {', '.join(sorted(valid))}"
        )


def require(data: Mapping[str, Any], key: str, cls: Type) -> Any:
    """Fetch a mandatory *key*, failing with the owning class named."""
    try:
        return data[key]
    except KeyError:
        raise ValueError(
            f"{cls.__name__} dict is missing required key {key!r}"
        ) from None


def optional_nested(
    data: Mapping[str, Any], key: str, cls: Type
) -> Optional[Any]:
    """Deserialize ``data[key]`` via ``cls.from_dict`` when present and
    not None."""
    value = data.get(key)
    if value is None:
        return None
    if not isinstance(value, Mapping):
        raise ValueError(
            f"{key!r} must be a mapping (a serialized {cls.__name__}), "
            f"got {type(value).__name__}"
        )
    return cls.from_dict(value)


def shallow_dict(obj: Any) -> Dict[str, Any]:
    """Dataclass fields as a dict, tuples converted to JSON lists.

    Shallow on purpose: nested config dataclasses serialize themselves
    via their own ``to_dict`` — callers replace those keys explicitly.
    """
    out: Dict[str, Any] = {}
    for field in dataclasses.fields(obj):
        value = getattr(obj, field.name)
        if isinstance(value, tuple):
            value = [list(v) if isinstance(v, tuple) else v for v in value]
        out[field.name] = value
    return out
