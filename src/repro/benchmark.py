"""Performance benchmark harness (``repro-vod bench``).

Two measurements, written to ``BENCH_perf.json`` so successive PRs
accumulate a perf trajectory:

* **engine microbenchmark** — raw events/sec of the DES core on a
  self-perpetuating event chain interleaved with cancelled handles
  (exercising both the fire path and the lazy-cancellation skip path);
* **sweep benchmark** — wall time of a Figure-4-shaped
  (θ × variant × trial) sweep executed serially (``REPRO_WORKERS=1``)
  versus through the grid-level parallel executor, with the
  bit-identity of the two results asserted (the determinism gate).

Timing numbers are machine-dependent — compare them only against runs
on the same hardware (``cpu_count`` is recorded for that reason).  The
identity flag, in contrast, must always be true.
"""

from __future__ import annotations

import contextlib
import json
import os
from time import perf_counter
from typing import Callable, Dict, List, Optional

from repro.cluster.system import SMALL_SYSTEM
from repro.experiments import fig4_drm
from repro.experiments.base import THETA_GRID_COARSE
from repro.obs.provenance import run_provenance
from repro.sim.engine import Engine

#: Default output path (repo root when invoked from a checkout).
DEFAULT_OUT = "BENCH_perf.json"

#: Events per engine-microbenchmark repetition.
ENGINE_EVENTS = 200_000

#: Fidelity of the sweep benchmark (matches REPRO_BENCH_SCALE's
#: default, so the sweep leg mirrors the committed bench artifacts).
SWEEP_SCALE = 0.003
QUICK_SWEEP_SCALE = 0.001


@contextlib.contextmanager
def _workers_env(value: Optional[int]):
    """Temporarily pin (or clear) ``REPRO_WORKERS``."""
    saved = os.environ.get("REPRO_WORKERS")
    if value is None:
        os.environ.pop("REPRO_WORKERS", None)
    else:
        os.environ["REPRO_WORKERS"] = str(value)
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop("REPRO_WORKERS", None)
        else:
            os.environ["REPRO_WORKERS"] = saved


def engine_benchmark(
    n_events: int = ENGINE_EVENTS, repeats: int = 3
) -> Dict[str, float]:
    """Measure raw engine throughput (best of *repeats*).

    The workload is a single self-rescheduling chain with one cancelled
    handle per ten live events, so the measured loop covers scheduling,
    heap maintenance, firing and the lazy-cancellation skip — the same
    mix a simulation produces, minus model arithmetic.
    """
    best = 0.0
    for _ in range(repeats):
        engine = Engine()
        remaining = [n_events]

        def tick() -> None:
            remaining[0] -= 1
            if remaining[0] > 0:
                engine.schedule(1.0, tick)
                if remaining[0] % 10 == 0:
                    engine.schedule(0.5, tick).cancel()

        engine.schedule(1.0, tick)
        t0 = perf_counter()
        engine.run_until(float(n_events + 1))
        elapsed = perf_counter() - t0
        best = max(best, n_events / elapsed)
    return {
        "events": n_events,
        "repeats": repeats,
        "events_per_sec": round(best, 1),
    }


def sweep_benchmark(
    quick: bool = False,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Time a fig4-shaped sweep serially vs through the parallel
    executor and assert the two results are bit-identical."""
    if quick:
        system = SMALL_SYSTEM.scaled(n_videos=60, name="bench-tiny")
        theta_values: List[float] = [-0.5, 0.5]
        scale = QUICK_SWEEP_SCALE
    else:
        system = SMALL_SYSTEM
        theta_values = list(THETA_GRID_COARSE)
        scale = SWEEP_SCALE

    def leg(workers: Optional[int]):
        with _workers_env(workers):
            t0 = perf_counter()
            result = fig4_drm.run_fig4(
                system=system, theta_values=theta_values,
                scale=scale, seed=seed,
            )
            return result, perf_counter() - t0

    if progress is not None:
        progress("bench: serial sweep leg (REPRO_WORKERS=1) ...")
    serial, serial_s = leg(1)
    # At least two workers so the pool path is exercised even on a
    # single-core machine (where the "speedup" is honestly <= 1).
    workers = max(2, os.cpu_count() or 1)
    if progress is not None:
        progress(f"bench: parallel sweep leg ({workers} workers) ...")
    parallel, parallel_s = leg(workers)

    identical = serial.curves == parallel.curves
    return {
        "shape": {
            "figure": "fig4",
            "system": system.name,
            "x_values": theta_values,
            "variants": sorted(serial.curves),
            "scale": scale,
            "trials": serial.scale.trials,
            "tasks": len(theta_values) * len(serial.curves)
            * serial.scale.trials,
        },
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "parallel_workers": workers,
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
        "identical": identical,
    }


def run_bench(
    quick: bool = False,
    out: Optional[str] = DEFAULT_OUT,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run both benchmarks; write *out* (unless None) and return the
    report dict."""
    if progress is not None:
        progress("bench: engine microbenchmark ...")
    engine = engine_benchmark(
        n_events=ENGINE_EVENTS // 4 if quick else ENGINE_EVENTS
    )
    sweep = sweep_benchmark(quick=quick, seed=seed, progress=progress)
    report: Dict[str, object] = {
        "schema": "repro-bench-perf/1",
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "engine": engine,
        "sweep": sweep,
        "provenance": run_provenance(seed=seed, scale=sweep["shape"]["scale"]),
    }
    if out:
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=False)
            fh.write("\n")
    return report


def render_report(report: Dict[str, object]) -> str:
    """Human summary of a :func:`run_bench` report."""
    engine = report["engine"]
    sweep = report["sweep"]
    lines = [
        f"engine: {engine['events_per_sec']:,.0f} events/sec "
        f"({engine['events']} events, best of {engine['repeats']})",
        f"sweep ({sweep['shape']['figure']}, {sweep['shape']['system']} "
        f"system, {sweep['shape']['tasks']} tasks): "
        f"serial {sweep['serial_seconds']:.2f}s vs parallel "
        f"{sweep['parallel_seconds']:.2f}s "
        f"on {sweep['parallel_workers']} workers "
        f"-> speedup {sweep['speedup']:.2f}x "
        f"(cpu_count={report['cpu_count']})",
        f"serial/parallel results identical: {sweep['identical']}",
    ]
    return "\n".join(lines)
