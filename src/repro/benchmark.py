"""Performance benchmark harness (``repro-vod bench``).

Three measurements, written to ``BENCH_perf.json`` (schema
``repro-bench-perf/2``) so successive PRs accumulate a perf trajectory:

* **engine microbenchmark** — raw events/sec of the DES core on a
  self-perpetuating event chain interleaved with cancelled handles
  (exercising both the fire path and the lazy-cancellation skip path);
* **scheduler microbenchmark** — push/pop throughput of each agenda
  implementation (heap vs calendar queue) at several queue depths,
  pinning down the depth crossover between the two;
* **sweep benchmark** — wall time of a Figure-4-shaped
  (θ × variant × trial) sweep executed serially (``REPRO_WORKERS=1``)
  versus through the chunked parallel executor on a pre-warmed
  persistent pool, with the bit-identity of the two results asserted
  (the determinism gate).  On hosts with fewer than two usable CPUs
  the timing comparison would only measure process-spawn overhead, so
  it is skipped (``"skipped": "cpu_count<2"``) — the 2-worker identity
  leg still runs so the determinism gate never goes dark.

Timing numbers are machine-dependent — compare them only against runs
on the same hardware (``cpu_count`` — logical CPUs — and
``cpu_usable`` — the affinity mask, what a cgroup-limited CI runner
actually gets — are recorded for that reason; ``repro bench
--compare`` automates the comparison).  The identity flag, in
contrast, must always be true.
"""

from __future__ import annotations

import contextlib
import json
import os
import random
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.system import SMALL_SYSTEM
from repro.experiments import fig4_drm
from repro.experiments.base import THETA_GRID_COARSE, warm_pool
from repro.obs.provenance import run_provenance
from repro.sim.engine import Engine
from repro.sim.scheduler import SCHEDULERS

#: Default output path (repo root when invoked from a checkout).
DEFAULT_OUT = "BENCH_perf.json"

#: Current report schema.  /2 added ``cpu_usable``, the ``scheduler``
#: section, per-scheduler engine naming, and the sweep skip field.
SCHEMA = "repro-bench-perf/2"

#: Events per engine-microbenchmark repetition.
ENGINE_EVENTS = 200_000

#: Queue depths probed by the scheduler microbenchmark — shallow (a
#: typical per-server agenda), mid, and deep (where the calendar queue
#: overtakes the heap's O(log n) sift).
SCHEDULER_DEPTHS = (256, 4096, 32768)

#: Push/pop pairs per scheduler-microbenchmark measurement.
SCHEDULER_OPS = 100_000

#: Fidelity of the sweep benchmark (matches REPRO_BENCH_SCALE's
#: default, so the sweep leg mirrors the committed bench artifacts).
SWEEP_SCALE = 0.003
QUICK_SWEEP_SCALE = 0.001

#: Engine events/sec drop (vs a baseline report) that ``--compare``
#: treats as a regression.
REGRESSION_THRESHOLD = 0.20


def usable_cpus() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count`` reports the host's logical CPUs even when a
    cgroup / affinity mask (CI runners, containers) restricts the
    process to fewer — which made single-core "parallel" benches look
    like regressions.  Prefers the affinity mask where the platform
    exposes it.
    """
    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0)) or 1
        except OSError:  # pragma: no cover - platform quirk
            pass
    return os.cpu_count() or 1


@contextlib.contextmanager
def _workers_env(value: Optional[int]):
    """Temporarily pin (or clear) ``REPRO_WORKERS``."""
    saved = os.environ.get("REPRO_WORKERS")
    if value is None:
        os.environ.pop("REPRO_WORKERS", None)
    else:
        os.environ["REPRO_WORKERS"] = str(value)
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop("REPRO_WORKERS", None)
        else:
            os.environ["REPRO_WORKERS"] = saved


def engine_benchmark(
    n_events: int = ENGINE_EVENTS,
    repeats: int = 3,
    scheduler: Optional[str] = None,
) -> Dict[str, object]:
    """Measure raw engine throughput (best of *repeats*).

    The workload is a single self-rescheduling chain with one cancelled
    handle per ten live events, so the measured loop covers scheduling,
    agenda maintenance, firing and the lazy-cancellation skip — the
    same mix a simulation produces, minus model arithmetic.

    Args:
        n_events: live events per repetition.
        repeats: measurement repetitions (best is reported).
        scheduler: agenda registry key (``"heap"``/``"calendar"``);
            None follows ``REPRO_SCHEDULER`` / the heap default.
    """
    name = scheduler or os.environ.get("REPRO_SCHEDULER", "heap")
    best = 0.0
    for _ in range(repeats):
        engine = Engine(scheduler=name)
        remaining = [n_events]

        def tick() -> None:
            remaining[0] -= 1
            if remaining[0] > 0:
                engine.schedule(1.0, tick)
                if remaining[0] % 10 == 0:
                    engine.schedule(0.5, tick).cancel()

        engine.schedule(1.0, tick)
        t0 = perf_counter()
        engine.run_until(float(n_events + 1))
        elapsed = perf_counter() - t0
        best = max(best, n_events / elapsed)
    return {
        "events": n_events,
        "repeats": repeats,
        "scheduler": name,
        "events_per_sec": round(best, 1),
    }


def scheduler_benchmark(
    depths=SCHEDULER_DEPTHS, ops: int = SCHEDULER_OPS, repeats: int = 3
) -> Dict[str, object]:
    """Push/pop throughput of each registered agenda at several depths.

    The classic *hold* workload: pre-fill the queue to *depth*, then
    repeatedly pop the minimum and push a replacement a random offset
    later, keeping the depth constant — the steady state a long
    simulation puts its agenda in.  Offsets come from a fixed-seed RNG
    so every scheduler (and every run) sees the identical sequence, and
    scale with depth so the agenda spans a time window proportional to
    its size — the regime deep agendas occur in (many event sources
    spread across the horizon; depth-N entries packed into a constant
    window would degenerate any bucketed structure, and time values
    don't affect the heap's comparisons either way).

    Returns one row per depth with ``<name>_ops_per_sec`` for every
    registered scheduler (an "op" is one pop+push pair).
    """
    rows: List[Dict[str, object]] = []
    for depth in depths:
        row: Dict[str, object] = {"depth": depth}
        for name in sorted(SCHEDULERS.names()):
            cls = SCHEDULERS.get(name)
            spread = depth / 8.0
            offsets = [
                o * spread
                for o in random.Random(12345).choices(
                    [0.5, 1.0, 1.7, 2.3, 5.0], k=1024
                )
            ]
            best = 0.0
            for _ in range(repeats):
                sched = cls()
                seq = 0
                for i in range(depth):
                    seq += 1
                    sched.push((offsets[i % 1024] * i / depth, seq, None))
                t0 = perf_counter()
                for i in range(ops):
                    t, _, _ = sched.pop()
                    seq += 1
                    sched.push((t + offsets[i % 1024], seq, None))
                elapsed = perf_counter() - t0
                best = max(best, ops / elapsed)
            row[f"{name}_ops_per_sec"] = round(best, 1)
        rows.append(row)
    return {"ops": ops, "repeats": repeats, "results": rows}


def sweep_benchmark(
    quick: bool = False,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Time a fig4-shaped sweep serially vs through the parallel
    executor and assert the two results are bit-identical."""
    if quick:
        system = SMALL_SYSTEM.scaled(n_videos=60, name="bench-tiny")
        theta_values: List[float] = [-0.5, 0.5]
        scale = QUICK_SWEEP_SCALE
    else:
        system = SMALL_SYSTEM
        theta_values = list(THETA_GRID_COARSE)
        scale = SWEEP_SCALE

    def leg(workers: Optional[int]):
        with _workers_env(workers):
            t0 = perf_counter()
            result = fig4_drm.run_fig4(
                system=system, theta_values=theta_values,
                scale=scale, seed=seed,
            )
            return result, perf_counter() - t0

    if progress is not None:
        progress("bench: serial sweep leg (REPRO_WORKERS=1) ...")
    serial, serial_s = leg(1)

    usable = usable_cpus()
    report: Dict[str, object] = {
        "shape": {
            "figure": "fig4",
            "system": system.name,
            "x_values": theta_values,
            "variants": sorted(serial.curves),
            "scale": scale,
            "trials": serial.scale.trials,
            "tasks": len(theta_values) * len(serial.curves)
            * serial.scale.trials,
        },
        "serial_seconds": round(serial_s, 3),
    }
    if usable < 2:
        # A timing comparison here would only measure process-spawn
        # overhead and read as a phantom regression.  Skip the timing,
        # but still run a 2-worker leg so the serial≡parallel
        # determinism gate is exercised even on one core.
        if progress is not None:
            progress(
                "bench: parallel timing skipped (1 usable CPU); "
                "running 2-worker identity leg ..."
            )
        warm_pool(2)
        parallel, _ = leg(2)
        report.update(
            parallel_seconds=None,
            parallel_workers=2,
            speedup=None,
            skipped="cpu_count<2",
        )
    else:
        workers = usable
        if progress is not None:
            progress(f"bench: parallel sweep leg ({workers} workers) ...")
        # Warm the persistent pool first: the measurement is
        # steady-state sweep throughput, not one-time worker start-up
        # (the pool is reused across sweeps within a process).
        with _workers_env(workers):
            warm_pool(workers)
        parallel, parallel_s = leg(workers)
        report.update(
            parallel_seconds=round(parallel_s, 3),
            parallel_workers=workers,
            speedup=(
                round(serial_s / parallel_s, 3) if parallel_s else None
            ),
        )
    report["identical"] = serial.curves == parallel.curves
    return report


def run_bench(
    quick: bool = False,
    out: Optional[str] = DEFAULT_OUT,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run both benchmarks; write *out* (unless None) and return the
    report dict."""
    if progress is not None:
        progress("bench: engine microbenchmark ...")
    engine = engine_benchmark(
        n_events=ENGINE_EVENTS // 4 if quick else ENGINE_EVENTS
    )
    if progress is not None:
        progress("bench: scheduler push/pop microbenchmark ...")
    scheduler = scheduler_benchmark(
        depths=SCHEDULER_DEPTHS[:2] if quick else SCHEDULER_DEPTHS,
        ops=SCHEDULER_OPS // 4 if quick else SCHEDULER_OPS,
    )
    sweep = sweep_benchmark(quick=quick, seed=seed, progress=progress)
    report: Dict[str, object] = {
        "schema": SCHEMA,
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "cpu_usable": usable_cpus(),
        "engine": engine,
        "scheduler": scheduler,
        "sweep": sweep,
        "provenance": run_provenance(seed=seed, scale=sweep["shape"]["scale"]),
    }
    if out:
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=False)
            fh.write("\n")
    return report


def render_report(report: Dict[str, object]) -> str:
    """Human summary of a :func:`run_bench` report."""
    engine = report["engine"]
    sweep = report["sweep"]
    lines = [
        f"engine ({engine.get('scheduler', 'heap')} scheduler): "
        f"{engine['events_per_sec']:,.0f} events/sec "
        f"({engine['events']} events, best of {engine['repeats']})",
    ]
    for row in report.get("scheduler", {}).get("results", []):
        pairs = ", ".join(
            f"{key[:-len('_ops_per_sec')]} {value:,.0f} ops/sec"
            for key, value in row.items()
            if key.endswith("_ops_per_sec")
        )
        lines.append(f"scheduler hold @depth {row['depth']}: {pairs}")
    shape = (
        f"sweep ({sweep['shape']['figure']}, {sweep['shape']['system']} "
        f"system, {sweep['shape']['tasks']} tasks): "
        f"serial {sweep['serial_seconds']:.2f}s"
    )
    cpus = (
        f"(cpu_count={report['cpu_count']}"
        + (
            f", usable={report['cpu_usable']})"
            if "cpu_usable" in report
            else ")"
        )
    )
    if sweep.get("skipped"):
        lines.append(
            f"{shape}; parallel timing skipped [{sweep['skipped']}] {cpus}"
        )
    else:
        lines.append(
            f"{shape} vs parallel {sweep['parallel_seconds']:.2f}s "
            f"on {sweep['parallel_workers']} workers "
            f"-> speedup {sweep['speedup']:.2f}x {cpus}"
        )
    lines.append(f"serial/parallel results identical: {sweep['identical']}")
    return "\n".join(lines)


def compare_reports(
    current: Dict[str, object],
    baseline: Dict[str, object],
    threshold: float = REGRESSION_THRESHOLD,
) -> Tuple[List[str], bool]:
    """Per-metric deltas of *current* vs a *baseline* report.

    Returns ``(lines, regressed)`` where *regressed* is True iff the
    engine events/sec dropped by more than *threshold* (the gating
    metric: events/sec is hardware-comparable within one host class,
    while sweep wall times also move with load and task shape, so those
    are reported but never gate).  Tolerates schema /1 baselines (no
    ``scheduler`` section, no ``cpu_usable``).
    """

    def pct(new: float, old: float) -> str:
        if not old:
            return "n/a"
        return f"{(new - old) / old:+.1%}"

    lines: List[str] = []
    cur_eps = current["engine"]["events_per_sec"]
    base_eps = baseline["engine"]["events_per_sec"]
    regressed = bool(base_eps) and cur_eps < base_eps * (1.0 - threshold)
    lines.append(
        f"engine events/sec: {cur_eps:,.0f} vs baseline {base_eps:,.0f} "
        f"({pct(cur_eps, base_eps)})"
        + (f"  ** REGRESSION (> {threshold:.0%} drop) **" if regressed else "")
    )

    base_rows = {
        row["depth"]: row
        for row in baseline.get("scheduler", {}).get("results", [])
    }
    for row in current.get("scheduler", {}).get("results", []):
        base_row = base_rows.get(row["depth"])
        if base_row is None:
            continue
        for key, value in row.items():
            if not key.endswith("_ops_per_sec") or key not in base_row:
                continue
            name = key[: -len("_ops_per_sec")]
            lines.append(
                f"scheduler {name} @depth {row['depth']}: {value:,.0f} vs "
                f"{base_row[key]:,.0f} ({pct(value, base_row[key])})"
            )

    for field, label in (
        ("serial_seconds", "sweep serial seconds"),
        ("parallel_seconds", "sweep parallel seconds"),
        ("speedup", "sweep speedup"),
    ):
        cur_v = current["sweep"].get(field)
        base_v = baseline["sweep"].get(field)
        if cur_v is None or base_v is None:
            skip = current["sweep"].get("skipped") or baseline["sweep"].get(
                "skipped"
            )
            lines.append(f"{label}: not compared ({skip or 'missing'})")
        else:
            lines.append(f"{label}: {cur_v} vs {base_v} ({pct(cur_v, base_v)})")

    if current.get("quick") != baseline.get("quick"):
        lines.append(
            "note: quick flags differ "
            f"(current={current.get('quick')}, "
            f"baseline={baseline.get('quick')}) — deltas are not "
            "like-for-like"
        )
    return lines, regressed
