"""repro — Semi-Continuous Transmission for Cluster-Based Video Servers.

A from-scratch Python reproduction of Irani & Venkatasubramanian
(IEEE CLUSTER 2001): a discrete-event model of a cluster-based
video-on-demand server with client staging buffers, the EFTF
minimum-flow bandwidth scheduler, dynamic request migration (DRM) at
admission, and the even/predictive/partial-predictive placement family.

Quickstart::

    from repro import LARGE_SYSTEM, Simulation, SimulationConfig
    from repro.core.migration import MigrationPolicy

    cfg = SimulationConfig(
        system=LARGE_SYSTEM, theta=0.3,
        migration=MigrationPolicy.paper_default(),
        staging_fraction=0.2, duration=3600 * 20, seed=1,
    )
    print(Simulation(cfg).run())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduced tables and figures.
"""

from repro.cluster.system import LARGE_SYSTEM, SMALL_SYSTEM, SystemConfig
from repro.core.migration import MigrationPolicy
from repro.core.policies import PAPER_POLICIES, Policy
from repro.simulation import (
    Simulation,
    SimulationConfig,
    SimulationResult,
    run_simulation,
)

__version__ = "1.1.0"

__all__ = [
    "LARGE_SYSTEM",
    "MigrationPolicy",
    "PAPER_POLICIES",
    "Policy",
    "SMALL_SYSTEM",
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    "SystemConfig",
    "run_simulation",
    "__version__",
]
