"""PolicyBridge: one decision path for simulator and live gateway.

The parity contract (docs/SERVING.md) in one sentence: *the set of
admit / reject / migrate decisions for a given arrival trace must be
byte-identical whether the trace is simulated in virtual time or served
live over TCP.*  The bridge enforces it structurally rather than by
testing alone:

* it builds the policy core through the ordinary
  :class:`repro.Simulation` constructor — same RNG substreams, same
  catalog, same placement, same :class:`AdmissionController` — so live
  mode cannot wire the policies differently;
* the built-in arrival process is stopped at construction; *every*
  arrival enters through :meth:`submit`, in live mode from a TCP frame
  and in replay mode from a :class:`repro.workload.trace.Trace`;
* the engine clock only moves forward through :meth:`advance` /
  :meth:`submit`, and ``Engine.run_until`` is composable —
  ``advance(a); advance(b)`` fires exactly the events of
  ``advance(b)`` — so interleaving pacing reads between arrivals
  cannot change any decision.

Submitting an arrival earlier than the engine clock would *break*
parity (virtual time cannot rewind), so :meth:`submit` raises
:class:`ParityError`; the gateway's guard/reorder machinery exists to
keep that from ever happening (see :mod:`repro.serve.gateway`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro import obs
from repro.cluster.request import Request
from repro.core.admission import AdmissionOutcome
from repro.simulation import Simulation, SimulationConfig
from repro.workload.trace import RequestSpec


class ParityError(RuntimeError):
    """An arrival was submitted behind the policy engine's clock."""


@dataclass(frozen=True)
class Decision:
    """One admission decision, in a wire-stable shape.

    ``to_wire`` is the byte-level parity unit: two runs agree exactly
    when their decision lists serialise to the same JSON.
    """

    index: int
    time: float
    video: int
    request: int
    outcome: str
    server: Optional[int]
    migrations: int

    @property
    def accepted(self) -> bool:
        """True for both plain and migration-assisted admissions."""
        return AdmissionOutcome(self.outcome).accepted

    def to_wire(self) -> dict:
        return {
            "i": self.index,
            "t": round(self.time, 9),
            "video": self.video,
            "request": self.request,
            "outcome": self.outcome,
            "server": self.server,
            "migrations": self.migrations,
        }


def decisions_digest(decisions: Iterable[Decision]) -> str:
    """Canonical JSON of a decision list (the parity comparand)."""
    return json.dumps(
        [d.to_wire() for d in decisions], separators=(",", ":")
    )


class PolicyBridge:
    """The policy core of one run, driven by externally supplied arrivals.

    Args:
        config: the full policy configuration (a scenario's config).
        tracer: optional obs tracer threaded through every layer, as in
            a traced simulation.

    Attributes:
        sim: the underlying (arrival-stopped) :class:`Simulation`.
        decisions: every decision made so far, in submission order.
    """

    def __init__(
        self,
        config: SimulationConfig,
        tracer: Optional[obs.Tracer] = None,
    ) -> None:
        self.config = config
        self.sim = Simulation(config, tracer=tracer)
        # Live arrivals come from the caller; the builder's own arrival
        # process must not inject Poisson traffic alongside them.
        self.sim._arrivals.stop()
        self.engine = self.sim.engine
        self.controller = self.sim.controller
        self.decisions: List[Decision] = []
        self._migrations_seen = 0
        self._last_request: Optional[Request] = None
        self.controller.decision_hooks.append(self._capture)
        self._finalized = False

    # ------------------------------------------------------------------
    def _capture(self, outcome: AdmissionOutcome, request: Request) -> None:
        self._last_request = request

    @property
    def now(self) -> float:
        """The policy engine's virtual clock."""
        return self.engine.now

    def advance(self, time: float) -> None:
        """Run the policy engine forward to virtual *time*.

        Fires every boundary event (finishes, buffer-full, switch-gap
        ends) scheduled up to *time* — exactly the events a virtual-time
        simulation would fire.  A no-op when *time* is not ahead of the
        clock.
        """
        if time > self.engine.now:
            self.engine.run_until(time)

    def submit(self, time: float, video_id: int) -> Decision:
        """Run one arrival through the shared admission pipeline.

        Args:
            time: the arrival's virtual time; must be >= the engine
                clock (arrivals are totally ordered).
            video_id: requested catalog id.

        Raises:
            ParityError: when *time* lies behind the engine clock —
                admitting it "now" would diverge from the virtual-time
                run of the same trace.
        """
        if time < self.engine.now:
            raise ParityError(
                f"arrival at virtual t={time:.6f} is behind the policy "
                f"clock {self.engine.now:.6f}; decisions would diverge "
                f"from the virtual-time run (widen ServeConfig.guard / "
                f"reorder_window)"
            )
        self.advance(time)
        metrics = self.controller.metrics
        migrations_before = metrics.migrations
        outcome = self.controller.submit(video_id)
        request = self._last_request
        assert request is not None  # decision hook always fires
        self._migrations_seen = metrics.migrations
        decision = Decision(
            index=len(self.decisions),
            time=time,
            video=video_id,
            request=request.request_id,
            outcome=outcome.value,
            server=request.server_id,
            migrations=metrics.migrations - migrations_before,
        )
        self.decisions.append(decision)
        return decision

    def request_of(self, decision: Decision) -> Optional[Request]:
        """The live :class:`Request` behind an accepted *decision*.

        Looks the request up in the cluster's active sets (requests
        detach on finish); returns None once it is gone.
        """
        for server in self.controller.servers.values():
            for request in server.iter_active():
                if request.request_id == decision.request:
                    return request
        return None

    # ------------------------------------------------------------------
    def replay(self, specs: Iterable[RequestSpec]) -> List[Decision]:
        """Feed a whole trace through :meth:`submit` (virtual-time mode).

        This is the reference side of the parity test: the live gateway
        produces its decisions one TCP frame at a time, this method
        produces them in a tight loop — both through the exact same
        code.
        """
        return [self.submit(spec.time, spec.video_id) for spec in specs]

    def finalize(self, time: Optional[float] = None) -> dict:
        """Advance to *time* (default: now), flush accounting, and
        return a summary of the policy core's view of the run."""
        if not self._finalized:
            self._finalized = True
            if time is not None:
                self.advance(time)
            self.controller.finalize(self.engine.now)
        metrics = self.controller.metrics
        return {
            "virtual_duration": self.engine.now,
            "arrivals": metrics.arrivals,
            "accepted": metrics.accepted,
            "rejected": metrics.rejected,
            "migrations": metrics.migrations,
            "underruns": metrics.underruns,
            "finished": metrics.finished,
            "events_fired": self.engine.events_fired,
            "decisions": len(self.decisions),
            "decisions_sha": obs.config_hash(
                {"decisions": decisions_digest(self.decisions)}
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<PolicyBridge t={self.engine.now:.6g} "
            f"decisions={len(self.decisions)}>"
        )
