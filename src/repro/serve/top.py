"""``repro top`` — a curses-free terminal dashboard for the gateway.

Two sources, one renderer:

* **live** — poll a running gateway's ops endpoint
  (:func:`repro.serve.ops.ops_query`) once per interval and redraw;
* **trace** — replay the ``serve.stats`` samples of a recorded JSONL
  trace (``repro serve --trace-out``), rendering the run as it
  happened without any server around.

Both sources normalise into the same sample dict (the ``serve.stats``
field schema), so :func:`render_top` is a pure string function — the
tests feed it canned samples and assert on the text.  No curses, no
terminal capabilities: a frame is a block of plain lines, optionally
preceded by an ANSI home+clear when stdout is a TTY.  Piping ``repro
top`` into a file therefore yields a readable log instead of escape
soup.
"""

from __future__ import annotations

import sys
import time as _time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, TextIO, Union

from repro.obs.tracer import iter_jsonl
from repro.serve.ops import ops_query_sync

#: ANSI "cursor home + clear screen" — emitted only for TTYs.
_CLEAR = "\x1b[H\x1b[2J"

_WIDTH = 72


# ----------------------------------------------------------------------
# Samples
# ----------------------------------------------------------------------
def sample_from_health(health: Dict[str, Any]) -> Dict[str, Any]:
    """Normalise an ``ops health`` reply into a dashboard sample."""
    sample = dict(health)
    sample.setdefault("active", health.get("sessions_active", 0))
    sample.setdefault("t", health.get("virtual_now", 0.0))
    return sample


def sample_from_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """Normalise one ``serve.stats`` trace line into a sample."""
    sample = dict(record)
    sample.setdefault("status", "recorded")
    sample.setdefault("sessions_active", record.get("active", 0))
    return sample


def live_sample(
    host: str, port: int, timeout: float = 5.0
) -> Dict[str, Any]:
    """One poll of a running gateway (blocking)."""
    reply = ops_query_sync(host, port, "health", timeout=timeout)
    return sample_from_health(reply["health"])


def trace_samples(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """All ``serve.stats`` samples of a recorded trace, in order.

    Raises:
        SystemExit: file unreadable or holding no samples — one
            actionable line instead of a traceback (CLI path).
    """
    try:
        records = list(iter_jsonl(path))
    except OSError as exc:
        raise SystemExit(f"cannot read trace {path!r}: {exc}")
    except ValueError as exc:
        raise SystemExit(f"trace {path!r} is not valid JSONL: {exc}")
    samples = [
        sample_from_record(r) for r in records if r.get("kind") == "serve.stats"
    ]
    if not samples:
        raise SystemExit(
            f"trace {path!r} holds no serve.stats samples — record one "
            f"with `repro serve --trace-out` (stats_interval controls "
            f"the sampling rate)"
        )
    return samples


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _rate(
    sample: Dict[str, Any], prev: Optional[Dict[str, Any]], key: str
) -> Optional[float]:
    """Per-wall-second delta of a monotone counter between samples."""
    if prev is None:
        return None
    dt = float(sample.get("uptime_s", 0.0)) - float(prev.get("uptime_s", 0.0))
    if dt <= 0:
        return None
    return (float(sample.get(key, 0.0)) - float(prev.get(key, 0.0))) / dt


def _fmt(value: Any, suffix: str = "", places: int = 1) -> str:
    if value is None:
        return "-"
    return f"{value:.{places}f}{suffix}"


def _bar(fraction: float, width: int = 20) -> str:
    fraction = max(0.0, min(1.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def render_top(
    sample: Dict[str, Any],
    prev: Optional[Dict[str, Any]] = None,
    source: str = "live",
) -> str:
    """Render one dashboard frame (a plain-text block, no trailing NL).

    Args:
        sample: a normalised sample (see :func:`sample_from_health` /
            :func:`sample_from_record`).
        prev: the previous sample, enabling per-second rates; rates
            render as ``-`` without it.
        source: provenance tag shown in the header (``live`` /
            ``trace``).
    """
    lines: List[str] = []
    status = sample.get("status", "?")
    lines.append(
        f"repro top [{source}]  status={status}  "
        f"vt={float(sample.get('t', sample.get('virtual_now', 0.0))):.2f}s  "
        f"uptime={float(sample.get('uptime_s', 0.0)):.1f}s"
    )
    lines.append("-" * _WIDTH)

    admits = int(sample.get("admits", 0))
    rejects = int(sample.get("rejects", 0))
    active = int(sample.get("active", sample.get("sessions_active", 0)))
    lines.append(
        f"sessions  active {active:>5}   admitted {admits:>6} "
        f"({_fmt(_rate(sample, prev, 'admits'), '/s')})   "
        f"rejected {rejects:>6} ({_fmt(_rate(sample, prev, 'rejects'), '/s')})"
    )
    chunks = int(sample.get("chunks", 0))
    lines.append(
        f"pacing    chunks {chunks:>7} "
        f"({_fmt(_rate(sample, prev, 'chunks'), '/s')})   "
        f"bandwidth {_fmt(_rate(sample, prev, 'chunk_mb'), ' Mb/s')}   "
        f"total {float(sample.get('chunk_mb', 0.0)):.1f} Mb"
    )

    occupancy = float(sample.get("guard_occupancy", 0.0))
    lines.append(
        f"clock     vt lag {float(sample.get('vt_lag_s', 0.0)):6.2f}s   "
        f"guard [{_bar(occupancy)}] {occupancy:.2f}"
    )

    latency = sample.get("latency_ms") or {}
    lines.append(
        f"latency   p50 {_fmt(latency.get('p50'), ' ms')}   "
        f"p95 {_fmt(latency.get('p95'), ' ms')}   "
        f"p99 {_fmt(latency.get('p99'), ' ms')}"
    )

    cache = sample.get("cache") or {}
    if cache:
        hits = int(cache.get("hits", 0))
        misses = int(cache.get("misses", 0))
        lines.append(
            f"cache     hit rate {float(cache.get('hit_rate', 0.0)):.2%} "
            f"({hits}/{hits + misses})   "
            f"held {float(cache.get('bytes_held_mb', 0.0)):.0f} Mb   "
            f"chained {int(cache.get('chained_active', 0))} live "
            f"/ {int(cache.get('chained', 0))} total"
        )

    # Elastic membership: health samples carry the full ledger, trace
    # samples just the epoch (+ per-row lifecycle states below).
    membership = sample.get("membership") or {}
    epoch = sample.get("membership_epoch", membership.get("epoch"))
    if epoch is not None:
        counts = membership.get("counts") or {}
        summary = "  ".join(
            f"{state} {n}" for state, n in sorted(counts.items()) if n
        )
        lines.append(
            f"cluster   epoch {int(epoch):>4}"
            + (f"   {summary}" if summary else "")
        )

    servers = sample.get("servers") or {}
    if servers:
        lines.append("-" * _WIDTH)
        lines.append(
            f"{'server':>8}  {'sessions':>8}  {'sched Mb/s':>10}  "
            f"{'bucket Mb':>10}  {'state':>9}"
        )
        states = membership.get("servers") or {}
        for sid in sorted(servers, key=lambda s: int(s)):
            row = servers[sid]
            state = row.get("state", states.get(str(sid), ""))
            lines.append(
                f"{sid:>8}  {int(row.get('sessions', 0)):>8}  "
                f"{float(row.get('scheduled_mb_s', 0.0)):>10.2f}  "
                f"{float(row.get('bucket_mb', 0.0)):>10.3f}  "
                f"{state:>9}"
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def _emit(frame: str, out: TextIO) -> None:
    if out.isatty():
        out.write(_CLEAR)
    out.write(frame + "\n")
    if not out.isatty():
        out.write("\n")  # blank line separates frames in piped output
    out.flush()


def run_live(
    host: str,
    port: int,
    interval: float = 1.0,
    frames: Optional[int] = None,
    out: TextIO = sys.stdout,
) -> int:
    """Poll a live ops endpoint and redraw until Ctrl-C.

    Args:
        frames: stop after this many frames (``None`` = run forever);
            tests and CI use ``frames=1`` for a single snapshot.

    Returns:
        Number of frames rendered.
    """
    prev: Optional[Dict[str, Any]] = None
    rendered = 0
    try:
        while frames is None or rendered < frames:
            try:
                sample = live_sample(host, port)
            except (ConnectionError, OSError) as exc:
                raise SystemExit(
                    f"cannot reach ops endpoint {host}:{port} ({exc}) — "
                    f"is `repro serve` running with an ops port?"
                )
            _emit(render_top(sample, prev, source="live"), out)
            prev = sample
            rendered += 1
            if frames is None or rendered < frames:
                _time.sleep(interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    return rendered


def run_trace(
    path: Union[str, Path],
    out: TextIO = sys.stdout,
    follow: bool = False,
    interval: float = 0.0,
) -> int:
    """Replay a recorded trace's ``serve.stats`` samples.

    Args:
        follow: render every sample (a flip-book of the run); off,
            render only the final frame — the run's end state.
        interval: wall seconds between frames when following (0 =
            as fast as the terminal drains).

    Returns:
        Number of frames rendered.
    """
    samples = trace_samples(path)
    if not follow:
        prev = samples[-2] if len(samples) > 1 else None
        _emit(render_top(samples[-1], prev, source="trace"), out)
        return 1
    prev = None
    for sample in samples:
        _emit(render_top(sample, prev, source="trace"), out)
        prev = sample
        if interval > 0:
            _time.sleep(interval)
    return len(samples)


def iter_frames(
    samples: List[Dict[str, Any]], source: str = "trace"
) -> Iterator[str]:
    """Rendered frames of a sample series (library/test convenience)."""
    prev: Optional[Dict[str, Any]] = None
    for sample in samples:
        yield render_top(sample, prev, source=source)
        prev = sample
