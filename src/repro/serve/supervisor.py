"""Supervised gateway tasks: heartbeats, deadlines, restart-with-drain.

The gateway's loops (policy, per-server pacing, stats sampling) used to
run bare: an unexpected exception wrote a postmortem and killed the
task, and nothing noticed a loop that silently wedged.  Under a live
fault plane that is not enough — a chaos experiment *wants* to crash a
server task mid-stream and then assert that the runtime heals.  The
:class:`TaskSupervisor` provides that contract:

* every supervised loop runs as a **child task** under a wrapper that
  owns its lifecycle; loops call :meth:`TaskSupervisor.beat` once per
  iteration, and a watcher trips any beating loop whose heartbeat goes
  stale past the configured deadline;
* every **trip** — unhandled exception, stale heartbeat, or an
  injected crash from the chaos plane — dumps a flight-recorder
  postmortem stamped with the task name and restart count, and emits a
  ``task.trip`` trace record;
* a tripped task is **restarted** (after ``restart_delay``) within a
  bounded budget (``restart_limit``), *unless* the failure is an
  :class:`~repro.faults.invariants.InvariantViolation` — a policy-state
  violation is never papered over by a restart; it propagates out of
  :meth:`ClusterGateway.stop` exactly as before;
* :meth:`inject_crash` is the chaos plane's kill switch: it cancels
  the named loop's child task as if the "server" had died, and the
  supervisor walks the same trip/postmortem/restart path.

No supervised child can leak: a clean factory exit ends the wrapper, a
fatal trip re-raises through it, and cancelling the wrapper cancels the
child first.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Any, Awaitable, Callable, Dict, List, Optional

from repro.obs.records import TraceKind
from repro.obs.recorder import FlightRecorder
from repro.obs.tracer import Tracer


class TaskKilled(RuntimeError):
    """A supervised task was killed on purpose (chaos or deadline)."""


class _Supervised:
    """Book-keeping for one supervised loop."""

    __slots__ = (
        "name", "where", "factory", "restartable", "task", "child",
        "restarts", "trips", "last_beat", "kill_reason", "fatal",
    )

    def __init__(
        self,
        name: str,
        where: str,
        factory: Callable[[], Awaitable[None]],
        restartable: bool,
    ) -> None:
        self.name = name
        self.where = where
        self.factory = factory
        self.restartable = restartable
        self.task: Optional[asyncio.Task] = None
        self.child: Optional[asyncio.Task] = None
        self.restarts = 0
        self.trips = 0
        self.last_beat: Optional[float] = None
        self.kill_reason: Optional[str] = None
        self.fatal: Optional[str] = None

    def row(self, now: Optional[float]) -> Dict[str, Any]:
        alive = self.task is not None and not self.task.done()
        age = (
            round(now - self.last_beat, 3)
            if now is not None and self.last_beat is not None
            else None
        )
        return {
            "alive": alive,
            "restarts": self.restarts,
            "trips": self.trips,
            "fatal": self.fatal,
            "last_beat_age_s": age,
        }


class TaskSupervisor:
    """Run gateway loops under heartbeat + restart supervision.

    Args:
        should_stop: truthy once the owner is shutting down — a trip
            during shutdown is recorded but never restarted.
        recorder: supplier of the (possibly late-bound) flight
            recorder; every trip dumps a postmortem through it.
        tracer: optional tracer for ``task.trip`` / ``task.restart``
            records.
        now_virtual: supplier of the owner's virtual clock, used as
            the trace-record timestamp.
        heartbeat_timeout: wall seconds a *beating* loop may go silent
            before the watcher trips it; 0 disables the watcher.
        restart_limit: restarts granted per task before a trip becomes
            fatal.
        restart_delay: wall seconds between death and restart.
    """

    def __init__(
        self,
        should_stop: Callable[[], bool],
        recorder: Optional[Callable[[], Optional[FlightRecorder]]] = None,
        tracer: Optional[Tracer] = None,
        now_virtual: Optional[Callable[[], float]] = None,
        heartbeat_timeout: float = 0.0,
        restart_limit: int = 3,
        restart_delay: float = 0.05,
    ) -> None:
        self.should_stop = should_stop
        self._recorder = recorder or (lambda: None)
        self.tracer = tracer
        self._now_virtual = now_virtual or (lambda: 0.0)
        self.heartbeat_timeout = heartbeat_timeout
        self.restart_limit = restart_limit
        self.restart_delay = restart_delay
        self.trips = 0
        self.restarts = 0
        self.injected_kills = 0
        self.heartbeat_trips = 0
        self._entries: Dict[str, _Supervised] = {}
        self._watcher: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # Spawning and heartbeats
    # ------------------------------------------------------------------
    def spawn(
        self,
        name: str,
        factory: Callable[[], Awaitable[None]],
        where: Optional[str] = None,
        restartable: bool = True,
    ) -> asyncio.Task:
        """Start *factory* under supervision; returns the wrapper task.

        *factory* is re-invoked on every restart, so it must be a
        zero-argument callable producing a fresh coroutine (not a bare
        coroutine object).
        """
        if name in self._entries and not self._entries[name].task.done():
            raise RuntimeError(f"task {name!r} already supervised")
        entry = _Supervised(name, where or name, factory, restartable)
        loop = asyncio.get_running_loop()
        entry.task = loop.create_task(self._run(entry), name=name)
        self._entries[name] = entry
        if self.heartbeat_timeout > 0 and self._watcher is None:
            self._watcher = loop.create_task(
                self._watch(), name="serve.supervisor"
            )
        return entry.task

    def beat(self, name: str) -> None:
        """Record one loop iteration (called from inside the loop)."""
        entry = self._entries.get(name)
        if entry is not None:
            entry.last_beat = asyncio.get_running_loop().time()

    def inject_crash(self, name: str, reason: str = "injected") -> bool:
        """Kill the named loop's running child as a live fault.

        Returns True when a running child was cancelled; the wrapper
        then walks the ordinary trip path (postmortem, trace record,
        restart within budget).  False when the task is unknown or has
        no running child (already dead or between restarts).
        """
        entry = self._entries.get(name)
        if entry is None or entry.child is None or entry.child.done():
            return False
        entry.kill_reason = reason
        self.injected_kills += 1
        entry.child.cancel()
        return True

    # ------------------------------------------------------------------
    # The wrapper
    # ------------------------------------------------------------------
    async def _run(self, entry: _Supervised) -> None:
        loop = asyncio.get_running_loop()
        while True:
            entry.last_beat = loop.time()
            entry.child = loop.create_task(
                entry.factory(), name=f"{entry.name}.run"
            )
            try:
                await entry.child
                return  # clean exit (owner is stopping)
            except asyncio.CancelledError:
                # An external wrapper cancel can race an injected kill
                # (the watcher sets kill_reason in the same tick); the
                # wrapper's own pending cancellation must always win or
                # the owner's cancel would be swallowed by the trip
                # path and the task would restart instead of dying.
                cancelling = getattr(
                    asyncio.current_task(), "cancelling", None
                )
                if entry.kill_reason is None or (
                    cancelling is not None and cancelling() > 0
                ):
                    # The wrapper itself was cancelled: take the child
                    # down with us and propagate.
                    entry.kill_reason = None
                    entry.child.cancel()
                    with contextlib.suppress(BaseException):
                        await entry.child
                    raise
                reason, entry.kill_reason = entry.kill_reason, None
                exc: BaseException = TaskKilled(reason)
            except Exception as caught:  # noqa: BLE001 - supervision point
                exc = caught
            if not await self._trip(entry, exc):
                raise exc

    async def _trip(self, entry: _Supervised, exc: BaseException) -> bool:
        """Record one task death; True when the task will restart."""
        from repro.faults.invariants import InvariantViolation

        entry.trips += 1
        self.trips += 1
        violation = isinstance(exc, InvariantViolation)
        detail = f"{entry.where}: {type(exc).__name__}: {exc}"
        recorder = self._recorder()
        if recorder is not None:
            recorder.dump(
                "invariant_violation" if violation else "crash",
                f"{entry.where}: {exc}" if violation else detail,
                extra={
                    "task": entry.name,
                    "task_restarts": entry.restarts,
                    "task_trips": entry.trips,
                },
            )
        restart = (
            entry.restartable
            and not violation
            and entry.restarts < self.restart_limit
            and not self.should_stop()
        )
        if self.tracer is not None:
            self.tracer.emit(
                TraceKind.TASK_TRIP, self._now_virtual(),
                task=entry.name, error=type(exc).__name__,
                detail=str(exc), restarting=restart,
            )
        if not restart:
            entry.fatal = detail
            return False
        entry.restarts += 1
        self.restarts += 1
        if self.tracer is not None:
            self.tracer.emit(
                TraceKind.TASK_RESTART, self._now_virtual(),
                task=entry.name, restarts=entry.restarts,
            )
        if self.restart_delay > 0:
            await asyncio.sleep(self.restart_delay)
        return True

    # ------------------------------------------------------------------
    # Heartbeat watcher
    # ------------------------------------------------------------------
    async def _watch(self) -> None:
        interval = max(0.02, self.heartbeat_timeout / 4.0)
        loop = asyncio.get_running_loop()
        while not self.should_stop():
            await asyncio.sleep(interval)
            now = loop.time()
            for entry in self._entries.values():
                if (
                    entry.last_beat is None
                    or entry.child is None
                    or entry.child.done()
                ):
                    continue
                if now - entry.last_beat > self.heartbeat_timeout:
                    self.heartbeat_trips += 1
                    self.inject_crash(
                        entry.name,
                        reason=(
                            f"heartbeat stale for "
                            f"{now - entry.last_beat:.3f}s "
                            f"(deadline {self.heartbeat_timeout}s)"
                        ),
                    )

    # ------------------------------------------------------------------
    # Lifecycle + reporting
    # ------------------------------------------------------------------
    async def close(self) -> None:
        """Stop the watcher (the owner awaits the wrapper tasks)."""
        if self._watcher is not None:
            self._watcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._watcher
            self._watcher = None

    def tasks(self) -> List[asyncio.Task]:
        """The live wrapper tasks (what the owner must await)."""
        return [
            e.task for e in self._entries.values() if e.task is not None
        ]

    def report(self) -> Dict[str, Any]:
        """JSON-ready supervision summary (ops health / run summary)."""
        try:
            now: Optional[float] = asyncio.get_running_loop().time()
        except RuntimeError:  # pragma: no cover - post-loop summary
            now = None
        return {
            "trips": self.trips,
            "restarts": self.restarts,
            "injected_kills": self.injected_kills,
            "heartbeat_trips": self.heartbeat_trips,
            "tasks": {
                name: entry.row(now)
                for name, entry in sorted(self._entries.items())
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<TaskSupervisor tasks={len(self._entries)} "
            f"trips={self.trips} restarts={self.restarts}>"
        )
