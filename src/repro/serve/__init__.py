"""repro.serve — the live serving runtime (docs/SERVING.md).

Every other layer of this repository runs in *virtual* time; this
package mounts the same policy core — EFTF scheduling, minimum-flow
admission, DRM migration — on wall-clock asyncio connections:

* :mod:`repro.serve.protocol` — length-prefixed JSON frames (with an
  optional binary payload) spoken over TCP by every component;
* :mod:`repro.serve.bridge` — :class:`~repro.serve.bridge.PolicyBridge`,
  the seam that lets live mode and the simulator share one decision
  path (the sim-vs-live parity contract);
* :mod:`repro.serve.gateway` — the distribution-controller gateway:
  admission API, per-server pacing tasks, graceful drain;
* :mod:`repro.serve.loadgen` — a client/load-generator replaying
  :mod:`repro.workload` arrival processes in real time with a
  time-compression factor, maintaining a staging buffer and reporting
  underruns;
* :mod:`repro.serve.ops` — the gateway's live telemetry endpoint: a
  second listener answering ``stats`` / ``health`` / ``sessions`` /
  ``prometheus`` / ``chaos`` ops frames (docs/SERVING.md, "ops
  endpoint");
* :mod:`repro.serve.supervisor` — heartbeat + restart supervision of
  the gateway's loops (docs/ROBUSTNESS.md, "live chaos");
* :mod:`repro.serve.chaos` — the live fault plane: toxic transports,
  deterministic client-side faults, engine-crash mirroring, and the
  ``repro chaos serve`` harness;
* :mod:`repro.serve.top` — ``repro top``, a curses-free dashboard
  over the ops endpoint or a recorded trace.

CLI surface: ``repro serve --scenario FILE``, ``repro loadgen
--scenario FILE``, ``repro chaos serve``, ``repro top`` and ``repro
ops`` (registered through the experiment registry; see
:mod:`repro.experiments.live_serve`,
:mod:`repro.experiments.chaos_serve` and
:mod:`repro.experiments.ops_tools`).
"""

from repro.serve.bridge import Decision, ParityError, PolicyBridge
from repro.serve.chaos import (
    ChaosPlane,
    ClientChaos,
    ClientFaultPlan,
    ToxicConfig,
    ToxicReader,
    ToxicWriter,
    run_chaos_serve,
)
from repro.serve.config import ServeConfig
from repro.serve.gateway import ClusterGateway
from repro.serve.loadgen import LoadGenerator, LoadReport, SessionOutcome
from repro.serve.supervisor import TaskKilled, TaskSupervisor
from repro.serve.ops import (
    OPS_VERBS,
    OpsEndpoint,
    format_reply,
    ops_query,
    ops_query_sync,
)
from repro.serve.protocol import (
    Frame,
    FrameError,
    MAX_HEADER_BYTES,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.serve.top import render_top, run_live, run_trace, trace_samples

__all__ = [
    "ChaosPlane",
    "ClientChaos",
    "ClientFaultPlan",
    "ClusterGateway",
    "Decision",
    "Frame",
    "FrameError",
    "LoadGenerator",
    "LoadReport",
    "MAX_HEADER_BYTES",
    "OPS_VERBS",
    "OpsEndpoint",
    "ParityError",
    "PolicyBridge",
    "ServeConfig",
    "SessionOutcome",
    "TaskKilled",
    "TaskSupervisor",
    "ToxicConfig",
    "ToxicReader",
    "ToxicWriter",
    "encode_frame",
    "format_reply",
    "ops_query",
    "ops_query_sync",
    "read_frame",
    "render_top",
    "run_chaos_serve",
    "run_live",
    "run_trace",
    "trace_samples",
    "write_frame",
]
