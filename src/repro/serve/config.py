"""Runtime knobs of the live serving layer.

:class:`ServeConfig` is everything *wall-clock* about a live run — how
virtual time maps onto real time, how often pacing ticks fire, the
robustness bounds (timeouts, retries, drain deadline).  Everything
*policy* about a run stays in :class:`repro.simulation.SimulationConfig`
(the scenario file): the same committed scenario can be simulated or
served live, and the decisions must not depend on which (the parity
contract, docs/SERVING.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.serialize import check_fields, shallow_dict


@dataclass(frozen=True)
class ServeConfig:
    """Wall-clock parameters of the gateway and load generator.

    Attributes:
        host: bind/connect address.
        port: TCP port; 0 binds an ephemeral port (tests).
        compression: virtual seconds per wall second.  At 40x a
            75-virtual-second clip streams in under two wall seconds.
        tick: pacing quantum, wall seconds — each server task wakes
            every *tick* to refill token buckets and push chunks.
        guard: how far (wall seconds) the pacer's engine advance lags
            the wall clock.  Arrivals announce themselves within this
            window, so the policy engine never advances past an
            arrival's virtual time — the parity contract's safety
            margin.  Must exceed *reorder_window*.
        reorder_window: wall seconds an arrival is buffered before
            admission so that near-simultaneous requests from separate
            connections are processed in virtual-time order.
        startup_slack: wall seconds between anchoring the virtual clock
            (first arrival) and that arrival's due time.
        bytes_per_megabit: payload scaling — how many real payload
            bytes stand in for one megabit of video data.
        handshake_timeout: wall seconds a new connection may take to
            send its ``request`` frame before being dropped.
        send_timeout: per-frame drain bound, wall seconds.
        send_retries: bounded retries for a timed-out chunk send before
            the session is declared dead (transient-failure budget).
        drain_timeout: wall seconds :meth:`ClusterGateway.drain` waits
            for in-flight sessions before force-closing them.
        ops_port: TCP port of the gateway's ops (telemetry) listener;
            0 binds an ephemeral port, ``None`` disables the endpoint
            entirely (docs/SERVING.md, "ops endpoint").
        stats_interval: wall seconds between ``serve.stats`` trace
            samples (the flight recorder's and ``repro top --trace``'s
            time series) when a tracer is attached.
        progress_interval: wall seconds between the load generator's
            one-line progress reports (stderr); only used when a
            progress callback is given.
        loadgen_duration: virtual seconds of arrivals the load
            generator replays; ``None`` uses the scenario's
            ``duration``.
        max_sessions: optional hard cap on generated sessions.
        heartbeat_timeout: wall seconds a supervised gateway loop may
            go without a heartbeat before the supervisor trips it
            (postmortem + restart); 0 disables deadline monitoring.
            Only loops that beat are monitored.
        task_restart_limit: restarts the supervisor grants one gateway
            task before declaring it fatally dead (the restart budget
            of restart-with-drain; docs/ROBUSTNESS.md, live chaos).
        task_restart_delay: wall seconds between a supervised task's
            death and its restart.
        retry_margin: wall seconds of virtual-time headroom a resilient
            client adds to every re-request timestamp (converted via
            *compression*), so the retried arrival lands ahead of the
            policy clock's guard window and never forces a parity
            clamp.  Must exceed ``guard + reorder_window``.
    """

    host: str = "127.0.0.1"
    port: int = 0
    compression: float = 40.0
    tick: float = 0.05
    guard: float = 0.25
    reorder_window: float = 0.1
    startup_slack: float = 0.3
    bytes_per_megabit: int = 64
    handshake_timeout: float = 10.0
    send_timeout: float = 5.0
    send_retries: int = 3
    drain_timeout: float = 15.0
    ops_port: Optional[int] = 0
    stats_interval: float = 1.0
    progress_interval: float = 2.0
    loadgen_duration: Optional[float] = None
    max_sessions: Optional[int] = None
    heartbeat_timeout: float = 0.0
    task_restart_limit: int = 3
    task_restart_delay: float = 0.05
    retry_margin: float = 1.0

    def __post_init__(self) -> None:
        if self.compression <= 0:
            raise ValueError(
                f"compression must be positive, got {self.compression}"
            )
        if self.tick <= 0:
            raise ValueError(f"tick must be positive, got {self.tick}")
        if self.reorder_window < 0:
            raise ValueError(
                f"reorder_window must be >= 0, got {self.reorder_window}"
            )
        if self.guard <= self.reorder_window:
            raise ValueError(
                f"guard ({self.guard}) must exceed reorder_window "
                f"({self.reorder_window}): the pacer may otherwise advance "
                f"the policy engine past a buffered arrival"
            )
        if self.startup_slack < 0:
            raise ValueError(
                f"startup_slack must be >= 0, got {self.startup_slack}"
            )
        if self.bytes_per_megabit < 1:
            raise ValueError(
                f"bytes_per_megabit must be >= 1, got {self.bytes_per_megabit}"
            )
        if self.send_retries < 0:
            raise ValueError(
                f"send_retries must be >= 0, got {self.send_retries}"
            )
        if self.ops_port is not None and not (0 <= self.ops_port <= 65535):
            raise ValueError(
                f"ops_port must be a TCP port or None (disabled), "
                f"got {self.ops_port}"
            )
        for name in ("handshake_timeout", "send_timeout", "drain_timeout",
                     "stats_interval", "progress_interval"):
            if getattr(self, name) <= 0:
                raise ValueError(
                    f"{name} must be positive, got {getattr(self, name)}"
                )
        if self.loadgen_duration is not None and self.loadgen_duration <= 0:
            raise ValueError(
                f"loadgen_duration must be positive, got "
                f"{self.loadgen_duration}"
            )
        if self.max_sessions is not None and self.max_sessions < 1:
            raise ValueError(
                f"max_sessions must be >= 1, got {self.max_sessions}"
            )
        if self.heartbeat_timeout < 0:
            raise ValueError(
                f"heartbeat_timeout must be >= 0 (0 disables), got "
                f"{self.heartbeat_timeout}"
            )
        if self.task_restart_limit < 0:
            raise ValueError(
                f"task_restart_limit must be >= 0, got "
                f"{self.task_restart_limit}"
            )
        if self.task_restart_delay < 0:
            raise ValueError(
                f"task_restart_delay must be >= 0, got "
                f"{self.task_restart_delay}"
            )
        if self.retry_margin <= self.guard + self.reorder_window:
            raise ValueError(
                f"retry_margin ({self.retry_margin}) must exceed guard + "
                f"reorder_window ({self.guard + self.reorder_window}): a "
                f"re-request stamped closer than that can land behind the "
                f"policy clock and force a parity clamp"
            )

    # -- virtual <-> wall conversions ----------------------------------
    def to_virtual(self, wall_seconds: float) -> float:
        """Wall duration -> virtual duration."""
        return wall_seconds * self.compression

    def to_wall(self, virtual_seconds: float) -> float:
        """Virtual duration -> wall duration."""
        return virtual_seconds / self.compression

    def to_dict(self) -> dict:
        """JSON-compatible dict; round-trips via :meth:`from_dict`."""
        return shallow_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ServeConfig":
        """Build from a (possibly partial) dict; unknown keys raise."""
        check_fields(cls, data)
        return cls(**data)
