"""The live chaos plane: fault injection against a running gateway.

The simulator has had a declarative chaos schedule for a while
(:class:`repro.faults.FaultPlan` driven by the
:class:`~repro.faults.injector.FaultInjector`): crashes, link
degradation and replica loss fire as engine events, failover migrates
or drops the affected streams, and the invariant checker audits every
step.  This module extends that plane to the *live* serving runtime —
same faults, same seed, same decisions — plus the failure classes only
a real transport has:

* **engine faults, mirrored live** — the gateway's policy bridge runs
  the scenario's fault plan as part of ordinary virtual-time advance;
  the :class:`ChaosPlane` hooks the failover manager so every engine
  crash *also* kills the corresponding gateway server task mid-stream
  (through :meth:`~repro.serve.supervisor.TaskSupervisor.inject_crash`,
  so the trip dumps a postmortem and the task restarts warm) and every
  restore is accounted;
* **toxic transports** — :class:`ToxicWriter` / :class:`ToxicReader`
  wrap the frame protocol with injected latency, jitter, periodic
  stalls and mid-frame cuts, on the gateway side (via
  ``ClusterGateway(wrap_writer=...)``) and the client side (via each
  session's :class:`ClientFaultPlan`);
* **client-side faults** — :class:`ClientChaos` pre-draws, per session
  on a named substream, whether and *when* (in virtual time) a client
  severs its own connection, so the resilient load generator's
  reconnect timeline is byte-identical across same-seed runs;
* **the harness** — :func:`run_chaos_serve` wires all of the above
  around one gateway + load-generator pair and returns a reconciled
  report: the decision digest (for same-seed identity checks), every
  failover's affected sessions classified by how their client fared
  (migrated / recovered / lost / rejected), leaked-task and parity
  accounting, and any invariant violation.

Determinism contract (docs/ROBUSTNESS.md, "live chaos"): every fault
*decision* — which server crashes when, which client cuts when, each
backoff delay — is drawn from named RNG substreams in virtual time.
Wall-clock effects (toxic latency, stalls, event-loop jitter) may vary
freely between runs; they never feed back into the policy timeline, so
two same-seed chaos serves produce identical ``decisions_sha`` digests.
"""

from __future__ import annotations

import asyncio
import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro import obs
from repro.core.failover import FailoverReport
from repro.faults.invariants import InvariantViolation
from repro.faults.retry import RetryPolicy
from repro.serve.config import ServeConfig
from repro.serve.gateway import ClusterGateway
from repro.serve.loadgen import (
    LoadGenerator,
    LoadReport,
    SessionOutcome,
    arrival_trace,
)
from repro.sim.rng import RandomStreams
from repro.simulation import SimulationConfig
from repro.workload.trace import Trace


# ----------------------------------------------------------------------
# Toxic transports
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ToxicConfig:
    """One fault-injecting transport profile (toxiproxy-style).

    Attributes:
        latency: wall seconds added to every frame drain.
        jitter: fraction of *latency* the delay wanders by (uniform in
            ``[latency*(1-jitter), latency*(1+jitter)]``).
        stall_every: every Nth drain additionally stalls; 0 disables.
        stall_seconds: length of each injected stall — set it above the
            peer's ``send_timeout`` to exercise the timeout/retry path.
        cut_after_bytes: sever the connection mid-frame once this many
            payload bytes have been written; ``None`` disables.  After
            the cut every write raises :class:`ConnectionResetError`.
    """

    latency: float = 0.0
    jitter: float = 0.0
    stall_every: int = 0
    stall_seconds: float = 0.0
    cut_after_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.stall_every < 0:
            raise ValueError(
                f"stall_every must be >= 0, got {self.stall_every}"
            )
        if self.stall_seconds < 0:
            raise ValueError(
                f"stall_seconds must be >= 0, got {self.stall_seconds}"
            )
        if self.cut_after_bytes is not None and self.cut_after_bytes < 0:
            raise ValueError(
                f"cut_after_bytes must be >= 0, got {self.cut_after_bytes}"
            )

    @property
    def empty(self) -> bool:
        return (
            self.latency == 0.0
            and self.stall_every == 0
            and self.cut_after_bytes is None
        )


class ToxicWriter:
    """A StreamWriter that injects latency, stalls and mid-frame cuts.

    Duck-typed drop-in for the subset of the ``asyncio.StreamWriter``
    API the frame protocol uses (``write``/``drain``/``close``/
    ``wait_closed``/``is_closing``/``get_extra_info``).  Delays are
    served inside :meth:`drain`, so a caller bounding the drain with
    ``wait_for`` (the gateway's ``send_timeout``) sees an injected
    stall as genuine backpressure.  A cut writes a *prefix* of the
    offending buffer and then aborts the transport — the peer observes
    a connection closed inside a frame.
    """

    def __init__(
        self,
        inner: asyncio.StreamWriter,
        toxic: ToxicConfig,
        rng: Optional[Any] = None,
    ) -> None:
        self.inner = inner
        self.toxic = toxic
        self.rng = rng
        self.writes = 0
        self.stalls = 0
        self.delayed_s = 0.0
        self.cut = False
        self._bytes = 0

    # -- the injected write path ---------------------------------------
    def write(self, data: bytes) -> None:
        if self.cut:
            raise ConnectionResetError("toxic: connection cut")
        self.writes += 1
        cut_at = self.toxic.cut_after_bytes
        if cut_at is not None and self._bytes + len(data) > cut_at:
            keep = max(0, cut_at - self._bytes)
            if keep:
                self.inner.write(data[:keep])
            self._bytes += keep
            self.cut = True
            transport = self.inner.transport
            if transport is not None:
                transport.abort()
            raise ConnectionResetError("toxic: connection cut mid-frame")
        self._bytes += len(data)
        self.inner.write(data)

    async def drain(self) -> None:
        if self.cut:
            raise ConnectionResetError("toxic: connection cut")
        delay = self.toxic.latency
        if delay and self.toxic.jitter:
            draw = float(self.rng.random()) if self.rng is not None else 0.5
            delay *= 1.0 - self.toxic.jitter + 2.0 * self.toxic.jitter * draw
        if (
            self.toxic.stall_every
            and self.writes % self.toxic.stall_every == 0
        ):
            self.stalls += 1
            delay += self.toxic.stall_seconds
        if delay > 0:
            self.delayed_s += delay
            await asyncio.sleep(delay)
        await self.inner.drain()

    # -- passthroughs --------------------------------------------------
    def close(self) -> None:
        self.inner.close()

    async def wait_closed(self) -> None:
        await self.inner.wait_closed()

    def is_closing(self) -> bool:
        return self.inner.is_closing()

    def get_extra_info(self, name: str, default: Any = None) -> Any:
        return self.inner.get_extra_info(name, default)

    @property
    def transport(self) -> Any:
        return self.inner.transport

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ToxicWriter writes={self.writes} stalls={self.stalls} "
            f"cut={self.cut}>"
        )


class ToxicReader:
    """A StreamReader adding one injected delay per frame read.

    Wraps the two methods the frame protocol uses; the delay fires on
    :meth:`read` (the length-prefix read, i.e. once per frame), not on
    :meth:`readexactly`, so a frame is slowed exactly once.
    """

    def __init__(
        self,
        inner: asyncio.StreamReader,
        toxic: ToxicConfig,
        rng: Optional[Any] = None,
    ) -> None:
        self.inner = inner
        self.toxic = toxic
        self.rng = rng
        self.reads = 0
        self.delayed_s = 0.0

    async def _delay(self) -> None:
        delay = self.toxic.latency
        if delay and self.toxic.jitter:
            draw = float(self.rng.random()) if self.rng is not None else 0.5
            delay *= 1.0 - self.toxic.jitter + 2.0 * self.toxic.jitter * draw
        if delay > 0:
            self.delayed_s += delay
            await asyncio.sleep(delay)

    async def read(self, n: int = -1) -> bytes:
        self.reads += 1
        await self._delay()
        return await self.inner.read(n)

    async def readexactly(self, n: int) -> bytes:
        return await self.inner.readexactly(n)

    def at_eof(self) -> bool:
        return self.inner.at_eof()


# ----------------------------------------------------------------------
# Client-side fault plans
# ----------------------------------------------------------------------
class ClientFaultPlan:
    """Per-session chaos, pre-drawn so it replays identically.

    The resilient load-generator client consults this plan (duck-typed,
    see :class:`repro.serve.loadgen._LiveClient`): ``cut_vt`` is the
    virtual chunk stamp at which the client severs its connection once
    (and re-requests anchored on that exact stamp); :meth:`wrap`
    installs client-side toxic transports.
    """

    __slots__ = ("cut_vt", "cut_done", "toxic", "rng")

    def __init__(
        self,
        cut_vt: Optional[float] = None,
        toxic: Optional[ToxicConfig] = None,
        rng: Optional[Any] = None,
    ) -> None:
        self.cut_vt = cut_vt
        self.cut_done = False
        self.toxic = toxic
        self.rng = rng

    def wrap(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Tuple[Any, Any]:
        if self.toxic is None or self.toxic.empty:
            return reader, writer
        return ToxicReader(reader, self.toxic, self.rng), writer

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ClientFaultPlan cut_vt={self.cut_vt} done={self.cut_done}>"


class ClientChaos:
    """Deterministic per-session fault-plan factory.

    Each session's draws come from the named substream
    ``chaos.client.<index>`` of a dedicated :class:`RandomStreams`
    (fixed draw count, fixed order), so plan *decisions* are a pure
    function of ``(seed, index)`` — independent of dispatch order and
    of every other session.

    Args:
        trace: the arrival trace (cut times are offsets from each
            session's own arrival).
        streams: the chaos-side substream factory (scenario seed).
        cut_prob: probability a session severs its own connection once.
        cut_delay: ``(lo, hi)`` virtual seconds after arrival at which
            the cut fires (uniform draw).
        toxic: optional client-side toxic transport profile applied to
            every session.
    """

    def __init__(
        self,
        trace: Trace,
        streams: RandomStreams,
        cut_prob: float = 0.0,
        cut_delay: Tuple[float, float] = (5.0, 30.0),
        toxic: Optional[ToxicConfig] = None,
    ) -> None:
        if not 0.0 <= cut_prob <= 1.0:
            raise ValueError(f"cut_prob must be in [0, 1], got {cut_prob}")
        if cut_delay[0] < 0 or cut_delay[1] < cut_delay[0]:
            raise ValueError(f"bad cut_delay range {cut_delay}")
        self.trace = trace
        self.streams = streams
        self.cut_prob = cut_prob
        self.cut_delay = cut_delay
        self.toxic = toxic
        self.cuts_planned = 0

    def plan_for(self, index: int) -> Optional[ClientFaultPlan]:
        """The plan for trace position *index* (None when fault-free)."""
        rng = self.streams.get(f"chaos.client.{index}")
        # Fixed draw order: eligibility, then offset — so adding fault
        # classes later appends draws instead of shifting these.
        cut = float(rng.random()) < self.cut_prob
        frac = float(rng.random())
        if not cut and (self.toxic is None or self.toxic.empty):
            return None
        cut_vt: Optional[float] = None
        if cut:
            lo, hi = self.cut_delay
            cut_vt = self.trace[index].time + lo + frac * (hi - lo)
            self.cuts_planned += 1
        return ClientFaultPlan(cut_vt=cut_vt, toxic=self.toxic, rng=rng)


# ----------------------------------------------------------------------
# The gateway-side chaos plane
# ----------------------------------------------------------------------
class ChaosPlane:
    """Mirror engine faults into the live gateway, and account for them.

    The policy bridge already *decides* faults deterministically — the
    scenario's :class:`~repro.faults.FaultPlan` fires inside virtual-
    time advance, and failover migrates or drops the affected requests.
    Arming the plane closes the loop to the wall-clock side: every
    engine server crash also kills the corresponding gateway server
    task (supervised trip: postmortem, ``task.trip`` trace, warm
    restart), and every restore is recorded.  The ops endpoint's
    ``chaos`` verb answers from :meth:`report`.
    """

    def __init__(self, gateway: ClusterGateway) -> None:
        self.gateway = gateway
        # Faults are only mirrored (and reported) inside the scenario's
        # declared window.  The gateway's pacing loop keeps advancing
        # virtual time while it drains, and how far it gets is pure
        # wall-clock accident — at compression 60 a few milliseconds of
        # scheduler jitter are whole virtual seconds — so an unbounded
        # plane would record a different fault tail on every run and
        # keep killing server tasks into the teardown.
        self.horizon = float(gateway.bridge.config.duration)
        self.failures: List[FailoverReport] = []
        self.restores: List[int] = []
        self.live_kills = 0
        self.kill_misses = 0
        self.late_failures = 0
        self._armed = False

    def arm(self) -> "ChaosPlane":
        """Hook the bridge's failover manager; idempotent."""
        if self._armed:
            return self
        failover = self.gateway.bridge.sim.failover
        if failover is None:
            raise RuntimeError(
                "scenario has no failover manager — add a `faults` block "
                "(or a retry policy) to the scenario before arming chaos"
            )
        failover.on_fail.append(self._on_fail)
        failover.on_restore.append(self._on_restore)
        self.gateway.chaos = self
        self._armed = True
        return self

    # -- failover hooks (fire inside bridge.advance) -------------------
    def _on_fail(self, report: FailoverReport) -> None:
        if report.time > self.horizon:
            self.late_failures += 1
            return
        self.failures.append(report)
        reason = (
            f"engine crash of server {report.server_id} "
            f"@vt={report.time:.3f}"
        )

        def _kill() -> None:
            if self.gateway.kill_server_task(report.server_id, reason):
                self.live_kills += 1
            else:
                self.kill_misses += 1

        # Deferred one callback: the hook runs inside the policy loop's
        # engine advance; cancelling a sibling task from there is legal
        # but reentrant — call_soon keeps the kill an ordinary event.
        asyncio.get_running_loop().call_soon(_kill)

    def _on_restore(self, server_id: int) -> None:
        # The engine clock sits at the restore event's scheduled time
        # while the hook runs, so this is the same in-window test as
        # the failure side.
        if self.gateway.bridge.now > self.horizon:
            return
        self.restores.append(server_id)

    # -- accounting ----------------------------------------------------
    def affected_requests(self) -> Dict[str, List[int]]:
        """Request ids failovers touched: relocated vs dropped."""
        relocated: List[int] = []
        dropped: List[int] = []
        for report in self.failures:
            relocated.extend(report.relocated)
            dropped.extend(report.dropped)
        return {"relocated": relocated, "dropped": dropped}

    def report(self) -> Dict[str, Any]:
        """JSON-ready plane summary (the ops ``chaos`` verb's body)."""
        return {
            "armed": self._armed,
            "horizon": self.horizon,
            "late_failures": self.late_failures,
            "failures": [
                {
                    "server": r.server_id,
                    "t": round(r.time, 9),
                    "relocated": len(r.relocated),
                    "dropped": len(r.dropped),
                    "survival_ratio": round(r.survival_ratio, 6),
                }
                for r in self.failures
            ],
            "restores": list(self.restores),
            "live_kills": self.live_kills,
            "kill_misses": self.kill_misses,
            "supervisor": self.gateway.sup.report(),
        }


# ----------------------------------------------------------------------
# The harness
# ----------------------------------------------------------------------
def reconcile(
    failures: List[FailoverReport], sessions: List[SessionOutcome]
) -> Dict[str, Any]:
    """Classify every failover-affected request by its client's fate.

    Every request id a failover relocated must belong to a client that
    kept streaming (``migrated``); every dropped id's client must have
    either finished via re-request (``recovered``), been cleanly
    rejected on re-request (``rejected``), exhausted its retry budget
    (``lost``), or errored out (``error``).  ``unmatched`` — a dropped
    id no client ever held — indicates an accounting bug and should be
    empty.
    """
    by_request: Dict[int, SessionOutcome] = {}
    for outcome in sessions:
        for rid in outcome.request_ids:
            by_request[rid] = outcome
    recon: Dict[str, List[int]] = {
        "migrated": [],
        "recovered": [],
        "lost": [],
        "rejected": [],
        "error": [],
        "unmatched": [],
    }
    for report in failures:
        for rid in report.relocated:
            (recon["migrated"] if rid in by_request
             else recon["unmatched"]).append(rid)
        for rid in report.dropped:
            outcome = by_request.get(rid)
            if outcome is None:
                recon["unmatched"].append(rid)
            elif outcome.outcome == "lost":
                recon["lost"].append(rid)
            elif outcome.outcome == "rejected":
                recon["rejected"].append(rid)
            elif outcome.accepted and outcome.reason != "dropped":
                recon["recovered"].append(rid)
            elif outcome.accepted:
                # No retry policy: the drop itself is the terminal
                # reason and the client saw it — accounted, not lost.
                recon["recovered"].append(rid)
            else:
                recon["error"].append(rid)
    affected = sum(len(v) for v in recon.values())
    return {
        "affected": affected,
        "accounted": affected - len(recon["unmatched"]),
        **{key: sorted(ids) for key, ids in recon.items()},
    }


async def run_chaos_serve(
    config: SimulationConfig,
    serve: Optional[ServeConfig] = None,
    retry: Optional[RetryPolicy] = None,
    gateway_toxic: Optional[ToxicConfig] = None,
    client_toxic: Optional[ToxicConfig] = None,
    cut_prob: float = 0.0,
    cut_delay: Tuple[float, float] = (5.0, 30.0),
    duration: Optional[float] = None,
    max_sessions: Optional[int] = None,
    postmortem: Union[str, Path] = "chaos_postmortem.jsonl",
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """One full chaos serve: gateway + resilient loadgen + fault plane.

    Runs the scenario's committed fault plan live (engine crashes mirror
    into gateway task kills), optional toxic transports on both sides,
    and deterministic client-side cuts; then reconciles every affected
    session and audits the runtime for leaks.

    Returns a JSON-ready report whose ``digest`` is the policy decision
    digest — byte-identical across same-seed runs of the same inputs —
    plus ``load``, ``chaos``, ``reconciliation``, ``leaked_tasks``,
    ``parity_clamps`` and ``invariant_violation`` fields (see
    docs/ROBUSTNESS.md, "live chaos").

    An :class:`InvariantViolation` raised by the policy core is caught,
    reported, and leaves the runtime torn down — the caller decides
    whether it fails the run.
    """
    serve = serve if serve is not None else ServeConfig(port=0)
    tracer = obs.Tracer()
    gateway_rng = RandomStreams(seed=config.seed).get("chaos.toxic.gateway")
    wrap = (
        (lambda w: ToxicWriter(w, gateway_toxic, gateway_rng))
        if gateway_toxic is not None and not gateway_toxic.empty
        else None
    )
    gateway = ClusterGateway(
        config, serve, tracer=tracer, wrap_writer=wrap
    )
    recorder = obs.FlightRecorder(
        tracer,
        postmortem,
        provenance=obs.run_provenance(
            seed=config.seed,
            config=config,
            extra={"mode": "chaos-serve", "serve": serve.to_dict()},
        ),
        state=gateway.registry.snapshot,
    )
    gateway.recorder = recorder
    plane = ChaosPlane(gateway).arm()
    await gateway.start()

    live = dataclasses.replace(serve, port=gateway.port)
    trace = arrival_trace(config, duration, max_sessions)
    streams = RandomStreams(seed=config.seed)
    client_chaos = ClientChaos(
        trace, streams, cut_prob=cut_prob, cut_delay=cut_delay,
        toxic=client_toxic,
    )
    generator = LoadGenerator(
        live,
        trace,
        progress=progress,
        retry=retry,
        seed=config.seed,
        faults=client_chaos.plan_for,
    )

    violation: Optional[str] = None
    load = LoadReport()
    try:
        load = await generator.run()
    finally:
        try:
            # Every in-window fault must have fired before the report
            # is cut, however far the wall-paced advance lagged; a
            # no-op when the engine is already past the horizon.  The
            # sleep lets the deferred kill callbacks land while the
            # supervisor is still up.
            gateway.bridge.advance(plane.horizon)
            await asyncio.sleep(0)
            summary = await gateway.stop()
        except InvariantViolation as exc:
            violation = str(exc)
            await _force_teardown(gateway)
            summary = gateway.summary()

    current = asyncio.current_task()
    leaked = sorted(
        task.get_name()
        for task in asyncio.all_tasks()
        if task is not current and not task.done()
    )
    report = {
        "digest": summary["policy"]["decisions_sha"],
        "chaos": plane.report(),
        "reconciliation": reconcile(plane.failures, load.sessions),
        "load": load.to_dict(),
        "summary": summary,
        "parity_clamps": summary["serve"]["parity_clamps"],
        "invariant_violation": violation,
        "leaked_tasks": leaked,
        "cuts_planned": client_chaos.cuts_planned,
        "postmortem": str(postmortem) if recorder.dumps else None,
        "postmortem_dumps": recorder.dumps,
    }
    return report


async def _force_teardown(gateway: ClusterGateway) -> None:
    """Cancel whatever :meth:`ClusterGateway.stop` left running after a
    fatal propagation (stop() aborts mid-await on the first re-raise)."""
    tasks = [t for t in gateway._tasks if not t.done()]
    tasks += [t for t in list(gateway._side_tasks) if not t.done()]
    for task in tasks:
        task.cancel()
    for task in tasks:
        try:
            await task
        except (asyncio.CancelledError, Exception):  # noqa: BLE001
            pass
