"""The gateway's ops endpoint: live telemetry over a second listener.

Operational queries ride the same length-prefixed frame protocol as the
data plane (:mod:`repro.serve.protocol`) but on a **separate TCP port**,
so scraping stats can never contend with the admission handshake path
and an overloaded data listener stays diagnosable.  One frame in, one
frame out, connection per query — the endpoint is stateless.

Verb vocabulary (client sends ``{"type": "ops", "verb": <verb>}``):

=============== ====================================================
verb            reply
=============== ====================================================
``stats``       ``ops.reply`` — atomic metrics snapshot + run framing
``health``      ``ops.reply`` — status verdict + pacing gauges
``sessions``    ``ops.reply`` — live session rows + recent spans
``prometheus``  ``ops.reply`` with the text exposition as *payload*
``chaos``       ``ops.reply`` — live fault-plane report (failures,
                restores, supervisor trips); ``ops.error`` when no
                chaos plane is armed
=============== ====================================================

Unknown or malformed queries get ``{"type": "ops.error", "reason": ...}``
— never a dropped connection, so a probe can distinguish "endpoint
down" from "bad query".

Client side: :func:`ops_query` (async) and :func:`ops_query_sync` (for
the CLI and shell one-liners) speak the same frames.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, TYPE_CHECKING

from repro.obs.prometheus import render_prometheus
from repro.serve.protocol import FrameError, read_frame, write_frame

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.gateway import ClusterGateway

#: Verbs the endpoint answers; kept in sync with docs/SERVING.md.
OPS_VERBS = ("stats", "health", "sessions", "prometheus", "chaos")

#: Wall-clock bound on one ops exchange (read query, write reply).
_OPS_TIMEOUT = 5.0


class OpsEndpoint:
    """The second listener; answers ``ops`` frames about *gateway*.

    Replies are computed synchronously on the event loop, so every
    answer is a consistent point-in-time view: no session can open,
    close or migrate between two fields of one reply.
    """

    def __init__(self, gateway: "ClusterGateway") -> None:
        self.gateway = gateway
        self.queries = 0
        self.errors = 0
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def port(self) -> int:
        """The bound ops TCP port."""
        assert self._server is not None, "ops endpoint not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        serve = self.gateway.serve
        assert serve.ops_port is not None
        self._server = await asyncio.start_server(
            self._handle, host=serve.host, port=serve.ops_port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                frame = await read_frame(reader, timeout=_OPS_TIMEOUT)
            except (FrameError, asyncio.TimeoutError, ConnectionError,
                    OSError):
                self.errors += 1
                return
            if frame is None:
                return
            header, payload = self._answer(frame.header)
            try:
                await write_frame(
                    writer, header, payload, timeout=_OPS_TIMEOUT
                )
            except (asyncio.TimeoutError, ConnectionError, OSError):
                self.errors += 1
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    def _answer(self, query: Dict[str, Any]) -> tuple:
        """One query -> (reply header, reply payload).  Never raises."""
        self.queries += 1
        if query.get("type") != "ops":
            self.errors += 1
            return (
                {
                    "type": "ops.error",
                    "reason": f"unknown frame type {query.get('type')!r}; "
                              f"expected 'ops'",
                },
                b"",
            )
        verb = query.get("verb")
        if verb not in OPS_VERBS:
            self.errors += 1
            return (
                {
                    "type": "ops.error",
                    "reason": f"unknown verb {verb!r}; "
                              f"expected one of {', '.join(OPS_VERBS)}",
                },
                b"",
            )
        gw = self.gateway
        if verb == "stats":
            return ({"type": "ops.reply", "verb": verb,
                     "stats": gw.ops_stats()}, b"")
        if verb == "health":
            return ({"type": "ops.reply", "verb": verb,
                     "health": gw.ops_health()}, b"")
        if verb == "chaos":
            if gw.chaos is None:
                self.errors += 1
                return (
                    {
                        "type": "ops.error",
                        "reason": "no chaos plane armed on this gateway",
                    },
                    b"",
                )
            return ({"type": "ops.reply", "verb": verb,
                     "chaos": gw.chaos.report()}, b"")
        if verb == "sessions":
            recent = query.get("recent", 20)
            if not isinstance(recent, int) or recent < 0:
                recent = 20
            return ({"type": "ops.reply", "verb": verb,
                     "sessions": gw.ops_sessions(recent=recent)}, b"")
        # prometheus: the exposition format is line-oriented text, not
        # JSON — ship it as the frame payload so scrapers get it raw.
        text = render_prometheus(gw.registry).encode("utf-8")
        return ({"type": "ops.reply", "verb": verb,
                 "content_type": "text/plain; version=0.0.4"}, text)


async def ops_query(
    host: str,
    port: int,
    verb: str,
    timeout: float = _OPS_TIMEOUT,
    **fields: Any,
) -> Dict[str, Any]:
    """Ask a running gateway's ops endpoint one question.

    Args:
        host, port: the ops listener (``gateway.ops_port``, or the
            banner line ``repro serve`` prints).
        verb: one of :data:`OPS_VERBS`.
        timeout: wall bound on connect + exchange.
        **fields: extra query fields (e.g. ``recent=50`` for
            ``sessions``).

    Returns:
        The reply header; for ``prometheus`` the exposition text is
        under ``"text"``.

    Raises:
        ConnectionError: endpoint unreachable or connection dropped.
        ValueError: the endpoint answered ``ops.error``.
        asyncio.TimeoutError: the exchange exceeded *timeout*.
    """

    async def _exchange() -> Dict[str, Any]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            await write_frame(
                writer, {"type": "ops", "verb": verb, **fields}
            )
            frame = await read_frame(reader)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        if frame is None:
            raise ConnectionError(
                f"ops endpoint {host}:{port} closed without replying"
            )
        if frame.type == "ops.error":
            raise ValueError(
                f"ops endpoint rejected the query: "
                f"{frame.header.get('reason', '?')}"
            )
        reply = dict(frame.header)
        if frame.payload:
            reply["text"] = frame.payload.decode("utf-8")
        return reply

    return await asyncio.wait_for(_exchange(), timeout)


def ops_query_sync(
    host: str,
    port: int,
    verb: str,
    timeout: float = _OPS_TIMEOUT,
    **fields: Any,
) -> Dict[str, Any]:
    """Blocking wrapper around :func:`ops_query` (CLI entry point)."""
    return asyncio.run(ops_query(host, port, verb, timeout, **fields))


def format_reply(reply: Dict[str, Any]) -> str:
    """Render an ops reply for a terminal: JSON, or raw exposition."""
    if "text" in reply:
        return reply["text"]
    body = {
        k: v for k, v in reply.items() if k not in ("type", "verb", "payload")
    }
    return json.dumps(body, indent=2, sort_keys=True)
