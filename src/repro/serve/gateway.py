"""The cluster gateway: live admission + paced streaming over TCP.

The gateway is the wall-clock incarnation of the paper's *distribution
controller*.  One asyncio process runs:

* an **acceptor** — a TCP listener whose per-connection handler reads
  the client's ``request`` frame (bounded by
  :attr:`ServeConfig.handshake_timeout`) and enqueues the arrival;
* a **policy loop** — pops arrivals from a virtual-time-ordered heap
  once their reorder window has elapsed and runs each through the
  shared :class:`~repro.serve.bridge.PolicyBridge`, answering with an
  ``admit`` or ``reject`` frame.  Between arrivals it advances the
  policy engine to *guard* wall-seconds behind the wall clock (never
  past a buffered arrival), firing the same EFTF boundary events a
  virtual-time run would fire;
* N **server tasks** (one per cluster server) — every
  :attr:`ServeConfig.tick` each task integrates the EFTF workahead
  schedule of its active sessions and feeds the delta into a per-session
  token bucket, then drains the bucket as ``chunk`` frames whose payload
  carries ``bytes_per_megabit`` real bytes per scheduled megabit.  The
  schedule — not the network — is the shaper, so client staging buffers
  behave exactly as in the simulator.  Under elastic membership
  (:mod:`repro.core.elastic`) the task set follows the policy core's
  :class:`~repro.cluster.membership.ClusterMembership`: each epoch bump
  spawns tasks for joiners and departed servers' tasks retire once
  their last session has been handed off;
* a **drain** path — on SIGTERM (wired by ``repro serve``) or
  :meth:`ClusterGateway.stop`, new arrivals are rejected with reason
  ``"draining"``, in-flight sessions run to completion (bounded by
  :attr:`ServeConfig.drain_timeout`), and a provenance-stamped summary
  is returned with every asyncio task joined.

Virtual and wall clocks are affinely related: the clock anchors when
the first arrival's frame is read, placing that arrival
``startup_slack`` wall seconds in the future so its reorder window can
close before its due time.  All parity-relevant reasoning lives in
docs/SERVING.md.
"""

from __future__ import annotations

import asyncio
import heapq
from datetime import datetime, timezone
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro import obs
from repro.cluster.membership import ClusterMembership, ServerLifecycle
from repro.cluster.request import Request, RequestState
from repro.obs.spans import SpanPhase
from repro.serve.bridge import Decision, ParityError, PolicyBridge
from repro.serve.config import ServeConfig
from repro.serve.ops import OpsEndpoint
from repro.serve.supervisor import TaskSupervisor
from repro.serve.protocol import (
    FrameError,
    MAX_PAYLOAD_BYTES,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.simulation import SimulationConfig

#: Below this many megabits a chunk is float noise, not data.
_EPS_MB = 1e-9


class _VirtualClock:
    """Affine map between the event loop's clock and virtual time.

    Unanchored until the first arrival: live runs have no natural t=0
    before traffic exists, and anchoring on the first frame keeps the
    startup slack independent of how long the process sat idle.
    """

    __slots__ = ("compression", "_t0")

    def __init__(self, compression: float) -> None:
        self.compression = compression
        self._t0: Optional[float] = None

    @property
    def anchored(self) -> bool:
        return self._t0 is not None

    def anchor(self, virtual: float, wall: float, slack: float) -> None:
        """Pin the map so ``wall_for(virtual) == wall + slack``."""
        if self._t0 is None:
            self._t0 = wall + slack - virtual / self.compression

    def virtual(self, wall: float) -> float:
        """Virtual time at event-loop time *wall* (>= 0)."""
        if self._t0 is None:
            return 0.0
        return max(0.0, (wall - self._t0) * self.compression)

    def wall_for(self, virtual: float) -> float:
        """Event-loop time at which virtual time *virtual* occurs."""
        assert self._t0 is not None, "clock not anchored"
        return self._t0 + virtual / self.compression


class _TokenBucket:
    """Pacing credit for one session, refilled by the EFTF schedule.

    Unlike a classic rate-limiter bucket there is no drop-on-overflow:
    the credits *are* video data the schedule has already committed to,
    so the capacity bound lives upstream (the scheduler never works
    ahead past the client's staging headroom).  ``burst_mb`` only caps
    how much leaves in a single frame.
    """

    __slots__ = ("tokens", "burst_mb")

    def __init__(self, burst_mb: float) -> None:
        self.tokens = 0.0
        self.burst_mb = burst_mb

    def credit(self, mb: float) -> None:
        if mb > 0.0:
            self.tokens += mb

    def take(self) -> float:
        """Withdraw up to one frame's worth of credit."""
        mb = min(self.tokens, self.burst_mb)
        self.tokens -= mb
        return mb


class _Arrival:
    """One admission request parked in the reorder heap."""

    __slots__ = ("time", "seq", "video", "writer", "opened")

    def __init__(
        self,
        time: float,
        seq: int,
        video: int,
        writer: asyncio.StreamWriter,
        opened: float,
    ) -> None:
        self.time = time
        self.seq = seq
        self.video = video
        self.writer = writer
        self.opened = opened

    def order(self) -> Tuple[float, int]:
        return (self.time, self.seq)


class _Session:
    """Gateway-side state of one admitted stream."""

    __slots__ = (
        "key", "decision", "request", "writer", "bucket", "scheduled_mb",
        "delivered_mb", "chunks", "send_failures", "server_id",
        "migrations", "end_reason", "closed", "last_stamp",
    )

    def __init__(
        self,
        key: int,
        decision: Decision,
        request: Request,
        writer: asyncio.StreamWriter,
        burst_mb: float,
    ) -> None:
        self.key = key
        self.decision = decision
        self.request = request
        self.writer = writer
        self.bucket = _TokenBucket(burst_mb)
        self.scheduled_mb = 0.0   # schedule integral mirrored so far
        self.delivered_mb = 0.0   # megabits actually framed to the client
        self.chunks = 0
        self.send_failures = 0
        self.server_id = request.server_id
        self.migrations = 0
        self.end_reason: Optional[str] = None
        self.closed = False
        self.last_stamp = decision.time  # virtual t of the last chunk


class ClusterGateway:
    """Serve a committed scenario's policy core on a TCP port.

    Args:
        config: the scenario (policy) configuration; decisions come from
            the same :class:`~repro.simulation.Simulation` build a
            virtual-time run would use.
        serve: wall-clock runtime knobs; defaults are tuned for
            loopback tests.
        tracer: optional tracer; receives the policy core's records
            plus ``session.open`` / ``session.close``.

    Usage::

        gateway = ClusterGateway(config, ServeConfig(port=0))
        await gateway.start()
        ...                       # clients connect to gateway.port
        summary = await gateway.stop()
    """

    def __init__(
        self,
        config: SimulationConfig,
        serve: Optional[ServeConfig] = None,
        tracer: Optional[obs.Tracer] = None,
        recorder: Optional[obs.FlightRecorder] = None,
        wrap_writer: Optional[
            Callable[[asyncio.StreamWriter], asyncio.StreamWriter]
        ] = None,
    ) -> None:
        if config.prefix is not None and config.prefix.batching != "none":
            raise ValueError(
                "the live gateway cannot serve chained sessions (a "
                "chained admission has no server stream for the pacing "
                "loop to drain); use prefix batching='none' for "
                "cache-only operation, or run the scenario virtually"
            )
        self.config = config
        self.serve = serve if serve is not None else ServeConfig()
        self.tracer = tracer
        self.recorder = recorder
        #: Optional per-connection transport wrapper — the chaos plane
        #: installs a fault-injecting (toxic) writer here so latency,
        #: stalls and mid-frame cuts hit the real send path.
        self.wrap_writer = wrap_writer
        #: The live chaos plane, when one is armed (repro.serve.chaos);
        #: the ops endpoint's ``chaos`` verb answers from it.
        self.chaos: Optional[Any] = None
        self.bridge = PolicyBridge(config, tracer=tracer)
        self.clock = _VirtualClock(self.serve.compression)
        self.registry = self.bridge.sim.registry
        self.sessions: Dict[int, _Session] = {}
        #: Twice-clocked lifecycle spans, live-queryable via the ops
        #: endpoint and mirrored into the trace (docs/OBSERVABILITY.md).
        self.spans = obs.SpanLog(tracer=tracer)
        self.ops: Optional[OpsEndpoint] = (
            OpsEndpoint(self) if self.serve.ops_port is not None else None
        )
        #: Heartbeat + restart supervision of every gateway loop
        #: (docs/ROBUSTNESS.md, "live chaos").  The recorder is read
        #: lazily — callers may attach it after construction.
        self.sup = TaskSupervisor(
            should_stop=self._should_stop,
            recorder=lambda: self.recorder,
            tracer=tracer,
            now_virtual=lambda: self.bridge.now,
            heartbeat_timeout=self.serve.heartbeat_timeout,
            restart_limit=self.serve.task_restart_limit,
            restart_delay=self.serve.task_restart_delay,
        )

        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started_wall: Optional[float] = None
        self._tasks: List[asyncio.Task] = []
        self._side_tasks: Set[asyncio.Task] = set()
        self._pending: List[Tuple[Tuple[float, int], _Arrival]] = []
        self._wake = asyncio.Event()
        self._stopping = asyncio.Event()
        self._draining = False
        self._seq = 0
        self._drain_rejects = 0
        self._parity_clamps = 0
        self._handshake_errors = 0

        # One chunk per tick per session keeps frames bounded; the cap
        # only binds after a stall (sends catch up over several ticks).
        view_mb = config.system.view_bandwidth
        self._burst_mb = min(
            max(4.0 * self.serve.to_virtual(self.serve.tick) * view_mb, 1.0),
            MAX_PAYLOAD_BYTES / self.serve.bytes_per_megabit,
        )

        reg = self.registry
        reg.gauge("serve.sessions.active", supplier=lambda: len(self.sessions))
        reg.gauge(
            "serve.arrivals.pending", supplier=lambda: len(self._pending)
        )
        reg.gauge("serve.vt_lag_s", supplier=self.vt_lag)
        reg.gauge("serve.guard_occupancy", supplier=self.guard_occupancy)
        #: Server ids whose ``serve.server.{sid}`` task + gauges exist.
        #: Seed members are instrumented here; elastic joiners are added
        #: by :meth:`_reconcile_membership` at their membership epoch.
        self._instrumented_servers: Set[int] = set()
        self._membership_epoch = 0
        for sid in self.bridge.controller.servers:
            self._register_server_gauges(sid)
        self._c_admits = reg.counter("serve.admits")
        self._c_rejects = reg.counter("serve.rejects")
        self._c_chunks = reg.counter("serve.chunks")
        self._c_chunk_mb = reg.counter("serve.chunk_megabits")
        self._c_retries = reg.counter("serve.send_retries")
        self._c_client_retries = reg.counter("serve.client_retries")
        self._h_buffer = reg.histogram("serve.client_buffer_mb")
        self._h_latency = reg.histogram("serve.chunk_latency_ms")
        reg.gauge("serve.task_trips", supplier=lambda: self.sup.trips)
        reg.gauge("serve.task_restarts", supplier=lambda: self.sup.restarts)

    def _should_stop(self) -> bool:
        """Supervisor predicate (``_stopping`` is bound after ``sup``)."""
        return self._stopping.is_set()

    def _membership(self) -> Optional[ClusterMembership]:
        """The policy core's membership ledger (None on old configs)."""
        return getattr(self.bridge.controller, "membership", None)

    def _register_server_gauges(self, sid: int) -> None:
        """Register the per-server load gauges for *sid* (idempotent
        via :attr:`_instrumented_servers`)."""
        if sid in self._instrumented_servers:
            return
        self._instrumented_servers.add(sid)
        reg = self.registry
        reg.gauge(
            f"serve.server.{sid}.sessions",
            supplier=lambda s=sid: self._server_row(s)["sessions"],
        )
        reg.gauge(
            f"serve.server.{sid}.scheduled_mb_s",
            supplier=lambda s=sid: self._server_row(s)["scheduled_mb_s"],
        )
        reg.gauge(
            f"serve.server.{sid}.bucket_mb",
            supplier=lambda s=sid: self._server_row(s)["bucket_mb"],
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listeners and start the policy and server loops."""
        if self._server is not None:
            raise RuntimeError("gateway already started")
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.serve.host, port=self.serve.port
        )
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._started_wall = loop.time()
        if self.ops is not None:
            await self.ops.start()
        self._tasks.append(
            self.sup.spawn(
                "serve.policy", self._policy_loop, where="policy_loop"
            )
        )
        for sid in self.bridge.controller.servers:
            self._spawn_server_task(sid)
        membership = self._membership()
        if membership is not None:
            self._membership_epoch = membership.epoch
        if self.tracer is not None:
            self._tasks.append(
                self.sup.spawn(
                    "serve.stats", self._stats_loop, where="stats_loop"
                )
            )

    def kill_server_task(self, server_id: int, reason: str = "chaos") -> bool:
        """Crash one server task as a live fault (the chaos kill switch).

        The supervisor cancels the loop's child mid-tick — exactly as an
        abrupt process death would look from the event loop — dumps a
        postmortem, and restarts the loop within its budget.  Sessions
        owned by the dead "server" keep their engine-side requests; the
        policy core's failover decides (deterministically) which ones
        migrate and which drop.  Returns False when the task was not
        running (already tripped, or the id is unknown).
        """
        return self.sup.inject_crash(f"serve.server.{server_id}", reason)

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``ServeConfig(port=0)``)."""
        assert self._server is not None, "gateway not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def ops_port(self) -> int:
        """The ops endpoint's bound TCP port."""
        assert self.ops is not None, "ops endpoint disabled (ops_port=None)"
        return self.ops.port

    def begin_drain(self) -> None:
        """Stop admitting; keep pacing.  Idempotent, sync (signal-safe)."""
        self._draining = True
        self._wake.set()

    async def drain(self) -> None:
        """Wait for in-flight sessions to finish (bounded), then force-
        close the stragglers with an ``end reason="drained"`` frame."""
        self.begin_drain()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.serve.drain_timeout
        while self.sessions and loop.time() < deadline:
            await asyncio.sleep(self.serve.tick)
        for session in list(self.sessions.values()):
            await self._close_session(session, "drained", notify=True)

    async def stop(self) -> Dict[str, Any]:
        """Drain, tear everything down, and return the run summary.

        Safe to call exactly once; afterwards no task, transport or
        listener created by the gateway remains alive.
        """
        await self.drain()
        self._stopping.set()
        self._wake.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.ops is not None:
            await self.ops.stop()
        await self.sup.close()
        for task in self._tasks:
            await task
        # Connection handlers park on their client's EOF; closing the
        # transports (done in _close_session) unblocks them.
        for task in list(self._side_tasks):
            try:
                await asyncio.wait_for(task, self.serve.drain_timeout)
            except asyncio.TimeoutError:  # pragma: no cover - defensive
                task.cancel()
        return self.summary()

    # ------------------------------------------------------------------
    # Acceptor
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._side_tasks.add(task)
            task.add_done_callback(self._side_tasks.discard)
        if self.wrap_writer is not None:
            writer = self.wrap_writer(writer)
        try:
            await self._serve_connection(reader, writer)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        loop = asyncio.get_running_loop()
        try:
            frame = await read_frame(
                reader, timeout=self.serve.handshake_timeout
            )
        except (FrameError, asyncio.TimeoutError, ConnectionError, OSError):
            self._handshake_errors += 1
            return
        if frame is None or frame.type != "request":
            self._handshake_errors += 1
            return
        try:
            video = int(frame.header["video"])
            time = float(frame.header["t"])
            retry = int(frame.header.get("retry", 0))
        except (KeyError, TypeError, ValueError):
            self._handshake_errors += 1
            await self._try_send(
                writer, {"type": "reject", "reason": "malformed request"}
            )
            return
        if retry > 0:
            self._c_client_retries.inc()

        now = loop.time()
        self.clock.anchor(time, now, self.serve.startup_slack)
        self._seq += 1
        arrival = _Arrival(time, self._seq, video, writer, now)
        self.spans.record(
            arrival.seq, SpanPhase.ACCEPT, now, time, video=video,
            retry=retry,
        )
        heapq.heappush(self._pending, (arrival.order(), arrival))
        self._wake.set()

        # Park until the session (or a reject) closes the transport;
        # reading also notices a client that hangs up early.
        try:
            while True:
                tail = await read_frame(reader)
                if tail is None:
                    break
        except (FrameError, ConnectionError, OSError):
            pass
        session = self.sessions.get(arrival.seq)
        if session is not None:
            await self._close_session(session, "client_closed", notify=False)

    # ------------------------------------------------------------------
    # Policy loop
    # ------------------------------------------------------------------
    async def _policy_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while not self._stopping.is_set():
            self.sup.beat("serve.policy")
            timeout = self.serve.tick
            if self._pending:
                due = (
                    self.clock.wall_for(self._pending[0][1].time)
                    + self.serve.reorder_window
                )
                timeout = min(timeout, max(0.0, due - loop.time()))
            try:
                await asyncio.wait_for(self._wake.wait(), timeout)
                self._wake.clear()
            except asyncio.TimeoutError:
                pass

            while self._pending:
                arrival = self._pending[0][1]
                due = (
                    self.clock.wall_for(arrival.time)
                    + self.serve.reorder_window
                )
                if loop.time() < due and not self._draining:
                    break
                heapq.heappop(self._pending)
                self._process_arrival(arrival)

            # Lagged pacing advance: fire EFTF boundary events up to
            # `guard` wall-seconds behind the wall clock, but never past
            # a still-buffered arrival (the parity guard).
            if self.clock.anchored and not self._stopping.is_set():
                safe_vt = self.clock.virtual(loop.time() - self.serve.guard)
                if self._pending:
                    safe_vt = min(safe_vt, self._pending[0][1].time)
                self.bridge.advance(safe_vt)
                self._reconcile_membership()

    def _process_arrival(self, arrival: _Arrival) -> None:
        wall = self._loop.time() if self._loop is not None else 0.0
        if self._draining:
            self._drain_rejects += 1
            self._c_rejects.inc()
            self.spans.record(
                arrival.seq, SpanPhase.REJECT, wall, arrival.time,
                reason="draining",
            )
            self._respond(
                arrival.writer,
                {"type": "reject", "reason": "draining", "t": arrival.time},
                close=True,
            )
            return
        time = arrival.time
        if time < self.bridge.now:
            # An arrival outran the guard window (pathological wall-
            # clock stall).  Clamp to "now" so service continues, and
            # count it — the parity test asserts this stays at zero.
            self._parity_clamps += 1
            time = self.bridge.now
        try:
            decision = self.bridge.submit(time, arrival.video)
        except ParityError:  # pragma: no cover - clamped above
            self._handshake_errors += 1
            self._respond(
                arrival.writer,
                {"type": "reject", "reason": "internal error"},
                close=True,
            )
            return

        if not decision.accepted:
            self._c_rejects.inc()
            self.spans.record(
                arrival.seq, SpanPhase.REJECT, wall, decision.time,
                reason=decision.outcome, request=decision.request,
            )
            self._respond(
                arrival.writer,
                {
                    "type": "reject",
                    "reason": decision.outcome,
                    "t": decision.time,
                    "request": decision.request,
                },
                close=True,
            )
            return

        request = self.bridge.request_of(decision)
        assert request is not None, "accepted request missing from cluster"
        session = _Session(
            arrival.seq, decision, request, arrival.writer, self._burst_mb
        )
        self.sessions[arrival.seq] = session
        self._c_admits.inc()
        self.spans.record(
            arrival.seq, SpanPhase.ADMIT, wall, decision.time,
            request=decision.request, server=decision.server,
            migrated=decision.migrations > 0,
            epoch=self._membership_epoch,
        )
        if self.tracer is not None:
            peer = arrival.writer.get_extra_info("peername")
            self.tracer.emit(
                obs.TraceKind.SESSION_OPEN,
                decision.time,
                request=decision.request,
                video=decision.video,
                server=decision.server,
                peer=str(peer[1]) if peer else "?",
            )
        self._respond(
            arrival.writer,
            {
                "type": "admit",
                "t": decision.time,
                "request": decision.request,
                "video": decision.video,
                "server": decision.server,
                "size_mb": round(request.video.size, 9),
                "view_mb_s": request.view_bandwidth,
                "migrated": decision.migrations > 0,
            },
        )

    def _respond(
        self,
        writer: asyncio.StreamWriter,
        header: Dict[str, Any],
        close: bool = False,
    ) -> None:
        """Send a control frame from the (sync) policy path.

        The bytes go to the transport *synchronously* so a pacing chunk
        scheduled in the same tick can never overtake the ``admit``
        frame; only the drain (backpressure) is deferred to a task.
        """
        try:
            writer.write(encode_frame(header))
        except (ConnectionError, OSError):  # pragma: no cover - racy peer
            return

        async def _flush() -> None:
            try:
                await asyncio.wait_for(
                    writer.drain(), self.serve.send_timeout
                )
            except (asyncio.TimeoutError, ConnectionError, OSError):
                pass
            if close:
                writer.close()

        task = asyncio.get_running_loop().create_task(_flush())
        self._side_tasks.add(task)
        task.add_done_callback(self._side_tasks.discard)

    async def _try_send(
        self,
        writer: asyncio.StreamWriter,
        header: Dict[str, Any],
        payload: bytes = b"",
    ) -> bool:
        """One bounded-retry send; True when the frame was drained."""
        for attempt in range(self.serve.send_retries + 1):
            try:
                await write_frame(
                    writer, header, payload, timeout=self.serve.send_timeout
                )
                return True
            except asyncio.TimeoutError:
                # Transient backpressure: retry within the bounded
                # budget (the next drain sees the same buffered bytes).
                if attempt < self.serve.send_retries:
                    self._c_retries.inc()
                continue
            except (ConnectionError, OSError):
                return False
        return False

    # ------------------------------------------------------------------
    # Server tasks (data plane)
    # ------------------------------------------------------------------
    def _spawn_server_task(self, sid: int) -> None:
        """Spawn (and instrument) the pacing task for server *sid*."""
        self._register_server_gauges(sid)
        self._tasks.append(
            self.sup.spawn(
                f"serve.server.{sid}",
                lambda s=sid: self._server_loop(s),
                where=f"server_loop.{sid}",
            )
        )

    def _reconcile_membership(self) -> None:
        """Align the task set with the policy core's membership epoch.

        Called from the policy loop right after every ``bridge.advance``
        — the only place cluster state moves — so a ``scale_out`` event
        fired during the advance has its ``serve.server.{sid}`` task
        (and gauges) before the next pacing tick.  Departed servers are
        not reaped here; their loops retire themselves (see
        :meth:`_server_loop`).
        """
        membership = self._membership()
        if membership is None or membership.epoch == self._membership_epoch:
            return
        self._membership_epoch = membership.epoch
        for sid in self.bridge.controller.servers:
            if sid in self._instrumented_servers:
                continue
            if membership.state(sid) is ServerLifecycle.DEPARTED:
                continue
            self._spawn_server_task(sid)

    async def _server_loop(self, server_id: int) -> None:
        """Pace every session currently hosted by *server_id*.

        Sessions follow their request's ``server_id``, so a DRM
        migration hands the stream to the target server's task at the
        next tick — the live analogue of the switch gap.  When elastic
        scale-in departs the server, the loop returns cleanly once its
        last session has been handed off (a clean factory return ends
        supervision without a restart).
        """
        name = f"serve.server.{server_id}"
        membership = self._membership()
        while not self._stopping.is_set():
            await asyncio.sleep(self.serve.tick)
            self.sup.beat(name)
            if not self.clock.anchored:
                continue
            if (
                membership is not None
                and server_id in membership.states
                and membership.state(server_id) is ServerLifecycle.DEPARTED
                and self._server_row(server_id)["sessions"] == 0
            ):
                return
            now_vt = self.bridge.now
            for key, session in list(self.sessions.items()):
                request = session.request
                owner = (
                    request.server_id
                    if request.server_id is not None
                    else session.server_id
                )
                if owner != server_id or session.closed:
                    continue
                if request.server_id is not None and (
                    request.server_id != session.server_id
                ):
                    session.migrations += 1
                    self.spans.record(
                        session.key, SpanPhase.HANDOFF,
                        self._loop.time() if self._loop else 0.0, now_vt,
                        source=session.server_id, target=request.server_id,
                    )
                    session.server_id = request.server_id
                await self._pump_session(session, now_vt)

    async def _pump_session(self, session: _Session, now_vt: float) -> None:
        request = session.request
        # The EFTF schedule integral at now_vt: between boundary events
        # the rate is constant, so this equals what Request.sync() will
        # record when the engine reaches now_vt.
        scheduled = min(
            request.video.size,
            request.bytes_sent
            + max(0.0, request.rate) * max(0.0, now_vt - request.last_sync),
        )
        session.bucket.credit(scheduled - session.scheduled_mb)
        session.scheduled_mb = max(session.scheduled_mb, scheduled)

        # Drain the whole bucket this tick (several burst-capped frames
        # after a wall-clock stall, one in steady state).  Stamping: the
        # frame that empties the bucket carries ``now_vt`` — at that
        # point cumulative delivery equals the schedule integral, which
        # EFTF keeps ahead of playback; earlier catch-up frames reuse
        # the previous stamp, where the same invariant already held with
        # *less* data delivered.  Client-side underrun accounting thus
        # cannot trip on event-loop jitter, only on a gateway that
        # genuinely under-scheduled.
        while True:
            mb = session.bucket.take()
            if mb <= _EPS_MB:
                break
            if session.bucket.tokens <= _EPS_MB:
                # Clamp to the request's (deterministic) end: the pump
                # can run past finish/drop on the wall-lagged policy
                # clock, and a stamp overshooting it would leak wall
                # jitter into the client's virtual-time chaos decisions.
                finish = request.finish_time
                session.last_stamp = (
                    min(now_vt, finish) if finish is not None else now_vt
                )
            payload = b"\x00" * max(
                1, int(mb * self.serve.bytes_per_megabit)
            )
            first_chunk = session.chunks == 0
            ok = await self._try_send(
                session.writer,
                {
                    "type": "chunk",
                    "t": round(session.last_stamp, 9),
                    "server": session.server_id,
                    "mb": round(mb, 9),
                    "seq": session.chunks,
                },
                payload,
            )
            if not ok:
                await self._close_session(session, "send_failed", notify=False)
                return
            session.chunks += 1
            session.delivered_mb += mb
            self._c_chunks.inc()
            self._c_chunk_mb.inc(mb)
            # Delivery lag behind the schedule: wall now minus the wall
            # time the chunk's virtual stamp maps to.  The pacer trails
            # the wall clock by `guard` on purpose, so steady state
            # reads ~guard*1000 ms; growth beyond that is real lag.
            if self._loop is not None:
                lag_ms = (
                    self._loop.time()
                    - self.clock.wall_for(session.last_stamp)
                ) * 1000.0
                self._h_latency.observe(max(0.0, lag_ms))
            if first_chunk:
                self.spans.record(
                    session.key, SpanPhase.PACING,
                    self._loop.time() if self._loop else 0.0, now_vt,
                    server=session.server_id,
                )

        if request.state is RequestState.DROPPED:
            await self._close_session(session, "dropped", notify=True)
        elif (
            request.state is RequestState.FINISHED
            and session.bucket.tokens <= _EPS_MB
            and session.scheduled_mb >= request.video.size - _EPS_MB
        ):
            self._h_buffer.observe(request.buffer_occupancy(now_vt))
            await self._close_session(session, "finished", notify=True)

    async def _close_session(
        self, session: _Session, reason: str, notify: bool
    ) -> None:
        if session.closed:
            return
        session.closed = True
        session.end_reason = reason
        for key, value in list(self.sessions.items()):
            if value is session:
                del self.sessions[key]
        wall = self._loop.time() if self._loop is not None else 0.0
        if reason == "drained":
            self.spans.record(
                session.key, SpanPhase.DRAIN, wall, self.bridge.now
            )
        self.spans.record(
            session.key, SpanPhase.CLOSE, wall, self.bridge.now,
            reason=reason,
            delivered_mb=round(session.delivered_mb, 9),
            chunks=session.chunks,
        )
        if notify:
            header = {
                "type": "end",
                "reason": reason,
                "request": session.decision.request,
                "delivered_mb": round(session.delivered_mb, 9),
                "chunks": session.chunks,
            }
            if (
                reason in ("dropped", "finished")
                and session.request.finish_time is not None
            ):
                # The exact virtual end time (Request.mark_dropped /
                # mark_finished).  A resilient client re-requests
                # relative to the drop stamp, and resolves a pending
                # chaos cut against the finish stamp — both purely in
                # virtual time, keeping retry timelines byte-identical
                # across same-seed runs.
                header["t"] = round(session.request.finish_time, 9)
            await self._try_send(session.writer, header)
        session.writer.close()
        if self.tracer is not None:
            self.tracer.emit(
                obs.TraceKind.SESSION_CLOSE,
                self.bridge.now,
                request=session.decision.request,
                reason=reason,
                delivered_mb=round(session.delivered_mb, 9),
                chunks=session.chunks,
            )

    # ------------------------------------------------------------------
    # Live telemetry (ops endpoint + serve.stats sampler)
    # ------------------------------------------------------------------
    def vt_lag(self) -> float:
        """Virtual seconds the policy clock trails the wall clock.

        The wall clock implies a virtual "now" through the affine map;
        the pacer deliberately holds the engine ``guard`` wall-seconds
        behind it, so steady state reads ``guard * compression``.
        Growth beyond that means the policy loop is falling behind.
        """
        if self._loop is None or not self.clock.anchored:
            return 0.0
        return max(
            0.0, self.clock.virtual(self._loop.time()) - self.bridge.now
        )

    def guard_occupancy(self) -> float:
        """:meth:`vt_lag` as a fraction of the guard window (~1.0 is
        nominal; > 1 means arrivals may be waiting on the policy loop)."""
        window = self.serve.guard * self.serve.compression
        return self.vt_lag() / window if window > 0 else 0.0

    def uptime(self) -> float:
        """Wall seconds since :meth:`start` (0 before)."""
        if self._loop is None or self._started_wall is None:
            return 0.0
        return self._loop.time() - self._started_wall

    def _server_row(self, server_id: int) -> Dict[str, float]:
        """Live load of one server: session count, scheduled bandwidth
        (EFTF rate sum, Mb/s virtual) and token-bucket fill (Mb)."""
        sessions = 0
        rate = 0.0
        bucket_mb = 0.0
        for session in self.sessions.values():
            request = session.request
            owner = (
                request.server_id
                if request.server_id is not None
                else session.server_id
            )
            if owner != server_id or session.closed:
                continue
            sessions += 1
            rate += max(0.0, request.rate)
            bucket_mb += session.bucket.tokens
        return {
            "sessions": sessions,
            "scheduled_mb_s": round(rate, 6),
            "bucket_mb": round(bucket_mb, 6),
        }

    def _server_rows(self) -> Dict[str, Dict[str, Any]]:
        """Per-server load rows, annotated with the membership lifecycle
        state when the policy core tracks one."""
        membership = self._membership()
        rows: Dict[str, Dict[str, Any]] = {}
        for sid in self.bridge.controller.servers:
            row: Dict[str, Any] = dict(self._server_row(sid))
            if membership is not None and sid in membership.states:
                row["state"] = membership.state(sid).value
            rows[str(sid)] = row
        return rows

    async def _stats_loop(self) -> None:
        """Sample gateway state into ``serve.stats`` trace records.

        The samples are the time series ``repro top --trace`` replays
        and the flight recorder's postmortem window carries — cheap
        enough to always run when a tracer is attached.
        """
        while not self._stopping.is_set():
            await asyncio.sleep(self.serve.stats_interval)
            if self.tracer is None or not self.clock.anchored:
                continue
            self._emit_stats()

    def _emit_stats(self) -> None:
        assert self.tracer is not None
        pct = self._h_latency.percentiles((50.0, 95.0, 99.0))
        self.tracer.emit(
            obs.TraceKind.SERVE_STATS,
            self.bridge.now,
            wall=round(self._loop.time(), 3) if self._loop else 0.0,
            uptime_s=round(self.uptime(), 3),
            admits=int(self._c_admits.value),
            rejects=int(self._c_rejects.value),
            active=len(self.sessions),
            chunks=int(self._c_chunks.value),
            chunk_mb=round(self._c_chunk_mb.value, 6),
            vt_lag_s=round(self.vt_lag(), 6),
            guard_occupancy=round(self.guard_occupancy(), 4),
            latency_ms={
                "p50": pct[50.0], "p95": pct[95.0], "p99": pct[99.0]
            },
            membership_epoch=self._membership_epoch,
            servers=self._server_rows(),
            cache=self._cache_stats(),
        )

    def _cache_stats(self) -> Optional[Dict[str, Any]]:
        """Prefix-tier stats dict, or None when the tier is off."""
        tier = getattr(self.bridge.sim, "prefix_tier", None)
        return tier.stats() if tier is not None else None

    # -- ops verb bodies (framed by repro.serve.ops) -------------------
    def ops_stats(self) -> Dict[str, Any]:
        """``ops stats``: the atomic metrics snapshot plus run framing.

        "Atomic" by construction: the gateway is single-threaded on the
        event loop, so nothing mutates between two instrument reads of
        one snapshot.
        """
        return {
            "wall_utc": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
            "uptime_s": round(self.uptime(), 3),
            "virtual_now": round(self.bridge.now, 9),
            "anchored": self.clock.anchored,
            "draining": self._draining,
            "decisions": len(self.bridge.decisions),
            "cache": self._cache_stats(),
            "metrics": self.registry.snapshot(),
        }

    def ops_health(self) -> Dict[str, Any]:
        """``ops health``: one cheap verdict plus the pacing gauges."""
        if self._draining:
            status = "draining"
        elif not self.clock.anchored:
            status = "idle"
        else:
            status = "serving"
        return {
            "status": status,
            "anchored": self.clock.anchored,
            "uptime_s": round(self.uptime(), 3),
            "virtual_now": round(self.bridge.now, 9),
            "vt_lag_s": round(self.vt_lag(), 6),
            "guard_occupancy": round(self.guard_occupancy(), 4),
            "sessions_active": len(self.sessions),
            "arrivals_pending": len(self._pending),
            "admits": int(self._c_admits.value),
            "rejects": int(self._c_rejects.value),
            "chunks": int(self._c_chunks.value),
            "chunk_mb": round(self._c_chunk_mb.value, 6),
            "client_retries": int(self._c_client_retries.value),
            "supervisor": self.sup.report(),
            "latency_ms": {
                f"p{q:g}": v
                for q, v in self._h_latency.percentiles(
                    (50.0, 95.0, 99.0)
                ).items()
            },
            "membership": (
                self._membership().to_dict()
                if self._membership() is not None
                else None
            ),
            "cache": self._cache_stats(),
            "servers": self._server_rows(),
        }

    def ops_sessions(self, recent: int = 20) -> Dict[str, Any]:
        """``ops sessions``: live per-session rows + recent spans."""
        active = []
        for key in sorted(self.sessions):
            session = self.sessions[key]
            span = self.spans.get(key)
            active.append({
                "key": key,
                "request": session.decision.request,
                "video": session.decision.video,
                "server": session.server_id,
                "phase": span.phase.value if span and span.phase else None,
                "delivered_mb": round(session.delivered_mb, 6),
                "scheduled_mb": round(session.scheduled_mb, 6),
                "bucket_mb": round(session.bucket.tokens, 6),
                "chunks": session.chunks,
                "migrations": session.migrations,
            })
        return {
            "active": active,
            "recent": [s.to_dict() for s in self.spans.recent(recent)],
            "spans_recorded": self.spans.recorded,
        }

    # ------------------------------------------------------------------
    # Summary
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """Provenance-stamped summary of the live run (JSON-ready)."""
        policy = self.bridge.finalize()
        return {
            "provenance": obs.run_provenance(
                seed=self.config.seed,
                config=self.config,
                extra={"mode": "serve", "serve": self.serve.to_dict()},
            ),
            "policy": policy,
            "serve": {
                "admits": int(self._c_admits.value),
                "rejects": int(self._c_rejects.value),
                "drain_rejects": self._drain_rejects,
                "chunks": int(self._c_chunks.value),
                "chunk_megabits": round(self._c_chunk_mb.value, 6),
                "send_retries": int(self._c_retries.value),
                "client_retries": int(self._c_client_retries.value),
                "parity_clamps": self._parity_clamps,
                "handshake_errors": self._handshake_errors,
                "open_sessions": len(self.sessions),
                "membership": (
                    self._membership().to_dict()
                    if self._membership() is not None
                    else None
                ),
                "supervisor": self.sup.report(),
                "client_buffer_mb": self._h_buffer.snapshot(),
                "chunk_latency_ms": self._h_latency.snapshot(),
            },
            "decisions": [d.to_wire() for d in self.bridge.decisions],
        }
