"""Wire protocol: length-prefixed JSON frames with optional payload.

Every message between load generator, gateway and server tasks is one
**frame**::

    +----------------+---------------------+------------------+
    | header length  | JSON header         | payload bytes    |
    | 4 bytes, BE    | UTF-8, no newlines  | header["payload"]|
    +----------------+---------------------+------------------+

The header is a flat JSON object whose ``"type"`` key names the
message; a header may declare ``"payload"`` (a byte count), in which
case exactly that many raw bytes follow.  Chunk frames use the payload
to carry (scaled-down) video data so the data plane moves real bytes;
control frames have no payload.

Message vocabulary (full field tables in docs/SERVING.md):

========== ============ ==========================================
direction  type         meaning
========== ============ ==========================================
C -> G     ``request``  admission request (``video``, virtual ``t``;
                        optional ``retry`` announces the k-th
                        reconnect attempt of a resilient client)
G -> C     ``admit``    accepted (``server``, ``size_mb``, rates)
G -> C     ``reject``   denied (``reason``)
G -> C     ``chunk``    paced data (``t``, ``server``, ``mb`` +payload)
G -> C     ``end``      session over (``reason``, ``delivered_mb``;
                        ``reason="dropped"``/``"finished"`` carry
                        ``t``, the exact virtual end time — a
                        resilient client anchors re-requests and
                        resolves pending chaos cuts on it)
========== ============ ==========================================

The codec is deliberately tiny and symmetric: :func:`encode_frame` is
the only writer, :func:`read_frame` the only reader, and both enforce
the same bounds so a malformed or hostile peer fails fast instead of
exhausting memory.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, NamedTuple, Optional

#: Upper bound on the JSON header, far above any legitimate message —
#: a peer announcing more is treated as a framing error, not a reason
#: to allocate.
MAX_HEADER_BYTES = 1 << 20

#: Upper bound on a single frame's payload (scaled chunk data is a few
#: hundred bytes; one megabyte is already three orders above that).
MAX_PAYLOAD_BYTES = 1 << 20

_LEN = struct.Struct(">I")


class FrameError(ValueError):
    """Malformed frame on the wire (bad length, bad JSON, bad type)."""


class Frame(NamedTuple):
    """One decoded frame: the header dict plus its raw payload."""

    header: Dict[str, Any]
    payload: bytes

    @property
    def type(self) -> str:
        return str(self.header.get("type", ""))


def encode_frame(header: Dict[str, Any], payload: bytes = b"") -> bytes:
    """Serialise one frame; ``header["payload"]`` is set automatically.

    Raises:
        FrameError: if the encoded header or payload exceeds the
            protocol bounds.
    """
    if payload:
        header = dict(header, payload=len(payload))
    body = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_HEADER_BYTES:
        raise FrameError(f"header too large: {len(body)} bytes")
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise FrameError(f"payload too large: {len(payload)} bytes")
    return _LEN.pack(len(body)) + body + payload


async def read_frame(
    reader: asyncio.StreamReader, timeout: Optional[float] = None
) -> Optional[Frame]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    Args:
        reader: the connection's stream reader.
        timeout: optional per-frame wall-clock bound, seconds.

    Raises:
        FrameError: on a malformed frame (oversized header, truncated
            body, undecodable JSON, or a non-object header).
        asyncio.TimeoutError: when *timeout* elapses mid-frame.
    """

    async def _read() -> Optional[Frame]:
        prefix = await reader.read(_LEN.size)
        if not prefix:
            return None  # clean EOF between frames
        while len(prefix) < _LEN.size:
            more = await reader.read(_LEN.size - len(prefix))
            if not more:
                raise FrameError("connection closed inside a length prefix")
            prefix += more
        (length,) = _LEN.unpack(prefix)
        if length > MAX_HEADER_BYTES:
            raise FrameError(f"declared header length {length} exceeds bound")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise FrameError(
                f"connection closed inside a frame body "
                f"({len(exc.partial)}/{length} bytes)"
            ) from None
        try:
            header = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise FrameError(f"undecodable frame header: {exc}") from None
        if not isinstance(header, dict):
            raise FrameError(
                f"frame header must be a JSON object, "
                f"got {type(header).__name__}"
            )
        payload = b""
        declared = header.get("payload", 0)
        if declared:
            if not isinstance(declared, int) or not (
                0 < declared <= MAX_PAYLOAD_BYTES
            ):
                raise FrameError(f"bad payload length {declared!r}")
            try:
                payload = await reader.readexactly(declared)
            except asyncio.IncompleteReadError:
                raise FrameError("connection closed inside a payload") from None
        return Frame(header, payload)

    if timeout is None:
        return await _read()
    return await asyncio.wait_for(_read(), timeout)


async def write_frame(
    writer: asyncio.StreamWriter,
    header: Dict[str, Any],
    payload: bytes = b"",
    timeout: Optional[float] = None,
) -> None:
    """Encode and send one frame, draining the transport.

    Raises:
        asyncio.TimeoutError: when the drain exceeds *timeout* (the
            peer is not reading — backpressure surfaced as an error the
            caller's retry policy can bound).
        ConnectionError / OSError: transport failures, propagated.
    """
    writer.write(encode_frame(header, payload))
    if timeout is None:
        await writer.drain()
    else:
        await asyncio.wait_for(writer.drain(), timeout)
