"""Load generator: live clients replaying a workload arrival process.

The client side of docs/SERVING.md.  :func:`arrival_trace` materialises
the same calibrated Poisson/Zipf workload the simulator would generate
for a scenario (same seed-derived substreams, same catalog calibration,
via :mod:`repro.workload`); :class:`LoadGenerator` replays it in wall
time — each arrival's virtual time divided by the compression factor —
opening one TCP connection per request.

Each :class:`_LiveClient` models the paper's client: it requests a
video, and on admission maintains a **staging buffer** filled by the
gateway's paced chunks and drained by playback at the view bandwidth.
Underrun accounting runs in *virtual* time using the chunk frames'
embedded timestamps, so a verdict of "zero underruns" reflects the
schedule the gateway actually produced, not the wall-clock jitter of a
busy CI host: at each chunk the client checks that the data delivered
so far covers playback up to that chunk's virtual time (playback
starting at the first chunk).  Under EFTF's minimum-flow guarantee the
transmitted prefix always covers playback from admission, so a
correctly paced gateway can never trip it.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.serve.config import ServeConfig
from repro.serve.protocol import FrameError, read_frame, write_frame
from repro.sim.rng import RandomStreams
from repro.simulation import SimulationConfig
from repro.workload.arrivals import calibrated_arrival_rate
from repro.workload.catalog import make_catalog
from repro.workload.trace import RequestSpec, Trace, generate_trace
from repro.workload.zipf import ZipfPopularity

#: Playback-coverage slack, Mb: absorbs float noise in chunk accounting.
_EPS_MB = 1e-6


def arrival_trace(
    config: SimulationConfig,
    duration: Optional[float] = None,
    max_sessions: Optional[int] = None,
) -> Trace:
    """The workload a scenario implies, materialised for live replay.

    Built from the scenario's own seed and calibration — catalog,
    Zipf(θ) demand and load-calibrated Poisson rate — through the same
    :mod:`repro.workload` helpers the simulator uses, on a dedicated
    RNG substream so generating a trace never perturbs a simulation of
    the same seed.
    """
    streams = RandomStreams(seed=config.seed)
    system = config.system
    catalog = make_catalog(
        system.n_videos,
        system.video_length_range,
        streams.get("catalog"),
        view_bandwidth=system.view_bandwidth,
    )
    popularity = ZipfPopularity(system.n_videos, config.theta)
    rate = calibrated_arrival_rate(
        popularity, catalog, system.total_bandwidth, load=config.load
    )
    trace = generate_trace(
        duration if duration is not None else config.duration,
        rate,
        popularity,
        streams.get("serve.trace"),
    )
    if max_sessions is not None and len(trace) > max_sessions:
        trace = Trace(trace.requests[:max_sessions])
    return trace


@dataclass
class SessionOutcome:
    """One live session as the client experienced it."""

    index: int                      #: position in the trace
    time: float                     #: virtual arrival time
    video: int
    outcome: str                    #: admission outcome / error class
    request: Optional[int] = None   #: cluster request id (from admit)
    server: Optional[int] = None    #: first hosting server
    reason: Optional[str] = None    #: reject reason or end reason
    size_mb: float = 0.0
    delivered_mb: float = 0.0       #: megabits received in chunk frames
    payload_bytes: int = 0          #: raw payload bytes received
    chunks: int = 0
    migrations: int = 0             #: observed server handoffs
    underruns: int = 0              #: staging-buffer misses (virtual)
    max_buffer_mb: float = 0.0      #: peak staging occupancy seen
    wall_seconds: float = 0.0

    @property
    def accepted(self) -> bool:
        return self.outcome in ("accepted", "accepted_with_migration")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "t": round(self.time, 9),
            "video": self.video,
            "outcome": self.outcome,
            "request": self.request,
            "server": self.server,
            "reason": self.reason,
            "size_mb": round(self.size_mb, 6),
            "delivered_mb": round(self.delivered_mb, 6),
            "payload_bytes": self.payload_bytes,
            "chunks": self.chunks,
            "migrations": self.migrations,
            "underruns": self.underruns,
            "max_buffer_mb": round(self.max_buffer_mb, 6),
            "wall_seconds": round(self.wall_seconds, 3),
        }


@dataclass
class LoadReport:
    """Aggregate of one load-generator run."""

    sessions: List[SessionOutcome] = field(default_factory=list)
    peak_concurrency: int = 0

    @property
    def accepted(self) -> int:
        return sum(1 for s in self.sessions if s.accepted)

    @property
    def rejected(self) -> int:
        return sum(1 for s in self.sessions if s.outcome == "rejected")

    @property
    def errors(self) -> int:
        return sum(1 for s in self.sessions if s.outcome == "error")

    @property
    def underruns(self) -> int:
        return sum(s.underruns for s in self.sessions)

    @property
    def delivered_mb(self) -> float:
        return sum(s.delivered_mb for s in self.sessions)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sessions": len(self.sessions),
            "accepted": self.accepted,
            "rejected": self.rejected,
            "errors": self.errors,
            "underruns": self.underruns,
            "delivered_mb": round(self.delivered_mb, 6),
            "peak_concurrency": self.peak_concurrency,
            "outcomes": [s.to_dict() for s in self.sessions],
        }


class _LiveClient:
    """One connection: request, then buffer-and-play until ``end``."""

    def __init__(
        self, serve: ServeConfig, index: int, spec: RequestSpec
    ) -> None:
        self.serve = serve
        self.index = index
        self.spec = spec
        self.outcome = SessionOutcome(
            index=index, time=spec.time, video=spec.video_id, outcome="error"
        )

    async def run(self) -> SessionOutcome:
        loop = asyncio.get_running_loop()
        started = loop.time()
        try:
            reader, writer = await asyncio.open_connection(
                self.serve.host, self.serve.port
            )
        except (ConnectionError, OSError) as exc:
            self.outcome.reason = f"connect: {exc}"
            return self.outcome
        try:
            await self._session(reader, writer)
        except (FrameError, ConnectionError, OSError) as exc:
            self.outcome.outcome = "error"
            self.outcome.reason = f"{type(exc).__name__}: {exc}"
        except asyncio.TimeoutError:
            self.outcome.outcome = "error"
            self.outcome.reason = "timeout waiting for gateway"
        finally:
            self.outcome.wall_seconds = loop.time() - started
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        return self.outcome

    async def _session(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        out = self.outcome
        await write_frame(
            writer,
            {
                "type": "request",
                "video": self.spec.video_id,
                "t": round(self.spec.time, 9),
            },
            timeout=self.serve.send_timeout,
        )
        # Admission may lag by startup slack + reorder window + queueing.
        frame = await read_frame(reader, timeout=self.serve.handshake_timeout)
        if frame is None:
            out.reason = "gateway closed before answering"
            return
        if frame.type == "reject":
            out.outcome = "rejected"
            out.reason = str(frame.header.get("reason"))
            out.request = frame.header.get("request")
            return
        if frame.type != "admit":
            out.reason = f"unexpected frame {frame.type!r}"
            return

        out.outcome = "accepted"
        out.request = frame.header.get("request")
        out.server = frame.header.get("server")
        out.size_mb = float(frame.header.get("size_mb", 0.0))
        if frame.header.get("migrated"):
            out.outcome = "accepted_with_migration"
        view_mb = float(frame.header.get("view_mb_s", 0.0))

        playback_t0: Optional[float] = None  # virtual playback origin
        last_server = out.server
        while True:
            frame = await read_frame(
                reader, timeout=self.serve.handshake_timeout
            )
            if frame is None:
                out.reason = "disconnected"
                return
            if frame.type == "chunk":
                t = float(frame.header.get("t", 0.0))
                out.delivered_mb += float(frame.header.get("mb", 0.0))
                out.payload_bytes += len(frame.payload)
                out.chunks += 1
                server = frame.header.get("server")
                if server != last_server:
                    out.migrations += 1
                    last_server = server
                if playback_t0 is None:
                    playback_t0 = t
                # Staging-buffer model, virtual time: playback has
                # consumed view_mb * (t - t0); everything delivered
                # beyond that is buffered.
                played = min(out.size_mb, view_mb * (t - playback_t0))
                buffered = out.delivered_mb - played
                if buffered < -_EPS_MB:
                    out.underruns += 1
                out.max_buffer_mb = max(out.max_buffer_mb, buffered)
            elif frame.type == "end":
                out.reason = str(frame.header.get("reason"))
                return
            else:
                out.reason = f"unexpected frame {frame.type!r}"
                return


class LoadGenerator:
    """Replay a trace against a gateway, one live client per arrival.

    Args:
        serve: wall-clock knobs; must match the gateway's ``host``,
            ``port`` and ``compression``.
        trace: the arrival trace to replay; build one with
            :func:`arrival_trace` to reproduce a scenario's workload.
        progress: optional callable given one status line every
            :attr:`ServeConfig.progress_interval` wall seconds (the CLI
            prints it to stderr).  ``None`` (default) runs silently.
    """

    def __init__(
        self,
        serve: ServeConfig,
        trace: Trace,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.serve = serve
        self.trace = trace
        self.progress = progress
        self._active = 0
        self._peak = 0
        self._done = 0
        #: Live outcome objects (clients mutate these in place), so the
        #: reporter can aggregate mid-flight without extra bookkeeping.
        self._outcomes: List[SessionOutcome] = []

    async def _client(self, index: int, spec: RequestSpec) -> SessionOutcome:
        client = _LiveClient(self.serve, index, spec)
        self._outcomes.append(client.outcome)
        self._active += 1
        self._peak = max(self._peak, self._active)
        try:
            return await client.run()
        finally:
            self._active -= 1
            self._done += 1

    def _progress_line(self, chunk_rate: float) -> str:
        chunks = sum(o.chunks for o in self._outcomes)
        underruns = sum(o.underruns for o in self._outcomes)
        return (
            f"loadgen: {self._active} open, "
            f"{self._done}/{len(self.trace)} done, "
            f"{chunks} chunks ({chunk_rate:.0f}/s), "
            f"{underruns} underruns"
        )

    async def _report_loop(self) -> None:
        assert self.progress is not None
        loop = asyncio.get_running_loop()
        last_chunks = 0
        last_wall = loop.time()
        while True:
            await asyncio.sleep(self.serve.progress_interval)
            now = loop.time()
            chunks = sum(o.chunks for o in self._outcomes)
            rate = (chunks - last_chunks) / max(now - last_wall, 1e-9)
            self.progress(self._progress_line(rate))
            last_chunks, last_wall = chunks, now

    async def run(self) -> LoadReport:
        """Dispatch every arrival at its compressed wall time; gather
        all session outcomes (the report preserves trace order)."""
        loop = asyncio.get_running_loop()
        if not len(self.trace):
            return LoadReport()
        reporter: Optional[asyncio.Task] = None
        if self.progress is not None:
            reporter = loop.create_task(
                self._report_loop(), name="loadgen.progress"
            )
        try:
            # Wall origin such that the first arrival fires immediately;
            # the gateway re-anchors on that first frame anyway.
            first_vt = self.trace[0].time
            t0 = loop.time()
            tasks: List[asyncio.Task] = []
            for index, spec in enumerate(self.trace):
                due = t0 + self.serve.to_wall(spec.time - first_vt)
                delay = due - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                tasks.append(
                    loop.create_task(
                        self._client(index, spec), name=f"loadgen.{index}"
                    )
                )
            sessions = list(await asyncio.gather(*tasks))
        finally:
            if reporter is not None:
                reporter.cancel()
                try:
                    await reporter
                except asyncio.CancelledError:
                    pass
        if self.progress is not None:
            self.progress(self._progress_line(0.0))
        return LoadReport(sessions=sessions, peak_concurrency=self._peak)
