"""Load generator: live clients replaying a workload arrival process.

The client side of docs/SERVING.md.  :func:`arrival_trace` materialises
the same calibrated Poisson/Zipf workload the simulator would generate
for a scenario (same seed-derived substreams, same catalog calibration,
via :mod:`repro.workload`); :class:`LoadGenerator` replays it in wall
time — each arrival's virtual time divided by the compression factor —
opening one TCP connection per request.

Each :class:`_LiveClient` models the paper's client: it requests a
video, and on admission maintains a **staging buffer** filled by the
gateway's paced chunks and drained by playback at the view bandwidth.
Underrun accounting runs in *virtual* time using the chunk frames'
embedded timestamps, so a verdict of "zero underruns" reflects the
schedule the gateway actually produced, not the wall-clock jitter of a
busy CI host: at each chunk the client checks that the data delivered
so far covers playback up to that chunk's virtual time (playback
starting at the first chunk).  Under EFTF's minimum-flow guarantee the
transmitted prefix always covers playback from admission, so a
correctly paced gateway can never trip it.

Clients are **resilient** (docs/ROBUSTNESS.md, "live chaos"): a
transport failure or a server-crash drop never escapes a client as a
traceback — it is recorded as a *typed* session error
(:attr:`SessionOutcome.error_type`), and with a
:class:`~repro.faults.retry.RetryPolicy` attached the client reconnects
and re-requests with the same bounded-backoff semantics the simulator's
retry queue uses.  Re-request timestamps are anchored in *virtual* time
(the drop frame's ``t`` stamp, or the pre-drawn cut time of a chaos
plan) plus :attr:`ServeConfig.retry_margin` plus a backoff delay drawn
from a per-attempt named substream — so two same-seed chaos runs replay
byte-identical retry timelines and the parity contract survives client
failures.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.faults.retry import RetryPolicy
from repro.serve.config import ServeConfig
from repro.serve.protocol import FrameError, read_frame, write_frame
from repro.sim.rng import RandomStreams
from repro.simulation import SimulationConfig
from repro.workload.arrivals import calibrated_arrival_rate
from repro.workload.catalog import make_catalog
from repro.workload.trace import RequestSpec, Trace, generate_trace
from repro.workload.zipf import ZipfPopularity

#: Playback-coverage slack, Mb: absorbs float noise in chunk accounting.
_EPS_MB = 1e-6


def arrival_trace(
    config: SimulationConfig,
    duration: Optional[float] = None,
    max_sessions: Optional[int] = None,
) -> Trace:
    """The workload a scenario implies, materialised for live replay.

    Built from the scenario's own seed and calibration — catalog,
    Zipf(θ) demand and load-calibrated Poisson rate — through the same
    :mod:`repro.workload` helpers the simulator uses, on a dedicated
    RNG substream so generating a trace never perturbs a simulation of
    the same seed.
    """
    streams = RandomStreams(seed=config.seed)
    system = config.system
    catalog = make_catalog(
        system.n_videos,
        system.video_length_range,
        streams.get("catalog"),
        view_bandwidth=system.view_bandwidth,
    )
    popularity = ZipfPopularity(system.n_videos, config.theta)
    rate = calibrated_arrival_rate(
        popularity, catalog, system.total_bandwidth, load=config.load
    )
    trace = generate_trace(
        duration if duration is not None else config.duration,
        rate,
        popularity,
        streams.get("serve.trace"),
    )
    if max_sessions is not None and len(trace) > max_sessions:
        trace = Trace(trace.requests[:max_sessions])
    return trace


@dataclass
class SessionOutcome:
    """One live session as the client experienced it."""

    index: int                      #: position in the trace
    time: float                     #: virtual arrival time
    video: int
    outcome: str                    #: admission outcome / error class
    request: Optional[int] = None   #: cluster request id (from admit)
    server: Optional[int] = None    #: first hosting server
    reason: Optional[str] = None    #: reject reason or end reason
    size_mb: float = 0.0
    delivered_mb: float = 0.0       #: megabits received in chunk frames
    payload_bytes: int = 0          #: raw payload bytes received
    chunks: int = 0
    migrations: int = 0             #: observed server handoffs
    underruns: int = 0              #: staging-buffer misses (virtual)
    max_buffer_mb: float = 0.0      #: peak staging occupancy seen
    wall_seconds: float = 0.0
    retries: int = 0                #: reconnect attempts made
    error_type: Optional[str] = None  #: exception class of the last error
    #: Every cluster request id this session was admitted as (one per
    #: successful re-request) — the chaos plane reconciles failover
    #: reports against these.
    request_ids: List[int] = field(default_factory=list)

    @property
    def accepted(self) -> bool:
        return self.outcome in ("accepted", "accepted_with_migration")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "t": round(self.time, 9),
            "video": self.video,
            "outcome": self.outcome,
            "request": self.request,
            "server": self.server,
            "reason": self.reason,
            "size_mb": round(self.size_mb, 6),
            "delivered_mb": round(self.delivered_mb, 6),
            "payload_bytes": self.payload_bytes,
            "chunks": self.chunks,
            "migrations": self.migrations,
            "underruns": self.underruns,
            "max_buffer_mb": round(self.max_buffer_mb, 6),
            "wall_seconds": round(self.wall_seconds, 3),
            "retries": self.retries,
            "error_type": self.error_type,
            "requests": list(self.request_ids),
        }


@dataclass
class LoadReport:
    """Aggregate of one load-generator run."""

    sessions: List[SessionOutcome] = field(default_factory=list)
    peak_concurrency: int = 0

    @property
    def accepted(self) -> int:
        return sum(1 for s in self.sessions if s.accepted)

    @property
    def rejected(self) -> int:
        return sum(1 for s in self.sessions if s.outcome == "rejected")

    @property
    def errors(self) -> int:
        return sum(1 for s in self.sessions if s.outcome == "error")

    @property
    def lost(self) -> int:
        """Sessions that were admitted but never finished (dropped or
        disconnected with the retry budget exhausted)."""
        return sum(1 for s in self.sessions if s.outcome == "lost")

    @property
    def retries(self) -> int:
        """Total client reconnect attempts across the run."""
        return sum(s.retries for s in self.sessions)

    @property
    def underruns(self) -> int:
        return sum(s.underruns for s in self.sessions)

    @property
    def delivered_mb(self) -> float:
        return sum(s.delivered_mb for s in self.sessions)

    def error_types(self) -> Dict[str, int]:
        """Typed error histogram: exception class -> session count."""
        counts: Dict[str, int] = {}
        for s in self.sessions:
            if s.error_type is not None:
                counts[s.error_type] = counts.get(s.error_type, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sessions": len(self.sessions),
            "accepted": self.accepted,
            "rejected": self.rejected,
            "errors": self.errors,
            "lost": self.lost,
            "retries": self.retries,
            "error_types": self.error_types(),
            "underruns": self.underruns,
            "delivered_mb": round(self.delivered_mb, 6),
            "peak_concurrency": self.peak_concurrency,
            "outcomes": [s.to_dict() for s in self.sessions],
        }


#: Transport failures a resilient client absorbs as typed errors.
_CLIENT_ERRORS = (
    FrameError,
    ConnectionError,          # includes ConnectionResetError
    asyncio.IncompleteReadError,
    EOFError,
    OSError,
)


class _LiveClient:
    """One session: request, then buffer-and-play until ``end``.

    Without a retry policy a transport failure ends the session as a
    typed error.  With one, the client walks the bounded-backoff
    reconnect path: each re-request carries a fresh virtual timestamp
    (drop/cut anchor + ``retry_margin`` + a jittered backoff delay
    drawn from the ``serve.client.<i>.retry<k>`` substream) and a
    ``retry`` header field announcing the attempt, so the gateway's
    spans and counters see the reconnect for what it is.

    Args:
        serve: wall-clock knobs (must match the gateway's).
        index: the arrival's position in the trace (substream key).
        spec: what to request and when (virtual time).
        retry: optional bounded-backoff policy; delays are read as
            *virtual* seconds.  ``None`` disables reconnects.
        rng: substream factory for backoff jitter draws (required for
            deterministic retries; ``None`` uses the midpoint draw).
        faults: optional chaos plan for this session (duck-typed, see
            :mod:`repro.serve.chaos`): ``cut_vt`` — pre-drawn virtual
            stamp at which the client deterministically severs its
            connection once; ``wrap(reader, writer)`` — client-side
            toxic transport wrapper.
        wall_for: maps a virtual time to the shared event-loop clock
            (the load generator's dispatch map), so reconnect sleeps
            land exactly where the timestamp promises.
    """

    def __init__(
        self,
        serve: ServeConfig,
        index: int,
        spec: RequestSpec,
        retry: Optional[RetryPolicy] = None,
        rng: Optional[RandomStreams] = None,
        faults: Optional[Any] = None,
        wall_for: Optional[Callable[[float], float]] = None,
    ) -> None:
        self.serve = serve
        self.index = index
        self.spec = spec
        self.retry = retry
        self.rng = rng
        self.faults = faults
        self.wall_for = wall_for
        self.outcome = SessionOutcome(
            index=index, time=spec.time, video=spec.video_id, outcome="error"
        )

    async def run(self) -> SessionOutcome:
        loop = asyncio.get_running_loop()
        started = loop.time()
        out = self.outcome
        t_req = self.spec.time
        attempt = 0
        try:
            while True:
                verdict, anchor = await self._attempt(t_req, attempt)
                if verdict == "done":
                    break
                # verdict in ("dropped", "cut", "disconnected"):
                # retryable when a policy grants another attempt.
                if (
                    self.retry is None
                    or attempt + 1 >= self.retry.max_attempts
                ):
                    if out.accepted or verdict == "dropped":
                        out.outcome = "lost" if self.retry else out.outcome
                    break
                attempt += 1
                out.retries = attempt
                draw = (
                    float(
                        self.rng.get(
                            f"serve.client.{self.index}.retry{attempt}"
                        ).random()
                    )
                    if self.rng is not None
                    else 0.5
                )
                t_req = (
                    anchor
                    + self.serve.to_virtual(self.serve.retry_margin)
                    + self.retry.delay_for(attempt, draw)
                )
                await self._sleep_until(t_req, anchor)
        finally:
            out.wall_seconds = loop.time() - started
        return out

    async def _sleep_until(self, t_req: float, anchor: float) -> None:
        """Park until the re-request's virtual timestamp is due."""
        loop = asyncio.get_running_loop()
        if self.wall_for is not None:
            delay = self.wall_for(t_req) - loop.time()
        else:  # pragma: no cover - standalone client, best effort
            delay = self.serve.to_wall(t_req - anchor)
        if delay > 0:
            await asyncio.sleep(delay)

    async def _attempt(self, t_req: float, attempt: int) -> Tuple[str, float]:
        """One connect/request/stream cycle.

        Returns ``(verdict, anchor)``: verdict ``"done"`` for any
        terminal outcome, else the failure class (``"dropped"``,
        ``"cut"``, ``"disconnected"``) with the virtual time the next
        request should anchor its timestamp on.
        """
        out = self.outcome
        try:
            reader, writer = await asyncio.open_connection(
                self.serve.host, self.serve.port
            )
        except (ConnectionError, OSError) as exc:
            out.error_type = type(exc).__name__
            out.reason = f"connect: {exc}"
            return "disconnected", t_req
        wrap = getattr(self.faults, "wrap", None) if self.faults else None
        if callable(wrap):
            reader, writer = wrap(reader, writer)
        try:
            return await self._session(reader, writer, t_req, attempt)
        except _CLIENT_ERRORS as exc:
            out.error_type = type(exc).__name__
            out.outcome = "error" if not out.accepted else out.outcome
            out.reason = f"{type(exc).__name__}: {exc}"
            return "disconnected", max(t_req, out.time)
        except asyncio.TimeoutError:
            out.error_type = "TimeoutError"
            out.outcome = "error" if not out.accepted else out.outcome
            out.reason = "timeout waiting for gateway"
            return "disconnected", t_req
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _session(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        t_req: float,
        attempt: int,
    ) -> Tuple[str, float]:
        out = self.outcome
        header: Dict[str, Any] = {
            "type": "request",
            "video": self.spec.video_id,
            "t": round(t_req, 9),
        }
        if attempt:
            header["retry"] = attempt
        await write_frame(writer, header, timeout=self.serve.send_timeout)
        # Admission may lag by startup slack + reorder window + queueing.
        frame = await read_frame(reader, timeout=self.serve.handshake_timeout)
        if frame is None:
            out.reason = "gateway closed before answering"
            return "disconnected", t_req
        if frame.type == "reject":
            out.outcome = "rejected"
            out.reason = str(frame.header.get("reason"))
            out.request = frame.header.get("request")
            return "done", t_req
        if frame.type != "admit":
            out.reason = f"unexpected frame {frame.type!r}"
            return "done", t_req

        out.outcome = "accepted"
        out.request = frame.header.get("request")
        if out.request is not None and out.request not in out.request_ids:
            out.request_ids.append(out.request)
        out.server = frame.header.get("server")
        out.size_mb = float(frame.header.get("size_mb", 0.0))
        if frame.header.get("migrated"):
            out.outcome = "accepted_with_migration"
        view_mb = float(frame.header.get("view_mb_s", 0.0))

        cut_vt: Optional[float] = (
            getattr(self.faults, "cut_vt", None) if self.faults else None
        )
        playback_t0: Optional[float] = None  # virtual playback origin
        delivered = 0.0                      # this attempt's delivery
        last_server = out.server
        last_t = t_req
        while True:
            frame = await read_frame(
                reader, timeout=self.serve.handshake_timeout
            )
            if frame is None:
                out.reason = "disconnected"
                out.error_type = out.error_type or "ConnectionClosed"
                return "disconnected", last_t
            if frame.type == "chunk":
                t = float(frame.header.get("t", 0.0))
                last_t = max(last_t, t)
                mb = float(frame.header.get("mb", 0.0))
                out.delivered_mb += mb
                delivered += mb
                out.payload_bytes += len(frame.payload)
                out.chunks += 1
                server = frame.header.get("server")
                if server != last_server:
                    out.migrations += 1
                    last_server = server
                if playback_t0 is None:
                    playback_t0 = t
                # Staging-buffer model, virtual time: playback has
                # consumed view_mb * (t - t0); everything delivered
                # beyond that (this attempt) is buffered.
                played = min(out.size_mb, view_mb * (t - playback_t0))
                buffered = delivered - played
                if buffered < -_EPS_MB:
                    out.underruns += 1
                out.max_buffer_mb = max(out.max_buffer_mb, buffered)
                if (
                    cut_vt is not None
                    and t >= cut_vt
                    and not getattr(self.faults, "cut_done", False)
                ):
                    # Deterministic client-side chaos: sever the
                    # connection at the pre-drawn virtual stamp and
                    # re-request anchored on that same stamp.
                    self.faults.cut_done = True
                    out.reason = "chaos cut"
                    out.error_type = "ChaosCut"
                    return "cut", cut_vt
            elif frame.type == "end":
                out.reason = str(frame.header.get("reason"))
                end_t = frame.header.get("t")
                if (
                    cut_vt is not None
                    and not getattr(self.faults, "cut_done", False)
                    and end_t is not None
                    and cut_vt < float(end_t)
                ):
                    # The pre-drawn cut lands before the stream's true
                    # virtual end, but the chunk that would have fired
                    # it lost a wall-clock race with the end frame.
                    # Resolve the cut in virtual time regardless of
                    # which frame crossed the wire first — the chaos
                    # decision must not depend on event-loop jitter.
                    self.faults.cut_done = True
                    out.reason = "chaos cut"
                    out.error_type = "ChaosCut"
                    return "cut", cut_vt
                if out.reason == "dropped":
                    # The policy core dropped us (server crash).  The
                    # frame carries the exact virtual drop time.
                    anchor = float(end_t) if end_t is not None else last_t
                    return "dropped", anchor
                return "done", last_t
            else:
                out.reason = f"unexpected frame {frame.type!r}"
                return "done", last_t


class LoadGenerator:
    """Replay a trace against a gateway, one live client per arrival.

    Args:
        serve: wall-clock knobs; must match the gateway's ``host``,
            ``port`` and ``compression``.
        trace: the arrival trace to replay; build one with
            :func:`arrival_trace` to reproduce a scenario's workload.
        progress: optional callable given one status line every
            :attr:`ServeConfig.progress_interval` wall seconds (the CLI
            prints it to stderr).  ``None`` (default) runs silently.
        retry: optional :class:`~repro.faults.retry.RetryPolicy` making
            every client resilient — disconnects and drops reconnect
            with bounded virtual-time backoff instead of ending the
            session (docs/ROBUSTNESS.md, "live chaos").
        seed: root seed of the clients' backoff-jitter substreams;
            use the scenario's seed so two same-seed runs replay
            identical retry timelines.
        faults: optional per-session chaos-plan factory (index ->
            plan or ``None``); plans come from
            :class:`repro.serve.chaos.ClientFaultPlan`.
    """

    def __init__(
        self,
        serve: ServeConfig,
        trace: Trace,
        progress: Optional[Callable[[str], None]] = None,
        retry: Optional[RetryPolicy] = None,
        seed: int = 0,
        faults: Optional[Callable[[int], Optional[Any]]] = None,
    ) -> None:
        self.serve = serve
        self.trace = trace
        self.progress = progress
        self.retry = retry
        self.faults = faults
        self._rng = RandomStreams(seed=seed)
        self._active = 0
        self._peak = 0
        self._done = 0
        self._t0: Optional[float] = None
        self._first_vt = trace[0].time if len(trace) else 0.0
        #: Live outcome objects (clients mutate these in place), so the
        #: reporter can aggregate mid-flight without extra bookkeeping.
        self._outcomes: List[SessionOutcome] = []

    def _wall_for(self, virtual: float) -> float:
        """The event-loop time this generator dispatches *virtual* at.

        Offset by ``startup_slack`` from the gateway's own map (the
        gateway anchors the first arrival that far in the future), so
        frames sent on this map always land *early* relative to the
        policy clock — reconnects can never force a parity clamp.
        """
        assert self._t0 is not None, "run() not started"
        return self._t0 + self.serve.to_wall(virtual - self._first_vt)

    async def _client(self, index: int, spec: RequestSpec) -> SessionOutcome:
        client = _LiveClient(
            self.serve,
            index,
            spec,
            retry=self.retry,
            rng=self._rng if self.retry is not None else None,
            faults=self.faults(index) if self.faults is not None else None,
            wall_for=self._wall_for,
        )
        self._outcomes.append(client.outcome)
        self._active += 1
        self._peak = max(self._peak, self._active)
        try:
            return await client.run()
        finally:
            self._active -= 1
            self._done += 1

    def _progress_line(self, chunk_rate: float) -> str:
        chunks = sum(o.chunks for o in self._outcomes)
        underruns = sum(o.underruns for o in self._outcomes)
        return (
            f"loadgen: {self._active} open, "
            f"{self._done}/{len(self.trace)} done, "
            f"{chunks} chunks ({chunk_rate:.0f}/s), "
            f"{underruns} underruns"
        )

    async def _report_loop(self) -> None:
        assert self.progress is not None
        loop = asyncio.get_running_loop()
        last_chunks = 0
        last_wall = loop.time()
        while True:
            await asyncio.sleep(self.serve.progress_interval)
            now = loop.time()
            chunks = sum(o.chunks for o in self._outcomes)
            rate = (chunks - last_chunks) / max(now - last_wall, 1e-9)
            self.progress(self._progress_line(rate))
            last_chunks, last_wall = chunks, now

    async def run(self) -> LoadReport:
        """Dispatch every arrival at its compressed wall time; gather
        all session outcomes (the report preserves trace order)."""
        loop = asyncio.get_running_loop()
        if not len(self.trace):
            return LoadReport()
        reporter: Optional[asyncio.Task] = None
        if self.progress is not None:
            reporter = loop.create_task(
                self._report_loop(), name="loadgen.progress"
            )
        try:
            # Wall origin such that the first arrival fires immediately;
            # the gateway re-anchors on that first frame anyway.
            self._t0 = loop.time()
            tasks: List[asyncio.Task] = []
            for index, spec in enumerate(self.trace):
                due = self._wall_for(spec.time)
                delay = due - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                tasks.append(
                    loop.create_task(
                        self._client(index, spec), name=f"loadgen.{index}"
                    )
                )
            sessions = list(await asyncio.gather(*tasks))
        finally:
            if reporter is not None:
                reporter.cancel()
                try:
                    await reporter
                except asyncio.CancelledError:
                    pass
        if self.progress is not None:
            self.progress(self._progress_line(0.0))
        return LoadReport(sessions=sessions, peak_concurrency=self._peak)
