"""Command-line interface: ``repro-vod`` / ``python -m repro``.

Subcommands regenerate each reproduced artifact::

    repro-vod fig4 --system large --scale 0.02
    repro-vod fig5 --system small
    repro-vod fig6
    repro-vod fig7 --system large --policies P1,P4,P8
    repro-vod svbr | partial | het | ablation       # full-version extras
    repro-vod replication | burst | vcr | mix       # extension studies
    repro-vod all --outdir results                  # everything + CSVs
    repro-vod run --system small --theta 0.3 --staging 0.2 --migrate
    repro-vod trace fig5 --trace-out fig5.jsonl     # structured trace
    repro-vod bench --quick                         # perf benchmark
    repro-vod chaos availability                    # availability vs MTBF
    repro-vod chaos soak --hours 8                  # invariant-checked run

``--scale`` (or REPRO_SCALE) trades fidelity for speed; 1.0 is the
paper's 5 trials × 1000 h.

Observability (see docs/OBSERVABILITY.md): every subcommand takes
``--trace-out PATH`` (append structured JSONL trace records) and
``--profile`` (per-event-kind wall-clock report on stderr).  Progress
lines go to **stderr**, so stdout stays machine-readable and composes
with ``--quiet``.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
from typing import List, Optional

from repro import __version__, obs
from repro.cluster.system import LARGE_SYSTEM, SMALL_SYSTEM, SystemConfig
from repro.core.migration import MigrationPolicy
from repro.experiments import ablation as ablation_mod
from repro.experiments import availability as avail_mod
from repro.experiments import client_mix as mix_mod
from repro.experiments import dynamic_replication as dr_mod
from repro.experiments import fig4_drm, fig5_staging, fig7_policies
from repro.experiments import interactivity_vcr as vcr_mod
from repro.experiments import intermittent_burst as burst_mod
from repro.experiments import heterogeneity as het_mod
from repro.experiments import partial_predictive as pp_mod
from repro.experiments import svbr as svbr_mod
from repro.obs import profiler as profiling
from repro.obs.runtime import PROFILE_VAR, TRACE_OUT_VAR
from repro.simulation import Simulation, SimulationConfig, run_simulation
from repro.units import hours

SYSTEMS = {"small": SMALL_SYSTEM, "large": LARGE_SYSTEM}

#: Experiments the ``trace`` subcommand knows how to run standalone.
TRACE_EXPERIMENTS = ("fig4", "fig5", "fig7")

#: Modes of the ``chaos`` subcommand.
CHAOS_EXPERIMENTS = ("availability", "soak")


def _system(name: str) -> SystemConfig:
    try:
        return SYSTEMS[name]
    except KeyError:
        raise SystemExit(f"unknown system {name!r}; choose from {sorted(SYSTEMS)}")


def _progress(quiet: bool):
    """Progress callback (stderr via the obs logger) or None when quiet."""
    return obs.progress_printer(quiet)


def _add_obs(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="append structured trace records (JSONL) to PATH",
    )
    p.add_argument(
        "--profile", action="store_true",
        help="report per-event-kind wall clock on stderr",
    )


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--scale", type=float, default=None,
        help="fidelity factor (1.0 = paper's 5 trials x 1000h; "
             "default from REPRO_SCALE or 0.01)",
    )
    p.add_argument("--seed", type=int, default=0, help="root random seed")
    p.add_argument("--quiet", action="store_true", help="suppress progress lines")
    _add_obs(p)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-vod",
        description="Semi-continuous transmission for cluster-based video "
                    "servers (CLUSTER 2001 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, helptext in (
        ("fig4", "effect of dynamic request migration (Figure 4)"),
        ("fig5", "effect of client staging (Figure 5)"),
        ("fig7", "policy comparison P1-P8 (Figure 7)"),
    ):
        p = sub.add_parser(name, help=helptext)
        p.add_argument("--system", default="large", choices=sorted(SYSTEMS))
        if name == "fig7":
            p.add_argument(
                "--policies", default=None,
                help="comma-separated subset, e.g. P1,P4,P8",
            )
        _add_common(p)

    sub.add_parser("fig6", help="print the policy matrix (Figure 6)")

    p = sub.add_parser("svbr", help="utilization vs SVBR + Erlang-B (EXT-SVBR)")
    _add_common(p)

    p = sub.add_parser("partial", help="partial predictive placement (EXT-PP)")
    _add_common(p)

    p = sub.add_parser("het", help="resource heterogeneity (EXT-HET)")
    _add_common(p)

    p = sub.add_parser("ablation", help="spare-bandwidth scheduler ablation")
    _add_common(p)

    p = sub.add_parser(
        "replication", help="dynamic replication vs static placement (EXT-DR)"
    )
    _add_common(p)

    p = sub.add_parser(
        "burst", help="intermittent scheduling under bursty demand (EXT-INT)"
    )
    _add_common(p)

    p = sub.add_parser(
        "vcr", help="viewer pause/resume interactivity (EXT-VCR)"
    )
    _add_common(p)

    p = sub.add_parser(
        "mix", help="heterogeneous client capabilities (EXT-MIX)"
    )
    _add_common(p)

    p = sub.add_parser(
        "all",
        help="regenerate every artifact; write tables and CSVs to --outdir",
    )
    p.add_argument("--outdir", default="results", help="output directory")
    _add_common(p)

    p = sub.add_parser(
        "bench",
        help="performance benchmark: engine events/sec + serial-vs-"
             "parallel sweep wall time (writes BENCH_perf.json)",
    )
    p.add_argument(
        "--quick", action="store_true",
        help="tiny-system smoke variant (seconds instead of minutes)",
    )
    p.add_argument(
        "--out", default="BENCH_perf.json", metavar="PATH",
        help="JSON report path (default: BENCH_perf.json)",
    )
    p.add_argument("--seed", type=int, default=0, help="root random seed")
    p.add_argument("--quiet", action="store_true",
                   help="suppress progress lines")

    p = sub.add_parser(
        "chaos",
        help="deterministic fault injection (repro.faults): availability "
             "sweep or an invariant-checked soak run",
    )
    p.add_argument(
        "experiment", choices=CHAOS_EXPERIMENTS,
        help="availability: availability vs MTBF, EFTF+DRM vs no-DRM; "
             "soak: one seeded chaos run with the online invariant "
             "checker (exit 1 on any violation)",
    )
    p.add_argument("--system", default="small", choices=sorted(SYSTEMS))
    p.add_argument(
        "--mtbf-hours", type=float, default=1.0,
        help="(soak) per-server mean time between crashes",
    )
    p.add_argument(
        "--hours", type=float, default=8.0, dest="sim_hours",
        help="(soak) simulated hours",
    )
    _add_common(p)

    p = sub.add_parser("run", help="one ad-hoc simulation")
    p.add_argument("--system", default="small", choices=sorted(SYSTEMS))
    p.add_argument("--theta", type=float, default=0.27)
    p.add_argument("--placement", default="even")
    p.add_argument("--staging", type=float, default=0.0,
                   help="staging buffer fraction of mean video size")
    p.add_argument("--migrate", action="store_true", help="enable DRM")
    p.add_argument("--hours", type=float, default=20.0, dest="sim_hours")
    p.add_argument("--warmup-hours", type=float, default=2.0)
    p.add_argument("--load", type=float, default=1.0)
    p.add_argument("--scheduler", default="eftf")
    p.add_argument("--seed", type=int, default=0)
    _add_obs(p)

    p = sub.add_parser(
        "trace",
        help="run one representative traced simulation; dump JSONL + summary",
    )
    p.add_argument("experiment", choices=TRACE_EXPERIMENTS,
                   help="which figure's setup to trace one run of")
    p.add_argument("--system", default="small", choices=sorted(SYSTEMS))
    p.add_argument(
        "--trace-out", default="trace.jsonl", metavar="PATH",
        help="JSONL output path (default: trace.jsonl)",
    )
    p.add_argument(
        "--profile", action="store_true",
        help="also report per-event-kind wall clock on stderr",
    )
    p.add_argument(
        "--scale", type=float, default=None,
        help="fidelity factor controlling the traced run's duration",
    )
    p.add_argument("--seed", type=int, default=0, help="random seed")

    return parser


def _trace_config(
    experiment: str, system: SystemConfig, seed: int, scale: Optional[float]
) -> SimulationConfig:
    """A representative single-run config for ``repro trace <experiment>``.

    One mid-θ point of the figure's sweep, with the figure's mechanisms
    switched on so the trace exercises every record family the setup
    can produce (admission, rejection, migration, reallocation, ...).
    """
    from repro.experiments.base import resolve_scale

    exp_scale = resolve_scale(scale)
    common = dict(
        system=system,
        theta=0.0,
        placement="even",
        scheduler="eftf",
        duration=exp_scale.duration,
        warmup=exp_scale.warmup,
        seed=seed,
    )
    if experiment == "fig4":
        return SimulationConfig(
            migration=MigrationPolicy.paper_default(),
            staging_fraction=0.0,
            **common,
        )
    if experiment == "fig5":
        return SimulationConfig(
            migration=MigrationPolicy.disabled(),
            staging_fraction=0.2,
            client_receive_bandwidth=30.0,
            **common,
        )
    if experiment == "fig7":
        # Policy P4: even placement + migration + 20 % staging.
        return SimulationConfig(
            migration=MigrationPolicy.paper_default(),
            staging_fraction=0.2,
            client_receive_bandwidth=30.0,
            **common,
        )
    raise SystemExit(f"unknown trace experiment {experiment!r}")


def _ensure_writable(path: str) -> None:
    """Fail fast (before simulating for minutes) on an unwritable path."""
    try:
        with open(path, "a"):
            pass
    except OSError as exc:
        raise SystemExit(f"cannot write trace output {path!r}: {exc}")


def _cmd_trace(args) -> int:
    """``repro trace <experiment>``: one traced run, JSONL + summary."""
    _ensure_writable(args.trace_out)
    config = _trace_config(
        args.experiment, _system(args.system), args.seed, args.scale
    )
    tracer = obs.Tracer()
    profiler = obs.EventProfiler() if args.profile else None
    sim = Simulation(config, tracer=tracer, profiler=profiler)
    result = sim.run()
    lines = tracer.export_jsonl(args.trace_out, provenance=result.provenance)
    print(tracer.summary_table())
    print(
        f"wrote {lines} JSONL lines ({len(tracer.counts)} record kinds) "
        f"to {args.trace_out}"
    )
    if profiler is not None:
        print(profiler.report().render(), file=sys.stderr)
    return 0


@contextlib.contextmanager
def _obs_env(trace_out: Optional[str], profile: bool):
    """Export --trace-out/--profile as REPRO_* env for the dispatch.

    The env route reaches every Simulation an experiment constructs —
    including multi-trial sweeps — without threading options through
    experiment signatures.  Previous values are restored on exit so
    in-process callers (tests) don't leak state.
    """
    updates = {}
    if trace_out:
        updates[TRACE_OUT_VAR] = str(trace_out)
    if profile:
        updates[PROFILE_VAR] = "1"
    saved = {var: os.environ.get(var) for var in updates}
    os.environ.update(updates)
    try:
        yield
    finally:
        for var, old in saved.items():
            if old is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = old


def _run_all(args) -> int:
    """Regenerate every artifact; write tables + CSVs to ``--outdir``."""
    import pathlib

    from repro.analysis.export import sweep_to_csv
    from repro.experiments.base import SweepResult

    outdir = pathlib.Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    progress = _progress(args.quiet)
    scale, seed = args.scale, args.seed

    def sweep_panels(runner, systems, stem, title):
        for system in systems:
            result = runner(system=system, scale=scale, seed=seed,
                            progress=progress)
            yield f"{stem}_{system.name}", result, f"{title} ({system.name})"

    jobs = []
    jobs.extend(sweep_panels(
        fig4_drm.run_fig4, (LARGE_SYSTEM, SMALL_SYSTEM), "fig4", "Figure 4"))
    jobs.extend(sweep_panels(
        fig5_staging.run_fig5, (LARGE_SYSTEM, SMALL_SYSTEM), "fig5",
        "Figure 5"))
    jobs.extend(sweep_panels(
        fig7_policies.run_fig7, (LARGE_SYSTEM, SMALL_SYSTEM), "fig7",
        "Figure 7"))
    jobs.append(("ext_pp", pp_mod.run_partial_predictive(
        scale=scale, seed=seed, progress=progress), "EXT-PP"))
    jobs.append(("ext_abl", ablation_mod.run_ablation(
        scale=scale, seed=seed, progress=progress), "EXT-ABL"))
    jobs.append(("ext_dr", dr_mod.run_dynamic_replication(
        scale=scale, seed=seed, progress=progress), "EXT-DR"))
    jobs.append(("ext_vcr", vcr_mod.run_interactivity(
        scale=scale, seed=seed, progress=progress), "EXT-VCR"))
    jobs.append(("ext_mix", mix_mod.run_client_mix_series(
        scale=scale, seed=seed, progress=progress), "EXT-MIX"))

    report_path = outdir / "all_artifacts.txt"
    prov = obs.run_provenance(seed=seed, scale=scale)
    with open(report_path, "w") as fh:
        fh.write(
            f"# repro {prov['repro_version']} | seed={seed} "
            f"scale={scale if scale is not None else 'default'} | "
            f"{prov['timestamp_utc']}\n\n"
        )
        fh.write(fig7_policies.policy_matrix_table() + "\n\n")
        for stem, result, title in jobs:
            text = result.render(title=title)
            fh.write(text + "\n\n")
            if isinstance(result, SweepResult):
                sweep_to_csv(result, outdir / f"{stem}.csv")
            if progress is not None:
                print()
                print(text)
                print()
        # Table-shaped artifacts without SweepResult structure:
        svbr_result = svbr_mod.run_svbr(
            scale=scale, seed=seed, progress=progress)
        fh.write(svbr_mod.render_svbr(svbr_result) + "\n\n")
        het_result = het_mod.run_heterogeneity(
            scale=scale, seed=seed, progress=progress)
        fh.write(het_mod.render_heterogeneity(het_result) + "\n\n")
        burst_result = burst_mod.run_intermittent_burst(
            scale=scale, seed=seed, progress=progress)
        fh.write(burst_mod.render_intermittent_burst(burst_result) + "\n")
    print(f"wrote {report_path} (+ per-figure CSVs) in {outdir}/")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "trace":
        return _cmd_trace(args)

    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        _ensure_writable(trace_out)
    profile = bool(getattr(args, "profile", False))
    if profile:
        # Per-invocation report: drop whatever a previous in-process
        # call (tests) left in the aggregate.
        profiling.reset_aggregate()
    with _obs_env(trace_out, profile):
        rc = _dispatch(args)
    if profile:
        report = profiling.aggregate_report()
        if report is not None:
            print(report.render(), file=sys.stderr)
    return rc


def _cmd_bench(args) -> int:
    """``repro bench``: measure, print a summary, write the JSON."""
    from repro import benchmark

    report = benchmark.run_bench(
        quick=args.quick, out=args.out, seed=args.seed,
        progress=_progress(args.quiet),
    )
    print(benchmark.render_report(report))
    print(f"wrote {args.out}")
    # Timing is machine noise; only a broken determinism gate fails.
    return 0 if report["sweep"]["identical"] else 1


def _cmd_chaos(args, progress) -> int:
    """``repro chaos <experiment>``: fault-injection entry points.

    ``availability`` sweeps availability vs per-server MTBF (EFTF+DRM
    vs no-DRM); ``soak`` runs one seeded chaos scenario — all three
    fault classes plus the retry queue — with the online invariant
    checker attached, exiting 1 on any violation (the CI chaos-soak
    job's gate).
    """
    if args.experiment == "availability":
        result = avail_mod.run_availability(
            system=_system(args.system), scale=args.scale,
            seed=args.seed, progress=progress,
        )
        print(result.render(
            title=f"Availability vs MTBF ({args.system} system)"
        ))
        return 0

    from repro.cluster.request import reset_request_ids
    from repro.faults import (
        CrashFaults, FaultPlan, InvariantViolation, LinkFaults,
        ReplicaFaults, RetryPolicy,
    )

    mtbf = hours(args.mtbf_hours)
    config = SimulationConfig(
        system=_system(args.system),
        theta=0.3,
        placement="even",
        migration=MigrationPolicy.paper_default(),
        staging_fraction=0.2,
        duration=hours(args.sim_hours),
        seed=args.seed,
        faults=FaultPlan(
            crash=CrashFaults(mtbf=mtbf, mttr=mtbf / 4.0, correlation=0.1),
            link=LinkFaults(mtbf=mtbf * 1.5, mttr=mtbf / 2.0),
            replica=ReplicaFaults(mean_interval=mtbf * 2.0),
        ),
        retry=RetryPolicy(),
        invariants=True,
    )
    reset_request_ids()
    sim = Simulation(config)
    try:
        result = sim.run()
    except InvariantViolation as violation:
        print(f"INVARIANT VIOLATION: {violation}", file=sys.stderr)
        return 1
    checks = sim.invariant_checker.checks_run
    print(result)
    print(
        f"  faults={result.faults_injected} dropped={result.dropped} "
        f"retries={result.retries} exhausted={result.retry_exhausted} "
        f"availability={result.availability:.4f}"
    )
    print(f"  invariants clean ({checks} state sweeps)")
    return 0


def _dispatch(args) -> int:
    if args.command == "fig6":
        print(fig7_policies.policy_matrix_table())
        return 0

    if args.command == "bench":
        return _cmd_bench(args)

    if args.command == "run":
        config = SimulationConfig(
            system=_system(args.system),
            theta=args.theta,
            placement=args.placement,
            migration=(
                MigrationPolicy.paper_default()
                if args.migrate
                else MigrationPolicy.disabled()
            ),
            staging_fraction=args.staging,
            scheduler=args.scheduler,
            duration=hours(args.sim_hours),
            warmup=hours(args.warmup_hours),
            load=args.load,
            seed=args.seed,
        )
        result = run_simulation(config)
        print(result)
        print(
            f"  arrivals={result.arrivals} accepted={result.accepted} "
            f"rejected={result.rejected} migrations={result.migrations} "
            f"events={result.events_fired}"
        )
        return 0

    progress = _progress(args.quiet)
    if args.command == "chaos":
        return _cmd_chaos(args, progress)
    if args.command == "all":
        return _run_all(args)
    if args.command == "fig4":
        result = fig4_drm.run_fig4(
            system=_system(args.system), scale=args.scale,
            seed=args.seed, progress=progress,
        )
        print(result.render(title=f"Figure 4 ({args.system} system)"))
    elif args.command == "fig5":
        result = fig5_staging.run_fig5(
            system=_system(args.system), scale=args.scale,
            seed=args.seed, progress=progress,
        )
        print(result.render(title=f"Figure 5 ({args.system} system)"))
    elif args.command == "fig7":
        policies = args.policies.split(",") if args.policies else None
        result = fig7_policies.run_fig7(
            system=_system(args.system), policies=policies,
            scale=args.scale, seed=args.seed, progress=progress,
        )
        print(fig7_policies.policy_matrix_table())
        print()
        print(result.render(title=f"Figure 7 ({args.system} system)"))
    elif args.command == "svbr":
        result = svbr_mod.run_svbr(
            scale=args.scale, seed=args.seed, progress=progress
        )
        print(svbr_mod.render_svbr(result))
    elif args.command == "partial":
        result = pp_mod.run_partial_predictive(
            scale=args.scale, seed=args.seed, progress=progress
        )
        print(result.render(title="EXT-PP: placement sophistication"))
    elif args.command == "het":
        result = het_mod.run_heterogeneity(
            scale=args.scale, seed=args.seed, progress=progress
        )
        print(het_mod.render_heterogeneity(result))
    elif args.command == "ablation":
        result = ablation_mod.run_ablation(
            scale=args.scale, seed=args.seed, progress=progress
        )
        print(result.render(title="EXT-ABL: scheduler ablation"))
    elif args.command == "replication":
        result = dr_mod.run_dynamic_replication(
            scale=args.scale, seed=args.seed, progress=progress
        )
        print(result.render(
            title="EXT-DR: dynamic replication vs static placement"
        ))
    elif args.command == "burst":
        result = burst_mod.run_intermittent_burst(
            scale=args.scale, seed=args.seed, progress=progress
        )
        print(burst_mod.render_intermittent_burst(result))
    elif args.command == "vcr":
        result = vcr_mod.run_interactivity(
            scale=args.scale, seed=args.seed, progress=progress
        )
        print(result.render(title="EXT-VCR: viewer pause/resume interactivity"))
    elif args.command == "mix":
        result = mix_mod.run_client_mix_series(
            scale=args.scale, seed=args.seed, progress=progress
        )
        print(result.render(
            title="EXT-MIX: partial deployment of client staging"
        ))
    else:  # pragma: no cover - argparse enforces choices
        raise SystemExit(f"unknown command {args.command!r}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
