"""Command-line interface: ``repro-vod`` / ``python -m repro``.

Subcommands regenerate each reproduced artifact::

    repro-vod fig4 --system large --scale 0.02
    repro-vod fig5 --system small
    repro-vod fig6
    repro-vod fig7 --system large --policies P1,P4,P8
    repro-vod svbr | partial | het | ablation       # full-version extras
    repro-vod replication | burst | vcr | mix       # extension studies
    repro-vod all --outdir results                  # everything + CSVs
    repro-vod run --system small --theta 0.3 --staging 0.2 --migrate

``--scale`` (or REPRO_SCALE) trades fidelity for speed; 1.0 is the
paper's 5 trials × 1000 h.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cluster.system import LARGE_SYSTEM, SMALL_SYSTEM, SystemConfig
from repro.core.migration import MigrationPolicy
from repro.experiments import ablation as ablation_mod
from repro.experiments import client_mix as mix_mod
from repro.experiments import dynamic_replication as dr_mod
from repro.experiments import fig4_drm, fig5_staging, fig7_policies
from repro.experiments import interactivity_vcr as vcr_mod
from repro.experiments import intermittent_burst as burst_mod
from repro.experiments import heterogeneity as het_mod
from repro.experiments import partial_predictive as pp_mod
from repro.experiments import svbr as svbr_mod
from repro.simulation import SimulationConfig, run_simulation
from repro.units import hours

SYSTEMS = {"small": SMALL_SYSTEM, "large": LARGE_SYSTEM}


def _system(name: str) -> SystemConfig:
    try:
        return SYSTEMS[name]
    except KeyError:
        raise SystemExit(f"unknown system {name!r}; choose from {sorted(SYSTEMS)}")


def _progress(quiet: bool):
    return None if quiet else print


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--scale", type=float, default=None,
        help="fidelity factor (1.0 = paper's 5 trials x 1000h; "
             "default from REPRO_SCALE or 0.01)",
    )
    p.add_argument("--seed", type=int, default=0, help="root random seed")
    p.add_argument("--quiet", action="store_true", help="suppress progress lines")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-vod",
        description="Semi-continuous transmission for cluster-based video "
                    "servers (CLUSTER 2001 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, helptext in (
        ("fig4", "effect of dynamic request migration (Figure 4)"),
        ("fig5", "effect of client staging (Figure 5)"),
        ("fig7", "policy comparison P1-P8 (Figure 7)"),
    ):
        p = sub.add_parser(name, help=helptext)
        p.add_argument("--system", default="large", choices=sorted(SYSTEMS))
        if name == "fig7":
            p.add_argument(
                "--policies", default=None,
                help="comma-separated subset, e.g. P1,P4,P8",
            )
        _add_common(p)

    sub.add_parser("fig6", help="print the policy matrix (Figure 6)")

    p = sub.add_parser("svbr", help="utilization vs SVBR + Erlang-B (EXT-SVBR)")
    _add_common(p)

    p = sub.add_parser("partial", help="partial predictive placement (EXT-PP)")
    _add_common(p)

    p = sub.add_parser("het", help="resource heterogeneity (EXT-HET)")
    _add_common(p)

    p = sub.add_parser("ablation", help="spare-bandwidth scheduler ablation")
    _add_common(p)

    p = sub.add_parser(
        "replication", help="dynamic replication vs static placement (EXT-DR)"
    )
    _add_common(p)

    p = sub.add_parser(
        "burst", help="intermittent scheduling under bursty demand (EXT-INT)"
    )
    _add_common(p)

    p = sub.add_parser(
        "vcr", help="viewer pause/resume interactivity (EXT-VCR)"
    )
    _add_common(p)

    p = sub.add_parser(
        "mix", help="heterogeneous client capabilities (EXT-MIX)"
    )
    _add_common(p)

    p = sub.add_parser(
        "all",
        help="regenerate every artifact; write tables and CSVs to --outdir",
    )
    p.add_argument("--outdir", default="results", help="output directory")
    _add_common(p)

    p = sub.add_parser("run", help="one ad-hoc simulation")
    p.add_argument("--system", default="small", choices=sorted(SYSTEMS))
    p.add_argument("--theta", type=float, default=0.27)
    p.add_argument("--placement", default="even")
    p.add_argument("--staging", type=float, default=0.0,
                   help="staging buffer fraction of mean video size")
    p.add_argument("--migrate", action="store_true", help="enable DRM")
    p.add_argument("--hours", type=float, default=20.0, dest="sim_hours")
    p.add_argument("--warmup-hours", type=float, default=2.0)
    p.add_argument("--load", type=float, default=1.0)
    p.add_argument("--scheduler", default="eftf")
    p.add_argument("--seed", type=int, default=0)

    return parser


def _run_all(args) -> int:
    """Regenerate every artifact; write tables + CSVs to ``--outdir``."""
    import pathlib

    from repro.analysis.export import sweep_to_csv
    from repro.experiments.base import SweepResult

    outdir = pathlib.Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    progress = _progress(args.quiet)
    scale, seed = args.scale, args.seed

    def sweep_panels(runner, systems, stem, title):
        for system in systems:
            result = runner(system=system, scale=scale, seed=seed,
                            progress=progress)
            yield f"{stem}_{system.name}", result, f"{title} ({system.name})"

    jobs = []
    jobs.extend(sweep_panels(
        fig4_drm.run_fig4, (LARGE_SYSTEM, SMALL_SYSTEM), "fig4", "Figure 4"))
    jobs.extend(sweep_panels(
        fig5_staging.run_fig5, (LARGE_SYSTEM, SMALL_SYSTEM), "fig5",
        "Figure 5"))
    jobs.extend(sweep_panels(
        fig7_policies.run_fig7, (LARGE_SYSTEM, SMALL_SYSTEM), "fig7",
        "Figure 7"))
    jobs.append(("ext_pp", pp_mod.run_partial_predictive(
        scale=scale, seed=seed, progress=progress), "EXT-PP"))
    jobs.append(("ext_abl", ablation_mod.run_ablation(
        scale=scale, seed=seed, progress=progress), "EXT-ABL"))
    jobs.append(("ext_dr", dr_mod.run_dynamic_replication(
        scale=scale, seed=seed, progress=progress), "EXT-DR"))
    jobs.append(("ext_vcr", vcr_mod.run_interactivity(
        scale=scale, seed=seed, progress=progress), "EXT-VCR"))
    jobs.append(("ext_mix", mix_mod.run_client_mix_series(
        scale=scale, seed=seed, progress=progress), "EXT-MIX"))

    report_path = outdir / "all_artifacts.txt"
    with open(report_path, "w") as fh:
        fh.write(fig7_policies.policy_matrix_table() + "\n\n")
        for stem, result, title in jobs:
            text = result.render(title=title)
            fh.write(text + "\n\n")
            if isinstance(result, SweepResult):
                sweep_to_csv(result, outdir / f"{stem}.csv")
            if progress is not None:
                print()
                print(text)
                print()
        # Table-shaped artifacts without SweepResult structure:
        svbr_result = svbr_mod.run_svbr(
            scale=scale, seed=seed, progress=progress)
        fh.write(svbr_mod.render_svbr(svbr_result) + "\n\n")
        het_result = het_mod.run_heterogeneity(
            scale=scale, seed=seed, progress=progress)
        fh.write(het_mod.render_heterogeneity(het_result) + "\n\n")
        burst_result = burst_mod.run_intermittent_burst(
            scale=scale, seed=seed, progress=progress)
        fh.write(burst_mod.render_intermittent_burst(burst_result) + "\n")
    print(f"wrote {report_path} (+ per-figure CSVs) in {outdir}/")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "fig6":
        print(fig7_policies.policy_matrix_table())
        return 0

    if args.command == "run":
        config = SimulationConfig(
            system=_system(args.system),
            theta=args.theta,
            placement=args.placement,
            migration=(
                MigrationPolicy.paper_default()
                if args.migrate
                else MigrationPolicy.disabled()
            ),
            staging_fraction=args.staging,
            scheduler=args.scheduler,
            duration=hours(args.sim_hours),
            warmup=hours(args.warmup_hours),
            load=args.load,
            seed=args.seed,
        )
        result = run_simulation(config)
        print(result)
        print(
            f"  arrivals={result.arrivals} accepted={result.accepted} "
            f"rejected={result.rejected} migrations={result.migrations} "
            f"events={result.events_fired}"
        )
        return 0

    progress = _progress(args.quiet)
    if args.command == "all":
        return _run_all(args)
    if args.command == "fig4":
        result = fig4_drm.run_fig4(
            system=_system(args.system), scale=args.scale,
            seed=args.seed, progress=progress,
        )
        print(result.render(title=f"Figure 4 ({args.system} system)"))
    elif args.command == "fig5":
        result = fig5_staging.run_fig5(
            system=_system(args.system), scale=args.scale,
            seed=args.seed, progress=progress,
        )
        print(result.render(title=f"Figure 5 ({args.system} system)"))
    elif args.command == "fig7":
        policies = args.policies.split(",") if args.policies else None
        result = fig7_policies.run_fig7(
            system=_system(args.system), policies=policies,
            scale=args.scale, seed=args.seed, progress=progress,
        )
        print(fig7_policies.policy_matrix_table())
        print()
        print(result.render(title=f"Figure 7 ({args.system} system)"))
    elif args.command == "svbr":
        result = svbr_mod.run_svbr(
            scale=args.scale, seed=args.seed, progress=progress
        )
        print(svbr_mod.render_svbr(result))
    elif args.command == "partial":
        result = pp_mod.run_partial_predictive(
            scale=args.scale, seed=args.seed, progress=progress
        )
        print(result.render(title="EXT-PP: placement sophistication"))
    elif args.command == "het":
        result = het_mod.run_heterogeneity(
            scale=args.scale, seed=args.seed, progress=progress
        )
        print(het_mod.render_heterogeneity(result))
    elif args.command == "ablation":
        result = ablation_mod.run_ablation(
            scale=args.scale, seed=args.seed, progress=progress
        )
        print(result.render(title="EXT-ABL: scheduler ablation"))
    elif args.command == "replication":
        result = dr_mod.run_dynamic_replication(
            scale=args.scale, seed=args.seed, progress=progress
        )
        print(result.render(
            title="EXT-DR: dynamic replication vs static placement"
        ))
    elif args.command == "burst":
        result = burst_mod.run_intermittent_burst(
            scale=args.scale, seed=args.seed, progress=progress
        )
        print(burst_mod.render_intermittent_burst(result))
    elif args.command == "vcr":
        result = vcr_mod.run_interactivity(
            scale=args.scale, seed=args.seed, progress=progress
        )
        print(result.render(title="EXT-VCR: viewer pause/resume interactivity"))
    elif args.command == "mix":
        result = mix_mod.run_client_mix_series(
            scale=args.scale, seed=args.seed, progress=progress
        )
        print(result.render(
            title="EXT-MIX: partial deployment of client staging"
        ))
    else:  # pragma: no cover - argparse enforces choices
        raise SystemExit(f"unknown command {args.command!r}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
