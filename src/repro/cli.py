"""Command-line interface: ``repro-vod`` / ``python -m repro``.

Subcommands regenerate each reproduced artifact::

    repro-vod fig4 --system large --scale 0.02
    repro-vod fig5 --system small
    repro-vod fig6
    repro-vod fig7 --system large --policies P1,P4,P8
    repro-vod svbr | partial | het | ablation       # full-version extras
    repro-vod replication | burst | vcr | mix       # extension studies
    repro-vod all --outdir results                  # everything + CSVs
    repro-vod run --system small --theta 0.3 --staging 0.2 --migrate
    repro-vod run --scenario scenarios/p4_small.json
    repro-vod trace fig5 --trace-out fig5.jsonl     # structured trace
    repro-vod bench --quick                         # perf benchmark
    repro-vod chaos availability                    # availability vs MTBF
    repro-vod chaos soak --hours 8                  # invariant-checked run

**Every experiment subcommand is generated from the experiment
registry** (:mod:`repro.experiments.registry`): importing
:mod:`repro.experiments` auto-discovers each experiment module, whose
self-registration block publishes its CLI name, help text, flags,
runner and ``repro all`` artifacts.  Adding an experiment is writing
one module — there is no import list or dispatch table here to edit
(docs/ARCHITECTURE.md).

``--scale`` (or REPRO_SCALE) trades fidelity for speed; 1.0 is the
paper's 5 trials × 1000 h.

Observability (see docs/OBSERVABILITY.md): every subcommand takes
``--trace-out PATH`` (append structured JSONL trace records) and
``--profile`` (per-event-kind wall-clock report on stderr).  Progress
lines go to **stderr**, so stdout stays machine-readable and composes
with ``--quiet``.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
from typing import List, Optional

from repro import __version__, obs
from repro import experiments as _experiments  # noqa: F401  (auto-discovery)
from repro.cluster.system import SYSTEMS
from repro.core.migration import MigrationPolicy
from repro.core.schedulers import ALLOCATORS
from repro.experiments.registry import (
    CHAOS_EXPERIMENTS,
    EXPERIMENTS,
    ExperimentSpec,
    trace_experiments,
)
from repro.obs import profiler as profiling
from repro.obs.runtime import PROFILE_VAR, TRACE_OUT_VAR
from repro.placement import PLACEMENTS
from repro.scenario import load_scenario
from repro.simulation import Simulation, SimulationConfig, run_simulation
from repro.units import hours


def _progress(quiet: bool):
    """Progress callback (stderr via the obs logger) or None when quiet."""
    return obs.progress_printer(quiet)


def _add_obs(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="append structured trace records (JSONL) to PATH",
    )
    p.add_argument(
        "--profile", action="store_true",
        help="report per-event-kind wall clock on stderr",
    )


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--scale", type=float, default=None,
        help="fidelity factor (1.0 = paper's 5 trials x 1000h; "
             "default from REPRO_SCALE or 0.01)",
    )
    p.add_argument("--seed", type=int, default=0, help="root random seed")
    p.add_argument("--quiet", action="store_true", help="suppress progress lines")
    _add_obs(p)


def _ordered(registry) -> List[ExperimentSpec]:
    """Registry entries in display order (spec.order, then name)."""
    return sorted(registry.values(), key=lambda s: (s.order, s.name))


#: ``repro run`` config-shaping flags: dest → (flag spelling, default).
#: One source of truth for the subparser defaults *and* the
#: scenario-conflict check (a scenario file *is* the config, so these
#: flags are mutually exclusive with ``--scenario``).
_RUN_DEFAULTS = {
    "system": ("--system", "small"),
    "theta": ("--theta", 0.27),
    "placement": ("--placement", "even"),
    "staging": ("--staging", 0.0),
    "migrate": ("--migrate", False),
    "sim_hours": ("--hours", 20.0),
    "warmup_hours": ("--warmup-hours", 2.0),
    "load": ("--load", 1.0),
    "scheduler": ("--scheduler", "eftf"),
    "seed": ("--seed", 0),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-vod",
        description="Semi-continuous transmission for cluster-based video "
                    "servers (CLUSTER 2001 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # -- experiment subcommands, generated from the registry -----------
    for spec in _ordered(EXPERIMENTS):
        p = sub.add_parser(spec.name, help=spec.help)
        if spec.add_arguments is not None:
            spec.add_arguments(p)
        if not spec.bare:
            _add_common(p)

    p = sub.add_parser(
        "all",
        help="regenerate every artifact; write tables and CSVs to --outdir",
    )
    p.add_argument("--outdir", default="results", help="output directory")
    _add_common(p)

    p = sub.add_parser(
        "bench",
        help="performance benchmark: engine events/sec + serial-vs-"
             "parallel sweep wall time (writes BENCH_perf.json)",
    )
    p.add_argument(
        "--quick", action="store_true",
        help="tiny-system smoke variant (seconds instead of minutes)",
    )
    p.add_argument(
        "--out", default="BENCH_perf.json", metavar="PATH",
        help="JSON report path (default: BENCH_perf.json)",
    )
    p.add_argument("--seed", type=int, default=0, help="root random seed")
    p.add_argument("--quiet", action="store_true",
                   help="suppress progress lines")
    p.add_argument(
        "--compare", metavar="BASELINE", default=None,
        help="print per-metric deltas against a baseline BENCH_perf.json"
             " and exit non-zero if engine events/sec regressed >20%%",
    )

    # -- chaos: modes and flags from the chaos registry ----------------
    p = sub.add_parser(
        "chaos",
        help="deterministic fault injection (repro.faults): "
             + "; ".join(
                 f"{spec.name}: {spec.help}"
                 for spec in _ordered(CHAOS_EXPERIMENTS)
             ),
    )
    p.add_argument(
        "experiment", choices=CHAOS_EXPERIMENTS.names(),
        help="; ".join(
            f"{name}: {CHAOS_EXPERIMENTS.help_for(name)}"
            for name in CHAOS_EXPERIMENTS.names()
        ),
    )
    p.add_argument("--system", default="small", choices=SYSTEMS.names())
    for spec in _ordered(CHAOS_EXPERIMENTS):
        if spec.add_arguments is not None:
            spec.add_arguments(p)
    _add_common(p)

    sub.add_parser(
        "list",
        help="print every pluggable registry (experiments, allocators, "
             "placements, arrivals, systems, paper policies)",
    )

    p = sub.add_parser(
        "run",
        help="one ad-hoc simulation, from flags or a scenario file",
    )
    p.add_argument(
        "--scenario", default=None, metavar="FILE",
        help="run a declarative scenario JSON file (see scenarios/); "
             "mutually exclusive with the config flags below",
    )
    _d = {dest: default for dest, (_, default) in _RUN_DEFAULTS.items()}
    p.add_argument("--system", default=_d["system"], choices=SYSTEMS.names())
    p.add_argument("--theta", type=float, default=_d["theta"])
    p.add_argument("--placement", default=_d["placement"],
                   choices=PLACEMENTS.names())
    p.add_argument("--staging", type=float, default=_d["staging"],
                   help="staging buffer fraction of mean video size")
    p.add_argument("--migrate", action="store_true", help="enable DRM")
    p.add_argument("--hours", type=float, default=_d["sim_hours"],
                   dest="sim_hours")
    p.add_argument("--warmup-hours", type=float, default=_d["warmup_hours"])
    p.add_argument("--load", type=float, default=_d["load"])
    p.add_argument("--scheduler", default=_d["scheduler"],
                   choices=ALLOCATORS.names())
    p.add_argument("--seed", type=int, default=_d["seed"])
    _add_obs(p)

    p = sub.add_parser(
        "trace",
        help="run one representative traced simulation; dump JSONL + summary",
    )
    p.add_argument("experiment", choices=trace_experiments(),
                   help="which figure's setup to trace one run of")
    p.add_argument("--system", default="small", choices=SYSTEMS.names())
    p.add_argument(
        "--trace-out", default="trace.jsonl", metavar="PATH",
        help="JSONL output path (default: trace.jsonl)",
    )
    p.add_argument(
        "--profile", action="store_true",
        help="also report per-event-kind wall clock on stderr",
    )
    p.add_argument(
        "--scale", type=float, default=None,
        help="fidelity factor controlling the traced run's duration",
    )
    p.add_argument("--seed", type=int, default=0, help="random seed")

    return parser


def _ensure_writable(path: str) -> None:
    """Fail fast (before simulating for minutes) on an unwritable path."""
    obs.check_trace_path(path, flag="--trace-out")


def _cmd_trace(args) -> int:
    """``repro trace <experiment>``: one traced run, JSONL + summary."""
    _ensure_writable(args.trace_out)
    spec = EXPERIMENTS.get(args.experiment)
    config = spec.trace_config(SYSTEMS.get(args.system), args.seed, args.scale)
    tracer = obs.Tracer()
    profiler = obs.EventProfiler() if args.profile else None
    sim = Simulation(config, tracer=tracer, profiler=profiler)
    result = sim.run()
    lines = tracer.export_jsonl(args.trace_out, provenance=result.provenance)
    print(tracer.summary_table())
    print(
        f"wrote {lines} JSONL lines ({len(tracer.counts)} record kinds) "
        f"to {args.trace_out}"
    )
    if profiler is not None:
        print(profiler.report().render(), file=sys.stderr)
    return 0


@contextlib.contextmanager
def _obs_env(trace_out: Optional[str], profile: bool):
    """Export --trace-out/--profile as REPRO_* env for the dispatch.

    The env route reaches every Simulation an experiment constructs —
    including multi-trial sweeps — without threading options through
    experiment signatures.  Previous values are restored on exit so
    in-process callers (tests) don't leak state.
    """
    updates = {}
    if trace_out:
        updates[TRACE_OUT_VAR] = str(trace_out)
    if profile:
        updates[PROFILE_VAR] = "1"
    saved = {var: os.environ.get(var) for var in updates}
    os.environ.update(updates)
    try:
        yield
    finally:
        for var, old in saved.items():
            if old is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = old


def _run_all(args) -> int:
    """Regenerate every registered artifact; write tables + CSVs to
    ``--outdir``.

    The report's content and ordering come from the experiment
    registry: each spec with an ``artifacts`` hook contributes its
    blocks at its ``order`` position.
    """
    import pathlib

    from repro.analysis.export import sweep_to_csv

    outdir = pathlib.Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    progress = _progress(args.quiet)
    scale, seed = args.scale, args.seed

    report_path = outdir / "all_artifacts.txt"
    prov = obs.run_provenance(seed=seed, scale=scale)
    with open(report_path, "w") as fh:
        fh.write(
            f"# repro {prov['repro_version']} | seed={seed} "
            f"scale={scale if scale is not None else 'default'} | "
            f"{prov['timestamp_utc']}\n\n"
        )
        for spec in _ordered(EXPERIMENTS):
            if spec.artifacts is None:
                continue
            for artifact in spec.artifacts(scale, seed, progress):
                fh.write(artifact.text + "\n\n")
                if artifact.sweep is not None:
                    sweep_to_csv(artifact.sweep, outdir / f"{artifact.stem}.csv")
                if progress is not None and artifact.sweep is not None:
                    print()
                    print(artifact.text)
                    print()
    print(f"wrote {report_path} (+ per-figure CSVs) in {outdir}/")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    try:
        return _main(args)
    except BrokenPipeError:
        # Downstream pipe closed early (`repro list | head`): the cut
        # output is exactly what the user asked for, not an error.
        # Point stdout at devnull so the interpreter's exit-time flush
        # doesn't raise the same error again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def _main(args) -> int:
    if args.command == "trace":
        return _cmd_trace(args)

    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        _ensure_writable(trace_out)
    profile = bool(getattr(args, "profile", False))
    if profile:
        # Per-invocation report: drop whatever a previous in-process
        # call (tests) left in the aggregate.
        profiling.reset_aggregate()
    with _obs_env(trace_out, profile):
        rc = _dispatch(args)
    if profile:
        report = profiling.aggregate_report()
        if report is not None:
            print(report.render(), file=sys.stderr)
    return rc


def _cmd_bench(args) -> int:
    """``repro bench``: measure, print a summary, write the JSON."""
    from repro import benchmark

    report = benchmark.run_bench(
        quick=args.quick, out=args.out, seed=args.seed,
        progress=_progress(args.quiet),
    )
    print(benchmark.render_report(report))
    print(f"wrote {args.out}")
    rc = 0 if report["sweep"]["identical"] else 1
    if args.compare is not None:
        with open(args.compare) as fh:
            baseline = json.load(fh)
        lines, regressed = benchmark.compare_reports(report, baseline)
        print(f"-- compare vs {args.compare} --")
        for line in lines:
            print(line)
        if regressed:
            rc = rc or 2
    # Absent --compare, timing is machine noise; only a broken
    # determinism gate fails.
    return rc


def _run_config(args) -> SimulationConfig:
    """The ``repro run`` config: a scenario file or the config flags.

    A scenario file *is* the full configuration, so combining it with a
    config-shaping flag would silently ignore one of the two — reject
    the combination instead, naming the offending flag.
    """
    if args.scenario is None:
        return SimulationConfig(
            system=SYSTEMS.get(args.system),
            theta=args.theta,
            placement=args.placement,
            migration=(
                MigrationPolicy.paper_default()
                if args.migrate
                else MigrationPolicy.disabled()
            ),
            staging_fraction=args.staging,
            scheduler=args.scheduler,
            duration=hours(args.sim_hours),
            warmup=hours(args.warmup_hours),
            load=args.load,
            seed=args.seed,
        )
    overridden = [
        flag for dest, (flag, default) in _RUN_DEFAULTS.items()
        if getattr(args, dest) != default
    ]
    if overridden:
        raise SystemExit(
            f"--scenario provides the full configuration; "
            f"drop the conflicting flag(s): {', '.join(overridden)}"
        )
    try:
        scenario = load_scenario(args.scenario)
    except ValueError as exc:
        raise SystemExit(str(exc))
    print(
        f"scenario {scenario.name!r}"
        + (f": {scenario.description}" if scenario.description else ""),
        file=sys.stderr,
    )
    return scenario.config


def _cmd_list() -> int:
    """``repro list``: one block per registry, in registration order.

    Each block comes straight from ``Registry.describe()`` — the same
    help strings the registration sites publish — so the listing stays
    complete by construction as plugins are added.
    """
    from repro.core.elastic import SCALE_TRIGGERS, WARMERS
    from repro.core.policies import PAPER_POLICIES
    from repro.prefix import BATCHING, PREFIX_STRATEGIES
    from repro.workload.arrivals import ARRIVALS

    sections = (
        ("experiments", EXPERIMENTS),
        ("chaos experiments", CHAOS_EXPERIMENTS),
        ("allocators", ALLOCATORS),
        ("placements", PLACEMENTS),
        ("arrivals", ARRIVALS),
        ("systems", SYSTEMS),
        ("paper policies", PAPER_POLICIES),
        ("scale triggers", SCALE_TRIGGERS),
        ("replica warmers", WARMERS),
        ("prefix strategies", PREFIX_STRATEGIES),
        ("batching policies", BATCHING),
    )
    for index, (title, registry) in enumerate(sections):
        if index:
            print()
        print(f"{title} ({len(registry)}):")
        described = registry.describe()
        width = max((len(name) for name in described), default=0)
        for name, help_text in described.items():
            line = " ".join(str(help_text).split())  # one line, always
            if registry is PLACEMENTS:
                # Every placement is membership-capable; show which
                # elastic lifecycle hooks each class provides.
                hooks = ", ".join(registry.get(name).lifecycle_hooks())
                line = f"{line} [lifecycle: {hooks}]"
            print(f"  {name:<{width}}  {line}".rstrip())
    return 0


def _dispatch(args) -> int:
    if args.command == "list":
        return _cmd_list()

    if args.command == "bench":
        return _cmd_bench(args)

    if args.command == "run":
        config = _run_config(args)
        result = run_simulation(config)
        print(result)
        print(
            f"  arrivals={result.arrivals} accepted={result.accepted} "
            f"rejected={result.rejected} migrations={result.migrations} "
            f"events={result.events_fired}"
        )
        return 0

    progress = _progress(getattr(args, "quiet", False))
    if args.command == "all":
        return _run_all(args)
    if args.command == "chaos":
        return CHAOS_EXPERIMENTS.get(args.experiment).run_cli(args, progress)
    return EXPERIMENTS.get(args.command).run_cli(args, progress)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
