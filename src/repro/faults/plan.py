"""Declarative fault plans: *what* chaos to inject, not *when*.

A :class:`FaultPlan` is a frozen value object — the injector turns it
into concrete engine events using the run's seeded RNG substreams, so
the plan itself carries no randomness and hashes stably into the run's
provenance (``config_hash`` uses ``repr``).

All times are simulated seconds; all processes are memoryless
(exponential inter-event times), the standard MTBF/MTTR availability
model — stationary, and trivially reproducible from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.serialize import check_fields, optional_nested, shallow_dict


class _SerializableFaults:
    """Shared to_dict/from_dict for the flat fault dataclasses."""

    def to_dict(self) -> dict:
        """JSON-compatible dict; round-trips via :meth:`from_dict`."""
        return shallow_dict(self)

    @classmethod
    def from_dict(cls, data: dict):
        """Build from a (possibly partial) dict; unknown keys raise."""
        check_fields(cls, data)
        kwargs = dict(data)
        for key in ("servers", "factor_range"):
            if isinstance(kwargs.get(key), list):
                kwargs[key] = tuple(kwargs[key])
        return cls(**kwargs)


@dataclass(frozen=True)
class CrashFaults(_SerializableFaults):
    """Whole-node crash/repair cycling.

    Attributes:
        mtbf: mean time between failures per eligible server, seconds
            (measured from the previous repair — an alternating renewal
            process, so a server is up ``mtbf/(mtbf+mttr)`` of the time).
        mttr: mean time to repair, seconds.
        servers: eligible server ids; ``None`` means every server.
        correlation: probability that each *other* eligible server is
            dragged down by a crash (correlated failures: shared rack,
            shared power).  0 keeps crashes independent.
    """

    mtbf: float
    mttr: float
    servers: Optional[Tuple[int, ...]] = None
    correlation: float = 0.0

    def __post_init__(self) -> None:
        if self.mtbf <= 0:
            raise ValueError(f"crash mtbf must be positive, got {self.mtbf}")
        if self.mttr <= 0:
            raise ValueError(f"crash mttr must be positive, got {self.mttr}")
        if not 0.0 <= self.correlation <= 1.0:
            raise ValueError(
                f"correlation must be in [0, 1], got {self.correlation}"
            )


@dataclass(frozen=True)
class LinkFaults(_SerializableFaults):
    """Partial outbound-link degradation (brownout, not blackout).

    Attributes:
        mtbf: mean time between degradations per eligible server.
        mttr: mean degradation duration.
        factor_range: the surviving capacity fraction is drawn uniformly
            from this ``(low, high)`` interval, each endpoint in (0, 1].
        servers: eligible server ids; ``None`` means every server.
    """

    mtbf: float
    mttr: float
    factor_range: Tuple[float, float] = (0.3, 0.9)
    servers: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.mtbf <= 0:
            raise ValueError(f"link mtbf must be positive, got {self.mtbf}")
        if self.mttr <= 0:
            raise ValueError(f"link mttr must be positive, got {self.mttr}")
        low, high = self.factor_range
        if not (0.0 < low <= high <= 1.0):
            raise ValueError(
                f"factor_range must satisfy 0 < low <= high <= 1, "
                f"got {self.factor_range}"
            )


@dataclass(frozen=True)
class ReplicaFaults(_SerializableFaults):
    """On-disk replica destruction (bad sector, not a node outage).

    Attributes:
        mean_interval: cluster-wide mean seconds between loss events.
        servers: eligible server ids; ``None`` means every server.
    """

    mean_interval: float
    servers: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.mean_interval <= 0:
            raise ValueError(
                f"replica mean_interval must be positive, "
                f"got {self.mean_interval}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """The full chaos schedule for one run.

    Any subset of fault classes may be active; ``start`` delays all
    injection (typically set to the measurement warmup so the system
    reaches steady state before faults begin).
    """

    crash: Optional[CrashFaults] = None
    link: Optional[LinkFaults] = None
    replica: Optional[ReplicaFaults] = None
    start: float = 0.0

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")

    @property
    def empty(self) -> bool:
        """True when no fault class is configured."""
        return self.crash is None and self.link is None and self.replica is None

    def to_dict(self) -> dict:
        """JSON-compatible dict; round-trips via :meth:`from_dict`."""
        return {
            "crash": self.crash.to_dict() if self.crash else None,
            "link": self.link.to_dict() if self.link else None,
            "replica": self.replica.to_dict() if self.replica else None,
            "start": self.start,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Build from a (possibly partial) dict; unknown keys raise."""
        check_fields(cls, data)
        return cls(
            crash=optional_nested(data, "crash", CrashFaults),
            link=optional_nested(data, "link", LinkFaults),
            replica=optional_nested(data, "replica", ReplicaFaults),
            start=data.get("start", 0.0),
        )
