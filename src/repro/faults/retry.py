"""Graceful degradation: a bounded retry queue with backoff + jitter.

Without this, a rejected or failure-orphaned request is simply gone —
fine for the paper's steady-state utilization measurements, wrong for a
server facing *schedules* of failures.  The queue observes every
admission decision (via the controller's ``decision_hooks``) and every
mid-flight drop (via the failover manager's ``on_drop`` hooks), and
resubmits victims after exponential backoff with per-request jitter:

* the **delay** for attempt *k* is ``base_delay * 2**(k-1)`` capped at
  ``max_delay``, scaled by a uniform jitter factor in
  ``[1 - jitter, 1 + jitter]`` drawn from the *request's own* RNG
  substream (``retry.req<id>``) — so two same-seed runs back off
  identically regardless of event interleaving;
* the queue is **bounded** (``max_pending``) and each request gets at
  most ``max_attempts`` resubmissions; overflow and exhaustion are
  terminal (``request.retry_exhaust`` trace, ``retry.exhausted``
  counter) — that is the availability loss under chaos;
* a dropped stream keeps its transmitted bytes: consumption is frozen
  (:meth:`Request.pause_playback`) for the outage and resumes on
  re-admission, so the viewer stalls instead of silently losing data.

Accounting: every resubmission that actually fires counts as an arrival
(preserving ``accepted + rejected == arrivals`` per attempt) and as one
``retries`` tick (so ``distinct_arrivals = arrivals - retries`` counts
real viewers); see :class:`repro.analysis.metrics.SimulationMetrics`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cluster.controller import DistributionController
from repro.cluster.request import EPS_MB, Request
from repro.core.admission import AdmissionOutcome
from repro.core.failover import FailoverManager
from repro.obs.records import TraceKind
from repro.obs.tracer import Tracer
from repro.sim.engine import Engine
from repro.sim.rng import RandomStreams


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff configuration for the retry queue."""

    max_attempts: int = 4        #: resubmissions per request before giving up
    base_delay: float = 5.0      #: first-retry backoff, seconds
    max_delay: float = 300.0     #: backoff growth cap, seconds
    jitter: float = 0.5          #: uniform jitter half-width (0 = none)
    max_pending: int = 256       #: queue bound; overflow is terminal

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay <= 0:
            raise ValueError(
                f"base_delay must be positive, got {self.base_delay}"
            )
        if self.max_delay < self.base_delay:
            raise ValueError(
                f"max_delay must be >= base_delay, got {self.max_delay}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )

    def to_dict(self) -> dict:
        """JSON-compatible dict; round-trips via :meth:`from_dict`."""
        from repro.serialize import shallow_dict

        return shallow_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RetryPolicy":
        """Build from a (possibly partial) dict; unknown keys raise."""
        from repro.serialize import check_fields

        check_fields(cls, data)
        return cls(**data)

    def delay_for(self, attempt: int, jitter_draw: float) -> float:
        """Backoff before resubmission *attempt* (1-based).

        ``jitter_draw`` is a uniform [0, 1) sample from the request's
        stream; the caller owns the randomness so this stays pure.
        """
        delay = min(self.max_delay, self.base_delay * 2.0 ** (attempt - 1))
        return delay * (1.0 - self.jitter + 2.0 * self.jitter * jitter_draw)


class _Entry:
    __slots__ = ("request", "attempt", "event", "delay")

    def __init__(self, request: Request, attempt: int, event) -> None:
        self.request = request
        self.attempt = attempt
        self.event = event
        self.delay = 0.0


class RetryQueue:
    """Bounded backoff-and-resubmit loop over admission and failover.

    Args:
        engine: the simulation engine.
        controller: the cluster front door (resubmissions go through
            :meth:`DistributionController.resubmit`).
        streams: the run's RNG substream factory (jitter draws).
        policy: backoff configuration.
        failover: when given, mid-flight drops are captured too.
        tracer: optional obs tracer (``request.retry`` /
            ``request.retry_exhaust`` records).
    """

    def __init__(
        self,
        engine: Engine,
        controller: DistributionController,
        streams: RandomStreams,
        policy: Optional[RetryPolicy] = None,
        failover: Optional[FailoverManager] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.engine = engine
        self.controller = controller
        self.streams = streams
        self.policy = policy or RetryPolicy()
        self.tracer = tracer
        self.metrics = controller.metrics
        self._entries: Dict[int, _Entry] = {}
        controller.decision_hooks.append(self._on_decision)
        if failover is not None:
            failover.on_drop.append(self._on_drop)

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Requests currently waiting for a resubmission."""
        return len(self._entries)

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def _on_decision(self, outcome: AdmissionOutcome, request: Request) -> None:
        entry = self._entries.get(request.request_id)
        if outcome.accepted:
            if entry is not None:
                # A managed resubmission made it back in; success
                # accounting already happened in the admission layer.
                del self._entries[request.request_id]
            return
        if entry is not None:
            # A managed resubmission was rejected again: freeze the
            # viewer again (identity when nothing was ever sent) and
            # back off further.
            if request.bytes_sent > EPS_MB:
                request.pause_playback(self.engine.now)
            self._reschedule(entry)
        else:
            self._enqueue(request, first_attempt=1)

    def _on_drop(self, request: Request) -> None:
        """Failover dropped a live stream: stall the viewer, queue it."""
        now = self.engine.now
        if request.bytes_sent > EPS_MB:
            request.pause_playback(now)
        self._enqueue(request, first_attempt=1)

    # ------------------------------------------------------------------
    # Queue mechanics
    # ------------------------------------------------------------------
    def _enqueue(self, request: Request, first_attempt: int) -> None:
        if len(self._entries) >= self.policy.max_pending:
            self._exhaust(request, attempts=0, reason="queue_full")
            return
        entry = _Entry(request, first_attempt, None)
        self._entries[request.request_id] = entry
        self._schedule(entry)

    def _reschedule(self, entry: _Entry) -> None:
        entry.attempt += 1
        if entry.attempt > self.policy.max_attempts:
            del self._entries[entry.request.request_id]
            self._exhaust(
                entry.request,
                attempts=entry.attempt - 1,
                reason="max_attempts",
            )
            return
        self._schedule(entry)

    def _schedule(self, entry: _Entry) -> None:
        request = entry.request
        rng = self.streams.get(f"retry.req{request.request_id}")
        delay = self.policy.delay_for(entry.attempt, float(rng.random()))
        entry.delay = delay
        now = self.engine.now
        entry.event = self.engine.schedule(
            delay,
            lambda: self._fire(entry),
            kind=f"retry:req{request.request_id}",
        )
        if self.tracer is not None:
            self.tracer.emit(
                TraceKind.REQUEST_RETRY, now,
                request=request.request_id,
                video=request.video.video_id,
                attempt=entry.attempt, delay=delay,
            )

    def _fire(self, entry: _Entry) -> None:
        now = self.engine.now
        request = entry.request
        entry.event = None
        # Counted at fire time (not scheduling) so `retries` pairs 1:1
        # with the resubmission's arrival tick even if the run ends with
        # retries still queued.
        self.metrics.record_retry(entry.delay)
        request.prepare_retry(now)
        if request.playback_paused:
            # Optimistically resume; a re-rejection re-pauses at the
            # same instant in `_on_decision` (net identity — the outage
            # has already been folded into `playback_start`).
            request.resume_playback(now)
        self.controller.resubmit(request)

    def _exhaust(self, request: Request, attempts: int, reason: str) -> None:
        self.metrics.record_retry_exhausted()
        if self.tracer is not None:
            self.tracer.emit(
                TraceKind.REQUEST_RETRY_EXHAUST, self.engine.now,
                request=request.request_id,
                video=request.video.video_id,
                attempts=attempts, reason=reason,
            )
