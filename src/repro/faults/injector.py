"""Expanding a :class:`FaultPlan` into engine-scheduled chaos.

Every fault process draws from its own named RNG substream
(``fault.crash.<sid>``, ``fault.link.<sid>``, ``fault.replica``), so

* identical seeds give byte-identical fault schedules regardless of how
  the rest of the simulation interleaves its draws, and
* adding a fault class to a plan does not perturb the others.

Crash and link processes are alternating renewals: the next failure is
drawn from the moment of the previous *repair*, giving the standard
``mtbf/(mtbf+mttr)`` steady-state availability per server.  All repair
and relocation mechanics are delegated to
:class:`repro.core.failover.FailoverManager` — the injector only decides
*when* and *where*, never *how*.
"""

from __future__ import annotations

from typing import List

from repro.analysis.metrics import SimulationMetrics
from repro.core.failover import FailoverManager
from repro.faults.plan import FaultPlan
from repro.sim.engine import Engine
from repro.sim.rng import RandomStreams
from repro.workload.catalog import VideoCatalog


class FaultInjector:
    """Drive a :class:`FaultPlan` against a live cluster.

    Args:
        engine: the simulation engine (clock + agenda).
        failover: executes crash / degrade / replica-loss mechanics.
        streams: the run's named RNG substream factory.
        plan: the declarative chaos schedule.
        catalog: needed to resolve video ids for replica loss.
        metrics: fault counters (``faults.*``).

    Call :meth:`start` once after construction; the processes then
    self-perpetuate on the engine agenda.  Events scheduled beyond the
    run's ``run_until`` horizon simply never fire.
    """

    def __init__(
        self,
        engine: Engine,
        failover: FailoverManager,
        streams: RandomStreams,
        plan: FaultPlan,
        catalog: VideoCatalog,
        metrics: SimulationMetrics,
    ) -> None:
        self.engine = engine
        self.failover = failover
        self.streams = streams
        self.plan = plan
        self.catalog = catalog
        self.metrics = metrics
        self._started = False

    # ------------------------------------------------------------------
    def _eligible(self, restriction) -> List[int]:
        """Sorted eligible server ids (order matters for determinism)."""
        ids = sorted(self.failover.servers)
        if restriction is None:
            return ids
        allowed = set(restriction)
        return [sid for sid in ids if sid in allowed]

    def start(self) -> None:
        """Schedule the first event of every configured fault process."""
        if self._started:
            raise RuntimeError("FaultInjector.start() is single-use")
        self._started = True
        plan = self.plan
        t0 = max(plan.start, self.engine.now)
        if plan.crash is not None:
            for sid in self._eligible(plan.crash.servers):
                rng = self.streams.get(f"fault.crash.{sid}")
                self._schedule_crash(
                    sid, t0 + rng.exponential(plan.crash.mtbf)
                )
        if plan.link is not None:
            for sid in self._eligible(plan.link.servers):
                rng = self.streams.get(f"fault.link.{sid}")
                self._schedule_degrade(
                    sid, t0 + rng.exponential(plan.link.mtbf)
                )
        if plan.replica is not None:
            rng = self.streams.get("fault.replica")
            self._schedule_replica_loss(
                t0 + rng.exponential(plan.replica.mean_interval)
            )

    # ------------------------------------------------------------------
    # Crash / repair (alternating renewal, optional correlation)
    # ------------------------------------------------------------------
    def _schedule_crash(self, sid: int, when: float) -> None:
        self.engine.schedule_at(
            when, lambda: self._crash(sid), kind=f"fault.crash:srv{sid}"
        )

    def _crash(self, sid: int) -> None:
        crash = self.plan.crash
        rng = self.streams.get(f"fault.crash.{sid}")
        victims = [sid]
        if crash.correlation > 0.0:
            # Correlated blast radius: every *other* eligible server
            # joins independently with probability `correlation`.  The
            # coin flips come from the primary's stream in sorted-victim
            # order, so the draw sequence is a pure function of the seed.
            for other in self._eligible(crash.servers):
                if other != sid and rng.random() < crash.correlation:
                    victims.append(other)
        repair_time = 0.0
        for victim in victims:
            # fail_server is idempotent — a victim already down (its own
            # process fired, or an earlier correlated crash) is a no-op.
            self.failover.fail_server(victim)
            self.metrics.record_fault("crash")
            victim_repair = self.engine.now + rng.exponential(crash.mttr)
            self.engine.schedule_at(
                victim_repair,
                lambda v=victim: self.failover.restore_server(v),
                kind=f"fault.repair:srv{victim}",
            )
            if victim == sid:
                repair_time = victim_repair
        # Next crash of *this* server's process, measured from its own
        # repair (a down server cannot fail again).
        self._schedule_crash(sid, repair_time + rng.exponential(crash.mtbf))

    # ------------------------------------------------------------------
    # Partial link degradation
    # ------------------------------------------------------------------
    def _schedule_degrade(self, sid: int, when: float) -> None:
        self.engine.schedule_at(
            when, lambda: self._degrade(sid), kind=f"fault.degrade:srv{sid}"
        )

    def _degrade(self, sid: int) -> None:
        link = self.plan.link
        rng = self.streams.get(f"fault.link.{sid}")
        low, high = link.factor_range
        factor = float(rng.uniform(low, high))
        self.failover.degrade_server(sid, factor)
        self.metrics.record_fault("degrade")
        restore_time = self.engine.now + rng.exponential(link.mttr)
        self.engine.schedule_at(
            restore_time,
            lambda: self.failover.restore_link(sid),
            kind=f"fault.link_restore:srv{sid}",
        )
        self._schedule_degrade(sid, restore_time + rng.exponential(link.mtbf))

    # ------------------------------------------------------------------
    # Replica loss (cluster-wide Poisson process)
    # ------------------------------------------------------------------
    def _schedule_replica_loss(self, when: float) -> None:
        self.engine.schedule_at(
            when, self._lose_replica, kind="fault.replica_loss"
        )

    def _lose_replica(self) -> None:
        plan = self.plan.replica
        rng = self.streams.get("fault.replica")
        eligible = self._eligible(plan.servers)
        if eligible:
            sid = eligible[int(rng.integers(len(eligible)))]
            holdings = sorted(self.failover.servers[sid].holdings)
            if holdings:
                vid = holdings[int(rng.integers(len(holdings)))]
                self.failover.lose_replica(sid, self.catalog[vid])
                self.metrics.record_fault("replica_loss")
        self._schedule_replica_loss(
            self.engine.now + rng.exponential(plan.mean_interval)
        )
