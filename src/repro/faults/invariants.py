"""Online invariant checking: a tripwire over the fluid-flow state.

The checker subscribes to the engine's trace hook, so it sees every
event just before it fires (with the clock already advanced to the
event's timestamp).  Clock monotonicity is asserted per event; the
state-projection invariants are asserted every ``check_interval`` events
— between events all state evolves linearly, so projecting each stream
to *now* and checking there covers the whole interval:

* **conservation of bytes** — no attached stream sends more than its
  video's size (within float tolerance);
* **per-server capacity** — ``sum(rates) <= B_server`` on every up
  server (degraded links use the degraded capacity);
* **no-underrun** — ``bytes_viewed(now) <= bytes_sent(now)`` for every
  minimum-flow stream outside a migration switch gap.  (Under the
  intermittent discipline ``bytes_viewed`` is *demanded* playback and
  underruns are a tracked outcome, not a bug — so the check is gated
  on the allocator's ``minimum_flow`` flag.);
* **clock / heap monotonicity** — fired event times never decrease.

A failed assertion raises :class:`InvariantViolation` carrying the
offending subject and the recent event window; the exception propagates
out of ``engine.run_until`` and aborts the run (and, optionally, is
mirrored as an ``invariant.violation`` trace record first, so the JSONL
trace ends with the diagnosis).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.cluster.controller import DistributionController
from repro.obs.records import TraceKind
from repro.obs.tracer import Tracer
from repro.sim.engine import Engine

#: Capacity / conservation tolerance, Mb resp. Mb/s.  Wider than
#: ``EPS_MB`` because ``bytes_sent`` accumulates one multiply-add of
#: float error per sync event while ``bytes_viewed`` is a single closed
#: form — the two legitimately drift apart by float noise over long
#: runs.  1e-3 Mb (a millisecond of playback) matches the tolerance the
#: metrics sanity check already uses and is orders of magnitude below
#: anything physically meaningful (videos are 10^3..10^5 Mb).
EPS_CHECK = 1e-3


class InvariantViolation(AssertionError):
    """A simulation invariant was observed broken.

    Attributes:
        invariant: short name (``conservation`` / ``capacity`` /
            ``no_underrun`` / ``monotonic_clock``).
        subject: what broke (``request 17`` / ``server 3``).
        detail: human-readable measurement.
        time: simulation time of the check.
        window: recent ``(time, event_kind)`` pairs leading up to the
            violation — the offending trace window.
    """

    def __init__(
        self,
        invariant: str,
        subject: str,
        detail: str,
        time: float,
        window: List[Tuple[float, str]],
    ) -> None:
        super().__init__(
            f"[{invariant}] {subject} at t={time:.6g}: {detail} "
            f"(last {len(window)} events: {window})"
        )
        self.invariant = invariant
        self.subject = subject
        self.detail = detail
        self.time = time
        self.window = window


class InvariantChecker:
    """Engine trace subscriber asserting the fluid-flow invariants.

    Args:
        engine: the engine to watch (subscribe via :meth:`attach`).
        controller: the cluster under test.
        check_interval: events between full state projections (1 checks
            at every event; the default keeps overhead low on long runs).
        window: number of recent events retained for violation reports.
        tracer: optional tracer; violations are mirrored as
            ``invariant.violation`` records before raising.
    """

    def __init__(
        self,
        engine: Engine,
        controller: DistributionController,
        check_interval: int = 64,
        window: int = 32,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if check_interval < 1:
            raise ValueError(
                f"check_interval must be >= 1, got {check_interval}"
            )
        self.engine = engine
        self.controller = controller
        self.check_interval = int(check_interval)
        self.tracer = tracer
        self._recent: Deque[Tuple[float, str]] = deque(maxlen=window)
        self._last_time = float("-inf")
        self._count = 0
        self.checks_run = 0
        self._attached = False

    # ------------------------------------------------------------------
    def attach(self) -> None:
        if self._attached:
            return
        self.engine.add_trace(self._on_event)
        self._attached = True

    def detach(self) -> None:
        if not self._attached:
            return
        self.engine.remove_trace(self._on_event)
        self._attached = False

    # ------------------------------------------------------------------
    def _violate(self, invariant: str, subject: str, detail: str) -> None:
        now = self.engine.now
        window = list(self._recent)
        if self.tracer is not None:
            self.tracer.emit(
                TraceKind.INVARIANT_VIOLATION, now,
                invariant=invariant, subject=subject, detail=detail,
            )
        raise InvariantViolation(invariant, subject, detail, now, window)

    def _on_event(self, event) -> None:
        t = event.time
        if t < self._last_time:
            self._violate(
                "monotonic_clock",
                f"event {event.kind or '<anon>'}",
                f"fired at {t} after {self._last_time}",
            )
        self._last_time = t
        self._recent.append((t, event.kind))
        self._count += 1
        if self._count % self.check_interval == 0:
            self.check_now()

    # ------------------------------------------------------------------
    def check_now(self) -> None:
        """Project every attached stream to the current clock and assert
        the state invariants.  Public so tests (and end-of-run hooks)
        can force a final sweep."""
        now = self.engine.now
        self.checks_run += 1
        for server in self.controller.servers.values():
            if not server.up:
                continue
            manager = self.controller.managers[server.server_id]
            minimum_flow = manager.allocator.minimum_flow
            total_rate = 0.0
            for r in server.iter_active():
                rate = r.rate
                total_rate += rate
                sent = r.bytes_sent + rate * (now - r.last_sync)
                if sent > r.video.size + EPS_CHECK:
                    self._violate(
                        "conservation",
                        f"request {r.request_id}",
                        f"bytes_sent {sent:.6f} > size {r.video.size:.6f}",
                    )
                viewed = r.bytes_viewed(now)
                if (
                    minimum_flow
                    and now >= r.paused_until
                    and sent - viewed < -EPS_CHECK
                ):
                    # Outside a migration switch gap a minimum-flow
                    # stream transmits at >= its drain rate, so the
                    # client buffer can never go negative.
                    self._violate(
                        "no_underrun",
                        f"request {r.request_id}",
                        f"buffer {sent - viewed:.6f} Mb < 0 on server "
                        f"{server.server_id}",
                    )
            if total_rate > server.bandwidth + EPS_CHECK:
                self._violate(
                    "capacity",
                    f"server {server.server_id}",
                    f"sum(rates) {total_rate:.6f} > link "
                    f"{server.bandwidth:.6f} Mb/s",
                )
