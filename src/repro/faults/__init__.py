"""Deterministic fault injection, online invariants, graceful degradation.

The paper's Section 3.1 remark — DRM "can help deal with node server
failures" — is exercised here as a first-class workload: a declarative
:class:`FaultPlan` is expanded by the :class:`FaultInjector` into
engine-scheduled failure/repair processes driven by the run's named RNG
substreams, so identical seeds give byte-identical chaos runs.  The
:class:`InvariantChecker` rides along as an engine trace subscriber and
halts the run with a structured :class:`InvariantViolation` the moment
the fluid-flow state stops conserving bytes or overcommits a link.  The
:class:`RetryQueue` closes the loop on the client side: rejected and
failure-orphaned requests re-enter admission with exponential backoff
instead of being silently lost.

See ``docs/ROBUSTNESS.md`` for the fault model and how to read chaos
traces.
"""

from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantChecker, InvariantViolation
from repro.faults.plan import (
    CrashFaults,
    FaultPlan,
    LinkFaults,
    ReplicaFaults,
)
from repro.faults.retry import RetryPolicy, RetryQueue

__all__ = [
    "CrashFaults",
    "FaultInjector",
    "FaultPlan",
    "InvariantChecker",
    "InvariantViolation",
    "LinkFaults",
    "ReplicaFaults",
    "RetryPolicy",
    "RetryQueue",
]
