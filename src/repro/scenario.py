"""Declarative scenarios: one full simulation setup as a JSON file.

A *scenario* is a named, human-editable :class:`SimulationConfig`::

    {
      "name": "p4-small-smoke",
      "description": "Policy P4 on the small system, 30 min smoke run",
      "config": {
        "system": {"preset": "small"},
        "theta": 0.0,
        "migration": {"enabled": true},
        ...
      }
    }

``repro run --scenario FILE`` executes one; the committed files under
``scenarios/`` double as documentation and as CI smoke inputs.  The
round trip is exact: :func:`save_scenario` output re-loads to an equal
config (byte-identity is pinned by a golden test), and partial configs
fall back to the dataclass defaults — see :mod:`repro.serialize` for
the contract.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Union

from repro.simulation import SimulationConfig

#: Top-level keys a scenario file may carry.
_KEYS = ("name", "description", "config")


@dataclass(frozen=True)
class Scenario:
    """A named, described simulation configuration."""

    name: str
    description: str
    config: SimulationConfig


def load_scenario(path: Union[str, Path]) -> Scenario:
    """Parse and validate a scenario JSON file.

    Raises:
        SystemExit-friendly :class:`ValueError` naming the file and the
        offending key for every malformed input (typos must not vanish
        silently).
    """
    path = Path(path)
    try:
        with open(path) as fh:
            raw = json.load(fh)
    except OSError as exc:
        raise ValueError(f"cannot read scenario {str(path)!r}: {exc}") from None
    except json.JSONDecodeError as exc:
        # exc already carries "line L column C (char N)".
        raise ValueError(f"{path}: not valid JSON: {exc}") from None
    except UnicodeDecodeError as exc:
        raise ValueError(
            f"{path}: not valid JSON: undecodable byte at offset "
            f"{exc.start} ({exc.reason})"
        ) from None
    if not isinstance(raw, dict):
        raise ValueError(
            f"{path}: a scenario must be a JSON object, "
            f"got {type(raw).__name__}"
        )
    unknown = sorted(set(raw) - set(_KEYS))
    if unknown:
        keys = ", ".join(repr(k) for k in unknown)
        raise ValueError(
            f"{path}: unknown scenario key(s) {keys}; "
            f"valid keys: {', '.join(_KEYS)}"
        )
    if "config" not in raw:
        raise ValueError(f"{path}: scenario is missing the 'config' object")
    try:
        config = SimulationConfig.from_dict(raw["config"])
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{path}: invalid config: {exc}") from None
    return Scenario(
        name=str(raw.get("name", path.stem)),
        description=str(raw.get("description", "")),
        config=config,
    )


def save_scenario(scenario: Scenario, path: Union[str, Path]) -> None:
    """Write *scenario* as deterministic JSON (golden-test stable).

    The output is byte-reproducible for equal inputs: fixed key order
    (insertion order of :meth:`SimulationConfig.to_dict`), two-space
    indent, trailing newline.
    """
    payload = {
        "name": scenario.name,
        "description": scenario.description,
        "config": scenario.config.to_dict(),
    }
    with open(path, "w") as fh:
        fh.write(json.dumps(payload, indent=2) + "\n")
