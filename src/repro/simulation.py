"""High-level facade: configure, build and run one simulation.

This is the main public entry point::

    from repro import Simulation, SimulationConfig, SMALL_SYSTEM
    from repro.core.migration import MigrationPolicy

    cfg = SimulationConfig(
        system=SMALL_SYSTEM,
        theta=0.5,
        placement="even",
        migration=MigrationPolicy.paper_default(),
        staging_fraction=0.2,
        duration=3600.0 * 50,
        seed=7,
    )
    result = Simulation(cfg).run()
    print(result.utilization)

The builder wires: RNG substreams → catalog → Zipf demand → placement →
servers/managers → distribution controller → Poisson arrivals, then
runs the engine for ``duration`` seconds and measures Section 4.1's
utilization and rejection statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro import obs
from repro.analysis.metrics import SimulationMetrics
from repro.cluster.client import ClientProfile, staging_capacity
from repro.cluster.controller import DistributionController
from repro.cluster.request import reset_request_ids
from repro.cluster.system import SystemConfig
from repro.core.migration import MigrationPolicy
from repro.core.failover import FailoverManager
from repro.core.replication import DynamicReplicator, ReplicationPolicy
from repro.core.schedulers import ALLOCATORS
from repro.faults import (
    FaultInjector,
    FaultPlan,
    InvariantChecker,
    RetryPolicy,
    RetryQueue,
)
from repro.placement import PLACEMENTS
from repro.placement.base import PlacementResult
from repro.sim.engine import Engine
from repro.sim.rng import RandomStreams
from repro.workload.arrivals import PoissonArrivalProcess, calibrated_arrival_rate
from repro.workload.catalog import VideoCatalog, make_catalog
from repro.workload.zipf import ZipfPopularity


@dataclass(frozen=True)
class SimulationConfig:
    """Everything needed to reproduce one run.

    Attributes:
        system: cluster + catalog parameterisation (Figure 3 presets).
        theta: Zipf demand-uniformity parameter (1 = uniform).
        placement: placement registry key (see ``repro.placement``).
        migration: DRM configuration.
        staging_fraction: client staging buffer as a fraction of the
            mean video size (0.2 is the paper's near-optimum).
        scheduler: allocator registry key (``"eftf"`` default).
        duration: simulated seconds (measurement window end).
        warmup: seconds excluded from the measurement at the start of
            the run.  The paper simulates 1000 hours so its ramp-in is
            negligible; at the scaled durations used here a warmup of a
            few mean video lengths removes the empty-system bias.
        load: offered load as a fraction of cluster capacity (paper: 1).
        seed: root seed; all randomness derives from it.
        client_receive_bandwidth: overrides the system's per-client
            ingest cap when set; ``math.inf`` removes the cap
            (Theorem 1's regime).
        replication: enable the dynamic-replication extension with the
            given policy (None = static placement, as in the paper).
        pause_hazard: per-second rate at which playing viewers hit
            pause (VCR interactivity extension; 0 disables, as in the
            paper and Theorem 1's assumption).
        mean_pause: mean pause length in seconds (exponential).
        client_mix: heterogeneous client population (extension; the
            paper's §6 notes "client resource capabilities can vary"):
            a tuple of ``(weight, staging_fraction)`` classes sampled
            per request.  ``None`` (default) gives every client the
            homogeneous ``staging_fraction`` buffer.
        faults: declarative chaos schedule (see
            :class:`repro.faults.FaultPlan`); ``None`` (default) injects
            nothing, as in the paper.
        retry: graceful-degradation retry queue configuration (see
            :class:`repro.faults.RetryPolicy`); ``None`` (default)
            loses rejected/orphaned requests, as in the paper.
        invariants: attach the online invariant checker
            (:class:`repro.faults.InvariantChecker`); also switchable
            per-environment via ``REPRO_INVARIANTS=1``.
    """

    system: SystemConfig
    theta: float
    placement: str = "even"
    migration: MigrationPolicy = field(default_factory=MigrationPolicy.disabled)
    staging_fraction: float = 0.0
    scheduler: str = "eftf"
    admission: str = "minflow"
    duration: float = 3600.0 * 100
    warmup: float = 0.0
    load: float = 1.0
    seed: int = 0
    client_receive_bandwidth: Optional[float] = None
    replication: Optional["ReplicationPolicy"] = None
    pause_hazard: float = 0.0
    mean_pause: float = 300.0
    client_mix: Optional[Tuple[Tuple[float, float], ...]] = None
    faults: Optional[FaultPlan] = None
    retry: Optional[RetryPolicy] = None
    invariants: bool = False

    def __post_init__(self) -> None:
        if self.client_mix is not None:
            if not self.client_mix:
                raise ValueError("client_mix must have at least one class")
            for weight, fraction in self.client_mix:
                if weight <= 0:
                    raise ValueError(
                        f"client_mix weights must be positive, got {weight}"
                    )
                if fraction < 0:
                    raise ValueError(
                        f"client_mix staging fractions must be >= 0, "
                        f"got {fraction}"
                    )
        if self.pause_hazard < 0:
            raise ValueError(
                f"pause_hazard must be >= 0, got {self.pause_hazard}"
            )
        if self.mean_pause <= 0:
            raise ValueError(
                f"mean_pause must be positive, got {self.mean_pause}"
            )
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {self.placement!r}; "
                f"choose from {sorted(PLACEMENTS)}"
            )
        if self.scheduler not in ALLOCATORS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; "
                f"choose from {sorted(ALLOCATORS)}"
            )
        if self.admission not in ("minflow", "overbook"):
            raise ValueError(
                f"admission must be 'minflow' or 'overbook', "
                f"got {self.admission!r}"
            )
        if self.admission == "overbook" and self.scheduler != "intermittent":
            raise ValueError(
                "overbooked admission requires the intermittent scheduler "
                "(minimum-flow allocators cannot serve more than the SVBR)"
            )
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if not 0 <= self.warmup < self.duration:
            raise ValueError(
                f"warmup must be in [0, duration), got {self.warmup}"
            )
        if self.staging_fraction < 0:
            raise ValueError(
                f"staging_fraction must be >= 0, got {self.staging_fraction}"
            )
        if self.load <= 0:
            raise ValueError(f"load must be positive, got {self.load}")


@dataclass
class SimulationResult:
    """Measured outputs of one run."""

    config: SimulationConfig
    utilization: float
    acceptance_ratio: float
    rejection_ratio: float
    arrivals: int
    accepted: int
    rejected: int
    migrations: int
    migration_attempts: int
    finished: int
    dropped: int
    underruns: int
    offered_load: float
    arrival_rate: float
    megabits_sent: float
    placement_shortfall: int
    events_fired: int
    #: Graceful-degradation / chaos measures (all zero-ish defaults so
    #: fault-free runs read naturally).
    retries: int = 0
    retry_exhausted: int = 0
    retry_pending: int = 0
    faults_injected: int = 0
    availability: float = 1.0
    #: Who/what produced this run (seed, version, config hash, REPRO_*
    #: env) — see :func:`repro.obs.provenance.run_provenance`.  Carries
    #: a timestamp, so it is excluded from equality comparisons.
    provenance: Dict = field(default_factory=dict, compare=False)

    def __str__(self) -> str:
        return (
            f"utilization={self.utilization:.4f} "
            f"accept={self.acceptance_ratio:.4f} "
            f"arrivals={self.arrivals} migrations={self.migrations}"
        )


class Simulation:
    """Build and run one configured simulation.

    Construction performs the static phase (catalog, placement, server
    wiring); :meth:`run` performs the dynamic phase.  A Simulation is
    single-use: call :meth:`run` once.

    Observability (all optional, zero overhead when off):

    * *tracer* — a :class:`repro.obs.Tracer` receiving structured
      records from every layer; auto-created when ``REPRO_TRACE_OUT``
      is set (the trace is appended there after :meth:`run`).
    * *profiler* — a :class:`repro.obs.EventProfiler` accounting
      per-event-kind wall clock; auto-created (and folded into the
      process aggregate) when ``REPRO_PROFILE`` is on.
    * :attr:`registry` — a :class:`repro.obs.MetricsRegistry` the run's
      :class:`SimulationMetrics` registers into; snapshot via
      ``sim.registry.snapshot()``.
    """

    def __init__(
        self,
        config: SimulationConfig,
        tracer: Optional[obs.Tracer] = None,
        profiler: Optional[obs.EventProfiler] = None,
    ) -> None:
        self.config = config
        # Request ids restart at zero per Simulation: ids seed per-request
        # RNG substreams (retry jitter), so a process-global counter
        # would make results depend on how many runs a reused sweep
        # worker had already executed.
        reset_request_ids()
        self.streams = RandomStreams(seed=config.seed)
        self.engine = Engine()

        self._trace_path = obs.env_trace_path()
        if tracer is None and self._trace_path is not None:
            tracer = obs.Tracer()
        self.tracer = tracer
        self._env_profile = obs.env_profile_enabled()
        if profiler is None and self._env_profile:
            profiler = obs.EventProfiler()
        self.profiler = profiler
        self.registry = obs.MetricsRegistry()

        system = config.system
        self.catalog: VideoCatalog = make_catalog(
            system.n_videos,
            system.video_length_range,
            self.streams.get("catalog"),
            view_bandwidth=system.view_bandwidth,
        )
        self.popularity = ZipfPopularity(system.n_videos, config.theta)

        self.servers = system.build_servers()
        policy_cls = PLACEMENTS[config.placement]
        self.placement_result: PlacementResult = policy_cls().allocate(
            self.catalog,
            self.popularity,
            self.servers,
            system.total_copies,
            self.streams.get("placement"),
        )

        receive_bw = (
            config.client_receive_bandwidth
            if config.client_receive_bandwidth is not None
            else system.client_receive_bandwidth
        )
        if config.client_mix is None:
            buffer_capacity = staging_capacity(
                config.staging_fraction, self.catalog.mean_size
            )
            profile = ClientProfile(
                buffer_capacity=buffer_capacity,
                receive_bandwidth=receive_bw,
            )
        else:
            # Heterogeneous clients: one immutable profile per class,
            # sampled per request from a dedicated stream.
            weights = np.array(
                [w for w, _ in config.client_mix], dtype=np.float64
            )
            weights /= weights.sum()
            profiles = [
                ClientProfile(
                    buffer_capacity=staging_capacity(
                        frac, self.catalog.mean_size
                    ) if frac > 0 else 0.0,
                    receive_bandwidth=receive_bw,
                )
                for _, frac in config.client_mix
            ]
            client_rng = self.streams.get("clients")

            def profile(video_id: int) -> ClientProfile:
                idx = int(client_rng.choice(len(profiles), p=weights))
                return profiles[idx]

        self.controller = DistributionController(
            engine=self.engine,
            servers=self.servers,
            catalog=self.catalog,
            placement=self.placement_result.placement,
            client_profile=profile,
            allocator=ALLOCATORS[config.scheduler](),
            migration_policy=config.migration,
            metrics=SimulationMetrics(registry=self.registry),
            admission_mode=config.admission,
            tracer=self.tracer,
        )

        self.interactivity = None
        if config.pause_hazard > 0.0:
            from repro.workload.interactivity import InteractivityModel

            self.interactivity = InteractivityModel(
                engine=self.engine,
                controller=self.controller,
                rng=self.streams.get("interactivity"),
                pause_hazard=config.pause_hazard,
                mean_pause_duration=config.mean_pause,
            )

        # Robustness layer (repro.faults): failover mechanics are built
        # whenever chaos or a retry queue needs them; the injector and
        # checker are strictly opt-in.
        inject = config.faults is not None and not config.faults.empty
        self.failover: Optional[FailoverManager] = None
        if inject or config.retry is not None:
            self.failover = FailoverManager(
                engine=self.engine,
                servers=self.controller.servers,
                managers=self.controller.managers,
                placement=self.placement_result.placement,
                metrics=self.metrics,
                tracer=self.tracer,
            )
        self.retry_queue: Optional[RetryQueue] = None
        if config.retry is not None:
            self.retry_queue = RetryQueue(
                engine=self.engine,
                controller=self.controller,
                streams=self.streams,
                policy=config.retry,
                failover=self.failover,
                tracer=self.tracer,
            )
        self.fault_injector: Optional[FaultInjector] = None
        if inject:
            self.fault_injector = FaultInjector(
                engine=self.engine,
                failover=self.failover,
                streams=self.streams,
                plan=config.faults,
                catalog=self.catalog,
                metrics=self.metrics,
            )
            self.fault_injector.start()
        self.invariant_checker: Optional[InvariantChecker] = None
        if config.invariants or obs.env_invariants_enabled():
            self.invariant_checker = InvariantChecker(
                self.engine, self.controller, tracer=self.tracer
            )
            self.invariant_checker.attach()

        self.replicator: Optional[DynamicReplicator] = None
        if config.replication is not None:
            self.replicator = DynamicReplicator(
                engine=self.engine,
                servers=self.controller.servers,
                placement=self.placement_result.placement,
                catalog=self.catalog,
                policy=config.replication,
            )
            self.controller.decision_hooks.append(self.replicator.observe)

        self.arrival_rate = calibrated_arrival_rate(
            self.popularity,
            self.catalog,
            system.total_bandwidth,
            load=config.load,
        )
        self._arrivals = PoissonArrivalProcess(
            engine=self.engine,
            rate=self.arrival_rate,
            popularity=self.popularity,
            rng=self.streams.get("arrivals"),
            on_arrival=self.controller.submit,
        )
        self._ran = False

    @property
    def metrics(self) -> SimulationMetrics:
        return self.controller.metrics

    def run(self) -> SimulationResult:
        """Advance the engine for ``duration`` seconds and measure."""
        if self._ran:
            raise RuntimeError("Simulation objects are single-use")
        self._ran = True
        cfg = self.config
        if self.profiler is not None:
            self.profiler.attach(self.engine)
        try:
            if cfg.warmup > 0.0:
                # Run the ramp-in, settle the transfer accounting at the
                # warmup instant, then discard everything measured so
                # far.  (The tracer is deliberately *not* cleared: the
                # ramp-in records are part of the debugging story.)
                self.engine.run_until(cfg.warmup)
                for manager in self.controller.managers.values():
                    manager.flush(cfg.warmup)
                self.metrics.reset()
            self.engine.run_until(cfg.duration)
        finally:
            if self.profiler is not None:
                self.profiler.detach()
        self._arrivals.stop()
        if self.invariant_checker is not None:
            self.invariant_checker.check_now()
        self.controller.finalize(cfg.duration)
        provenance = obs.run_provenance(seed=cfg.seed, config=cfg)
        if self.tracer is not None and self._trace_path is not None:
            self.tracer.export_jsonl(
                self._trace_path, provenance=provenance, append=True
            )
        if self.profiler is not None and self._env_profile:
            from repro.obs import profiler as profiling

            profiling.aggregate(self.profiler)
        metrics = self.metrics
        total_bw = cfg.system.total_bandwidth
        window = cfg.duration - cfg.warmup
        pending = self.retry_queue.pending if self.retry_queue else 0
        return SimulationResult(
            config=cfg,
            utilization=metrics.utilization(total_bw, window),
            acceptance_ratio=metrics.acceptance_ratio,
            rejection_ratio=metrics.rejection_ratio,
            arrivals=metrics.arrivals,
            accepted=metrics.accepted,
            rejected=metrics.rejected,
            migrations=metrics.migrations,
            migration_attempts=metrics.migration_attempts,
            finished=metrics.finished,
            dropped=metrics.dropped,
            underruns=metrics.underruns,
            offered_load=cfg.load,
            arrival_rate=self.arrival_rate,
            megabits_sent=metrics.total_megabits,
            placement_shortfall=self.placement_result.shortfall,
            events_fired=self.engine.events_fired,
            retries=metrics.retries,
            retry_exhausted=metrics.retry_exhausted,
            retry_pending=pending,
            faults_injected=metrics.faults_injected,
            availability=metrics.availability(pending_retries=pending),
            provenance=provenance,
        )


def run_simulation(config: SimulationConfig) -> SimulationResult:
    """One-shot convenience wrapper."""
    return Simulation(config).run()
