"""High-level facade: configure, build and run one simulation.

This is the main public entry point::

    from repro import Simulation, SimulationConfig, SMALL_SYSTEM
    from repro.core.migration import MigrationPolicy

    cfg = SimulationConfig(
        system=SMALL_SYSTEM,
        theta=0.5,
        placement="even",
        migration=MigrationPolicy.paper_default(),
        staging_fraction=0.2,
        duration=3600.0 * 50,
        seed=7,
    )
    result = Simulation(cfg).run()
    print(result.utilization)

The builder wires: RNG substreams → catalog → Zipf demand → placement →
servers/managers → distribution controller → Poisson arrivals, then
runs the engine for ``duration`` seconds and measures Section 4.1's
utilization and rejection statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple

import numpy as np

from repro import obs
from repro.analysis.metrics import SimulationMetrics
from repro.cluster.client import ClientProfile, staging_capacity
from repro.cluster.controller import DistributionController
from repro.cluster.membership import ClusterMembership
from repro.cluster.profile import (
    CalibrationConfig,
    ClusterProfile,
    calibrate,
    identity_profile,
)
from repro.cluster.request import reset_request_ids
from repro.cluster.system import SYSTEMS, SystemConfig
from repro.core.elastic import ElasticPolicy, ElasticScaler
from repro.core.migration import MigrationPolicy
from repro.core.failover import FailoverManager
from repro.core.replication import DynamicReplicator, ReplicationPolicy
from repro.core.schedulers import ALLOCATORS
from repro.faults import (
    FaultInjector,
    FaultPlan,
    InvariantChecker,
    RetryPolicy,
    RetryQueue,
)
from repro.placement import PLACEMENTS
from repro.placement.base import PlacementResult
from repro.prefix import PrefixPolicy, PrefixTier
from repro.serialize import check_fields
from repro.sim.engine import Engine
from repro.sim.rng import RandomStreams
from repro.workload.arrivals import ARRIVALS, calibrated_arrival_rate
from repro.workload.catalog import VideoCatalog, make_catalog
from repro.workload.zipf import ZipfPopularity


@dataclass(frozen=True)
class SimulationConfig:
    """Everything needed to reproduce one run.

    Attributes:
        system: cluster + catalog parameterisation (Figure 3 presets).
        theta: Zipf demand-uniformity parameter (1 = uniform).
        placement: placement registry key (see ``repro.placement``).
        migration: DRM configuration.
        staging_fraction: client staging buffer as a fraction of the
            mean video size (0.2 is the paper's near-optimum).
        scheduler: allocator registry key (``"eftf"`` default).
        duration: simulated seconds (measurement window end).
        warmup: seconds excluded from the measurement at the start of
            the run.  The paper simulates 1000 hours so its ramp-in is
            negligible; at the scaled durations used here a warmup of a
            few mean video lengths removes the empty-system bias.
        load: offered load as a fraction of cluster capacity (paper: 1).
        seed: root seed; all randomness derives from it.
        client_receive_bandwidth: overrides the system's per-client
            ingest cap when set; ``math.inf`` removes the cap
            (Theorem 1's regime).
        replication: enable the dynamic-replication extension with the
            given policy (None = static placement, as in the paper).
        pause_hazard: per-second rate at which playing viewers hit
            pause (VCR interactivity extension; 0 disables, as in the
            paper and Theorem 1's assumption).
        mean_pause: mean pause length in seconds (exponential).
        client_mix: heterogeneous client population (extension; the
            paper's §6 notes "client resource capabilities can vary"):
            a tuple of ``(weight, staging_fraction)`` classes sampled
            per request.  ``None`` (default) gives every client the
            homogeneous ``staging_fraction`` buffer.
        faults: declarative chaos schedule (see
            :class:`repro.faults.FaultPlan`); ``None`` (default) injects
            nothing, as in the paper.
        retry: graceful-degradation retry queue configuration (see
            :class:`repro.faults.RetryPolicy`); ``None`` (default)
            loses rejected/orphaned requests, as in the paper.
        invariants: attach the online invariant checker
            (:class:`repro.faults.InvariantChecker`); also switchable
            per-environment via ``REPRO_INVARIANTS=1``.
        arrivals: arrival-process registry key (see
            :data:`repro.workload.arrivals.ARRIVALS`); ``"poisson"``
            (the paper's model) or ``"bursty"``.
        arrival_params: extra keyword arguments for the arrival-process
            constructor, as a tuple of ``(name, value)`` pairs (a tuple
            so the config stays hashable; scenario files write a JSON
            object).  E.g. ``(("burst_multiplier", 4.0),)``.
        calibration: run the deterministic calibration micro-benchmark
            (:mod:`repro.cluster.profile`) so every policy reads
            *measured* per-server capacities; ``None`` (default) uses
            the identity profile (measured == preset).
        elastic: elastic membership schedule/trigger
            (:class:`repro.core.elastic.ElasticPolicy`); ``None``
            (default) freezes membership, as in the paper.
        prefix: prefix-cache / stream-sharing tier configuration
            (:class:`repro.prefix.PrefixPolicy`); ``None`` (default)
            sends every arrival straight to normal admission, as in
            the paper.  Incompatible with VCR interactivity
            (``pause_hazard > 0``) — a paused parent would stall the
            playout-relay schedule chained sessions depend on.
    """

    system: SystemConfig
    theta: float = 0.0
    placement: str = "even"
    migration: MigrationPolicy = field(default_factory=MigrationPolicy.disabled)
    staging_fraction: float = 0.0
    scheduler: str = "eftf"
    admission: str = "minflow"
    duration: float = 3600.0 * 100
    warmup: float = 0.0
    load: float = 1.0
    seed: int = 0
    client_receive_bandwidth: Optional[float] = None
    replication: Optional["ReplicationPolicy"] = None
    pause_hazard: float = 0.0
    mean_pause: float = 300.0
    client_mix: Optional[Tuple[Tuple[float, float], ...]] = None
    faults: Optional[FaultPlan] = None
    retry: Optional[RetryPolicy] = None
    invariants: bool = False
    arrivals: str = "poisson"
    arrival_params: Tuple[Tuple[str, float], ...] = ()
    calibration: Optional[CalibrationConfig] = None
    elastic: Optional[ElasticPolicy] = None
    prefix: Optional[PrefixPolicy] = None

    def __post_init__(self) -> None:
        if self.prefix is not None and self.pause_hazard > 0:
            raise ValueError(
                "prefix tier and VCR interactivity are incompatible: "
                "a paused parent stalls the playout relay chained "
                "sessions depend on (set pause_hazard=0 or prefix=None)"
            )
        if self.client_mix is not None:
            if not self.client_mix:
                raise ValueError("client_mix must have at least one class")
            for weight, fraction in self.client_mix:
                if weight <= 0:
                    raise ValueError(
                        f"client_mix weights must be positive, got {weight}"
                    )
                if fraction < 0:
                    raise ValueError(
                        f"client_mix staging fractions must be >= 0, "
                        f"got {fraction}"
                    )
        if self.pause_hazard < 0:
            raise ValueError(
                f"pause_hazard must be >= 0, got {self.pause_hazard}"
            )
        if self.mean_pause <= 0:
            raise ValueError(
                f"mean_pause must be positive, got {self.mean_pause}"
            )
        # Registry lookups raise UnknownKeyError (a ValueError) naming
        # the valid choices — the actionable-error contract.
        PLACEMENTS.get(self.placement)
        ALLOCATORS.get(self.scheduler)
        ARRIVALS.get(self.arrivals)
        for pair in self.arrival_params:
            if (
                not isinstance(pair, tuple)
                or len(pair) != 2
                or not isinstance(pair[0], str)
            ):
                raise ValueError(
                    f"arrival_params must be (name, value) pairs, got {pair!r}"
                )
        if self.admission not in ("minflow", "overbook"):
            raise ValueError(
                f"admission must be 'minflow' or 'overbook', "
                f"got {self.admission!r}"
            )
        if self.admission == "overbook" and self.scheduler != "intermittent":
            raise ValueError(
                "overbooked admission requires the intermittent scheduler "
                "(minimum-flow allocators cannot serve more than the SVBR)"
            )
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if not 0 <= self.warmup < self.duration:
            raise ValueError(
                f"warmup must be in [0, duration), got {self.warmup}"
            )
        if self.staging_fraction < 0:
            raise ValueError(
                f"staging_fraction must be >= 0, got {self.staging_fraction}"
            )
        if self.load <= 0:
            raise ValueError(f"load must be positive, got {self.load}")

    def to_dict(self) -> dict:
        """The full configuration as a JSON-compatible dict.

        Round-trips exactly: ``SimulationConfig.from_dict(cfg.to_dict())
        == cfg`` (the scenario-layer contract, pinned by property
        tests).  Nested policies serialize through their own
        ``to_dict``; ``None`` marks a disabled optional subsystem.
        """
        return {
            "system": self.system.to_dict(),
            "theta": self.theta,
            "placement": self.placement,
            "migration": self.migration.to_dict(),
            "staging_fraction": self.staging_fraction,
            "scheduler": self.scheduler,
            "admission": self.admission,
            "duration": self.duration,
            "warmup": self.warmup,
            "load": self.load,
            "seed": self.seed,
            "client_receive_bandwidth": self.client_receive_bandwidth,
            "replication": (
                self.replication.to_dict() if self.replication else None
            ),
            "pause_hazard": self.pause_hazard,
            "mean_pause": self.mean_pause,
            "client_mix": (
                [list(pair) for pair in self.client_mix]
                if self.client_mix is not None
                else None
            ),
            "faults": self.faults.to_dict() if self.faults else None,
            "retry": self.retry.to_dict() if self.retry else None,
            "invariants": self.invariants,
            "arrivals": self.arrivals,
            "arrival_params": dict(self.arrival_params),
            "calibration": (
                self.calibration.to_dict() if self.calibration else None
            ),
            "elastic": self.elastic.to_dict() if self.elastic else None,
            "prefix": self.prefix.to_dict() if self.prefix else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SimulationConfig":
        """Build a config from a dict (e.g. a scenario file's body).

        Accepts partial dicts (missing keys use the dataclass
        defaults); ``system`` is mandatory and may be a serialized
        :class:`SystemConfig`, a ``{"preset": name}`` shorthand, or
        just a preset name string.  Unknown keys raise an actionable
        :class:`ValueError`.
        """
        check_fields(cls, data)
        data = dict(data)
        try:
            system = data.pop("system")
        except KeyError:
            raise ValueError(
                "SimulationConfig dict is missing required key 'system'"
            ) from None
        if isinstance(system, str):
            system = SYSTEMS.get(system)
        elif isinstance(system, Mapping):
            system = SystemConfig.from_dict(system)
        elif not isinstance(system, SystemConfig):
            raise ValueError(
                f"'system' must be a mapping, a preset name, or a "
                f"SystemConfig, got {type(system).__name__}"
            )
        for key, nested in (
            ("migration", MigrationPolicy),
            ("replication", ReplicationPolicy),
            ("faults", FaultPlan),
            ("retry", RetryPolicy),
            ("calibration", CalibrationConfig),
            ("elastic", ElasticPolicy),
            ("prefix", PrefixPolicy),
        ):
            if isinstance(data.get(key), Mapping):
                data[key] = nested.from_dict(data[key])
        if data.get("client_mix") is not None:
            data["client_mix"] = tuple(
                tuple(pair) for pair in data["client_mix"]
            )
        params = data.get("arrival_params")
        if params is not None and not isinstance(params, tuple):
            if isinstance(params, Mapping):
                params = params.items()
            data["arrival_params"] = tuple(
                (str(k), v) for k, v in params
            )
        return cls(system=system, **data)


@dataclass
class SimulationResult:
    """Measured outputs of one run."""

    config: SimulationConfig
    utilization: float
    acceptance_ratio: float
    rejection_ratio: float
    arrivals: int
    accepted: int
    rejected: int
    migrations: int
    migration_attempts: int
    finished: int
    dropped: int
    underruns: int
    offered_load: float
    arrival_rate: float
    megabits_sent: float
    placement_shortfall: int
    events_fired: int
    #: Graceful-degradation / chaos measures (all zero-ish defaults so
    #: fault-free runs read naturally).
    retries: int = 0
    retry_exhausted: int = 0
    retry_pending: int = 0
    faults_injected: int = 0
    availability: float = 1.0
    #: Prefix-cache / stream-sharing tier measures (zero when the tier
    #: is off — see :mod:`repro.prefix`).
    chained: int = 0
    patched: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_hit_rate: float = 0.0
    cache_megabits: float = 0.0
    chain_underruns: int = 0
    #: Who/what produced this run (seed, version, config hash, REPRO_*
    #: env) — see :func:`repro.obs.provenance.run_provenance`.  Carries
    #: a timestamp, so it is excluded from equality comparisons.
    provenance: Dict = field(default_factory=dict, compare=False)

    def __str__(self) -> str:
        return (
            f"utilization={self.utilization:.4f} "
            f"accept={self.acceptance_ratio:.4f} "
            f"arrivals={self.arrivals} migrations={self.migrations}"
        )


class Simulation:
    """Build and run one configured simulation.

    Construction performs the static phase (catalog, placement, server
    wiring); :meth:`run` performs the dynamic phase.  A Simulation is
    single-use: call :meth:`run` once.

    **Build stages.**  Construction is a pipeline of named stages
    (:data:`BUILD_STAGES`), each a ``_build_<stage>`` method that
    documents what exists once it completes:

    ========== =====================================================
    stage      products
    ========== =====================================================
    rng        ``streams``, ``engine`` (fresh request-id space)
    demand     ``catalog``, ``popularity``
    cluster    ``cluster_profile``, ``servers``, ``membership``
    placement  ``placement_result``, ``placement_policy``
    controller ``controller`` (admission front door, client profiles)
    prefix     ``prefix_tier`` (cache + chaining, warming scheduled)
    workload   ``arrival_rate``, arrival process, ``interactivity``
    faults     ``failover``, ``retry_queue``, ``fault_injector``
    observers  ``invariant_checker``, ``replicator``, ``elastic_scaler``
    ========== =====================================================

    The *stage_hooks* argument is the extension point: a mapping from
    stage name to a ``hook(sim)`` callable invoked right after that
    stage, seeing everything built so far — e.g. a ``"placement"`` hook
    can inspect or patch ``sim.placement_result`` before the controller
    is wired (see docs/ARCHITECTURE.md).

    Observability (all optional, zero overhead when off):

    * *tracer* — a :class:`repro.obs.Tracer` receiving structured
      records from every layer; auto-created when ``REPRO_TRACE_OUT``
      is set (the trace is appended there after :meth:`run`).
    * *profiler* — a :class:`repro.obs.EventProfiler` accounting
      per-event-kind wall clock; auto-created (and folded into the
      process aggregate) when ``REPRO_PROFILE`` is on.
    * :attr:`registry` — a :class:`repro.obs.MetricsRegistry` the run's
      :class:`SimulationMetrics` registers into; snapshot via
      ``sim.registry.snapshot()``.
    """

    #: Stage order.  Each stage only consumes products of earlier ones.
    BUILD_STAGES: Tuple[str, ...] = (
        "rng",
        "demand",
        "cluster",
        "placement",
        "controller",
        "prefix",
        "workload",
        "faults",
        "observers",
    )

    def __init__(
        self,
        config: SimulationConfig,
        tracer: Optional[obs.Tracer] = None,
        profiler: Optional[obs.EventProfiler] = None,
        stage_hooks: Optional[
            Mapping[str, Callable[["Simulation"], None]]
        ] = None,
    ) -> None:
        self.config = config
        self._stage_hooks = dict(stage_hooks) if stage_hooks else {}
        unknown = sorted(set(self._stage_hooks) - set(self.BUILD_STAGES))
        if unknown:
            raise ValueError(
                f"unknown build stage(s) {', '.join(map(repr, unknown))}; "
                f"choose from: {', '.join(self.BUILD_STAGES)}"
            )

        self._trace_path = obs.env_trace_path()
        if tracer is None and self._trace_path is not None:
            # Fail fast with one actionable line (missing parent
            # directory etc.) instead of a traceback after the run.
            obs.check_trace_path(self._trace_path, flag="REPRO_TRACE_OUT")
            tracer = obs.Tracer()
        self.tracer = tracer
        self._env_profile = obs.env_profile_enabled()
        if profiler is None and self._env_profile:
            profiler = obs.EventProfiler()
        self.profiler = profiler
        self.registry = obs.MetricsRegistry()

        for stage in self.BUILD_STAGES:
            getattr(self, f"_build_{stage}")()
            hook = self._stage_hooks.get(stage)
            if hook is not None:
                hook(self)
        self._ran = False

    # ------------------------------------------------------------------
    # Build stages (hook point after each; see class docstring)
    # ------------------------------------------------------------------
    def _build_rng(self) -> None:
        """Seeded randomness and the event engine.

        After: ``self.streams`` (named substream factory rooted at
        ``config.seed``), ``self.engine``, and a fresh request-id space.
        """
        # Request ids restart at zero per Simulation: ids seed per-request
        # RNG substreams (retry jitter), so a process-global counter
        # would make results depend on how many runs a reused sweep
        # worker had already executed.
        reset_request_ids()
        self.streams = RandomStreams(seed=self.config.seed)
        self.engine = Engine()

    def _build_demand(self) -> None:
        """Catalog and demand model.

        After: ``self.catalog`` (video lengths/sizes) and
        ``self.popularity`` (the Zipf(θ) demand skew).
        """
        system = self.config.system
        self.catalog: VideoCatalog = make_catalog(
            system.n_videos,
            system.video_length_range,
            self.streams.get("catalog"),
            view_bandwidth=system.view_bandwidth,
        )
        self.popularity = ZipfPopularity(system.n_videos, self.config.theta)

    def _build_cluster(self) -> None:
        """Data servers, calibrated capacities, membership map.

        After: ``self.cluster_profile`` (measured per-server capacities
        — the identity profile unless ``config.calibration`` runs the
        micro-benchmark), ``self.servers`` — fresh :class:`DataServer`
        objects carrying those profiles — and ``self.membership`` with
        every seed server ACTIVE at epoch 0.
        """
        system = self.config.system
        if self.config.calibration is not None:
            self.cluster_profile: ClusterProfile = calibrate(
                system, self.config.calibration, self.streams.get("calibrate")
            )
        else:
            self.cluster_profile = identity_profile(system)
        self.servers = system.build_servers(self.cluster_profile)
        self.membership = ClusterMembership()
        for server in self.servers:
            self.membership.register(server.server_id)

    def _build_placement(self) -> None:
        """Static replica placement.

        After: ``self.placement_result`` — the placement map plus its
        shortfall diagnostic.  A hook here sees replicas assigned but
        nothing wired to serve them yet.
        """
        config = self.config
        policy_cls = PLACEMENTS[config.placement]
        #: Kept for membership lifecycle hooks (warm_targets /
        #: on_server_depart) — the elastic scaler consults it.
        self.placement_policy = policy_cls()
        self.placement_result: PlacementResult = self.placement_policy.allocate(
            self.catalog,
            self.popularity,
            self.servers,
            config.system.total_copies,
            self.streams.get("placement"),
        )

    def _build_controller(self) -> None:
        """Admission front door.

        After: ``self.controller`` — the
        :class:`DistributionController` wired with client profiles,
        the scheduler/allocator, DRM policy and metrics.
        """
        config = self.config
        system = config.system
        receive_bw = (
            config.client_receive_bandwidth
            if config.client_receive_bandwidth is not None
            else system.client_receive_bandwidth
        )
        if config.client_mix is None:
            buffer_capacity = staging_capacity(
                config.staging_fraction, self.catalog.mean_size
            )
            profile = ClientProfile(
                buffer_capacity=buffer_capacity,
                receive_bandwidth=receive_bw,
            )
        else:
            # Heterogeneous clients: one immutable profile per class,
            # sampled per request from a dedicated stream.
            weights = np.array(
                [w for w, _ in config.client_mix], dtype=np.float64
            )
            weights /= weights.sum()
            profiles = [
                ClientProfile(
                    buffer_capacity=staging_capacity(
                        frac, self.catalog.mean_size
                    ) if frac > 0 else 0.0,
                    receive_bandwidth=receive_bw,
                )
                for _, frac in config.client_mix
            ]
            client_rng = self.streams.get("clients")

            def profile(video_id: int) -> ClientProfile:
                idx = int(client_rng.choice(len(profiles), p=weights))
                return profiles[idx]

        self.controller = DistributionController(
            engine=self.engine,
            servers=self.servers,
            catalog=self.catalog,
            placement=self.placement_result.placement,
            client_profile=profile,
            allocator=ALLOCATORS[config.scheduler](),
            migration_policy=config.migration,
            metrics=SimulationMetrics(registry=self.registry),
            admission_mode=config.admission,
            tracer=self.tracer,
        )
        # The serve layer reaches membership through the controller
        # (PolicyBridge exposes it; the gateway reconciles tasks on it).
        self.controller.membership = self.membership

    def _build_prefix(self) -> None:
        """Prefix-cache / stream-sharing tier (repro.prefix).

        After: ``self.prefix_tier`` — wired into the controller's front
        door and decision stream with cache warming scheduled — or None
        when ``config.prefix`` is unset.
        """
        config = self.config
        self.prefix_tier: Optional[PrefixTier] = None
        if config.prefix is None:
            return
        self.prefix_tier = PrefixTier(
            engine=self.engine,
            controller=self.controller,
            catalog=self.catalog,
            popularity=self.popularity,
            placement=self.placement_result.placement,
            placement_policy=self.placement_policy,
            policy=config.prefix,
            strict=config.invariants or obs.env_invariants_enabled(),
            tracer=self.tracer,
        )
        self.controller.prefix_tier = self.prefix_tier
        self.controller.decision_hooks.append(self.prefix_tier.observe)
        self.prefix_tier.start()

    def _build_workload(self) -> None:
        """Request generation.

        After: ``self.arrival_rate`` (calibrated to ``config.load``),
        ``self._arrivals`` (the registered arrival process feeding
        ``controller.submit``) and ``self.interactivity`` (the VCR
        pause/resume model, or None).
        """
        config = self.config
        self.interactivity = None
        if config.pause_hazard > 0.0:
            from repro.workload.interactivity import InteractivityModel

            self.interactivity = InteractivityModel(
                engine=self.engine,
                controller=self.controller,
                rng=self.streams.get("interactivity"),
                pause_hazard=config.pause_hazard,
                mean_pause_duration=config.mean_pause,
            )

        self.arrival_rate = calibrated_arrival_rate(
            self.popularity,
            self.catalog,
            config.system.total_bandwidth,
            load=config.load,
        )
        arrival_cls = ARRIVALS[config.arrivals]
        self._arrivals = arrival_cls(
            engine=self.engine,
            rate=self.arrival_rate,
            popularity=self.popularity,
            rng=self.streams.get("arrivals"),
            on_arrival=self.controller.submit,
            **dict(config.arrival_params),
        )

    def _build_faults(self) -> None:
        """Robustness layer (repro.faults).

        After: ``self.failover`` (built whenever chaos or a retry
        queue needs it), ``self.retry_queue`` and
        ``self.fault_injector`` (strictly opt-in, already started).
        """
        config = self.config
        inject = config.faults is not None and not config.faults.empty
        self.failover: Optional[FailoverManager] = None
        if inject or config.retry is not None:
            self.failover = FailoverManager(
                engine=self.engine,
                servers=self.controller.servers,
                managers=self.controller.managers,
                placement=self.placement_result.placement,
                metrics=self.metrics,
                tracer=self.tracer,
            )
        self.retry_queue: Optional[RetryQueue] = None
        if config.retry is not None:
            self.retry_queue = RetryQueue(
                engine=self.engine,
                controller=self.controller,
                streams=self.streams,
                policy=config.retry,
                failover=self.failover,
                tracer=self.tracer,
            )
        self.fault_injector: Optional[FaultInjector] = None
        if inject:
            self.fault_injector = FaultInjector(
                engine=self.engine,
                failover=self.failover,
                streams=self.streams,
                plan=config.faults,
                catalog=self.catalog,
                metrics=self.metrics,
            )
            self.fault_injector.start()

    def _build_observers(self) -> None:
        """Decision observers and online checks.

        After: ``self.invariant_checker`` (opt-in conservation checks)
        and ``self.replicator`` (the dynamic-replication extension,
        hooked into the controller's decision stream).
        """
        config = self.config
        self.invariant_checker: Optional[InvariantChecker] = None
        if config.invariants or obs.env_invariants_enabled():
            self.invariant_checker = InvariantChecker(
                self.engine, self.controller, tracer=self.tracer
            )
            self.invariant_checker.attach()

        self.replicator: Optional[DynamicReplicator] = None
        if config.replication is not None:
            self.replicator = DynamicReplicator(
                engine=self.engine,
                servers=self.controller.servers,
                placement=self.placement_result.placement,
                catalog=self.catalog,
                policy=config.replication,
            )
            self.controller.decision_hooks.append(self.replicator.observe)

        self.elastic_scaler: Optional[ElasticScaler] = None
        if config.elastic is not None:
            self.elastic_scaler = ElasticScaler(
                engine=self.engine,
                controller=self.controller,
                membership=self.membership,
                placement=self.placement_result.placement,
                catalog=self.catalog,
                popularity=self.popularity,
                placement_policy=self.placement_policy,
                policy=config.elastic,
                streams=self.streams,
                calibration=config.calibration,
                tracer=self.tracer,
            )
            self.elastic_scaler.start()
            self.controller.decision_hooks.append(self.elastic_scaler.observe)

        if self.prefix_tier is not None and self.failover is not None:
            # Sever / cascade chained sessions when a parent stream is
            # lost to a failure.
            self.failover.on_drop.append(self.prefix_tier.on_stream_drop)

    @property
    def metrics(self) -> SimulationMetrics:
        return self.controller.metrics

    def run(self) -> SimulationResult:
        """Advance the engine for ``duration`` seconds and measure."""
        if self._ran:
            raise RuntimeError("Simulation objects are single-use")
        self._ran = True
        cfg = self.config
        if self.profiler is not None:
            self.profiler.attach(self.engine)
        try:
            if cfg.warmup > 0.0:
                # Run the ramp-in, settle the transfer accounting at the
                # warmup instant, then discard everything measured so
                # far.  (The tracer is deliberately *not* cleared: the
                # ramp-in records are part of the debugging story.)
                self.engine.run_until(cfg.warmup)
                for manager in self.controller.managers.values():
                    manager.flush(cfg.warmup)
                self.metrics.reset()
            self.engine.run_until(cfg.duration)
        finally:
            if self.profiler is not None:
                self.profiler.detach()
        self._arrivals.stop()
        if self.invariant_checker is not None:
            self.invariant_checker.check_now()
        if self.prefix_tier is not None:
            self.prefix_tier.check_invariants(cfg.duration)
        self.controller.finalize(cfg.duration)
        provenance = obs.run_provenance(seed=cfg.seed, config=cfg)
        if self.tracer is not None and self._trace_path is not None:
            self.tracer.export_jsonl(
                self._trace_path, provenance=provenance, append=True
            )
        if self.profiler is not None and self._env_profile:
            from repro.obs import profiler as profiling

            profiling.aggregate(self.profiler)
        metrics = self.metrics
        total_bw = cfg.system.total_bandwidth
        window = cfg.duration - cfg.warmup
        pending = self.retry_queue.pending if self.retry_queue else 0
        return SimulationResult(
            config=cfg,
            utilization=metrics.utilization(total_bw, window),
            acceptance_ratio=metrics.acceptance_ratio,
            rejection_ratio=metrics.rejection_ratio,
            arrivals=metrics.arrivals,
            accepted=metrics.accepted,
            rejected=metrics.rejected,
            migrations=metrics.migrations,
            migration_attempts=metrics.migration_attempts,
            finished=metrics.finished,
            dropped=metrics.dropped,
            underruns=metrics.underruns,
            offered_load=cfg.load,
            arrival_rate=self.arrival_rate,
            megabits_sent=metrics.total_megabits,
            placement_shortfall=self.placement_result.shortfall,
            events_fired=self.engine.events_fired,
            retries=metrics.retries,
            retry_exhausted=metrics.retry_exhausted,
            retry_pending=pending,
            faults_injected=metrics.faults_injected,
            availability=metrics.availability(pending_retries=pending),
            chained=metrics.chained,
            patched=metrics.patched,
            cache_hits=metrics.cache_hits,
            cache_misses=metrics.cache_misses,
            cache_hit_rate=metrics.cache_hit_rate,
            cache_megabits=metrics.cache_megabits,
            chain_underruns=(
                self.prefix_tier.chain_underruns if self.prefix_tier else 0
            ),
            provenance=provenance,
        )


def run_simulation(config: SimulationConfig) -> SimulationResult:
    """One-shot convenience wrapper."""
    return Simulation(config).run()
