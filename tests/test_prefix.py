"""The prefix-cache & stream-sharing tier (repro.prefix).

Contracts under test, mirroring the acceptance gates of the ISSUE of
record (docs/CACHING.md):

* **config** — `PrefixPolicy` round-trips through to_dict/from_dict,
  validates its ranges, and resolves its `strategy` / `batching` names
  against the registries at construction (a typo fails immediately
  with the full choice list);
* **planning** — the replication strategies produce deterministic plans
  that respect the capacity budget, and the cache's retarget/commit
  protocol survives plan churn (stale warms are ignored);
* **merge math** — a chained session's contiguous delivery curve never
  dips below its playout line, proved both analytically (hypothesis
  sweeps over the splice geometry) and end-to-end (full simulations
  under strict invariants report zero chain underruns);
* **capacity figure** — on the committed overload scenario the tier's
  rejection rate is *strictly* below the no-tier baseline's, and two
  same-seed runs are byte-identical.
"""

from __future__ import annotations

import dataclasses
import json
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SMALL_SYSTEM, MigrationPolicy, Simulation, SimulationConfig
from repro.cluster.request import EPS_MB, RequestState, reset_request_ids
from repro.obs.tracer import Tracer
from repro.prefix import (
    BATCHING,
    ChainedSession,
    ChainPlan,
    PREFIX_STRATEGIES,
    PrefixCache,
    PrefixPolicy,
)
from repro.registry import UnknownKeyError
from repro.scenario import load_scenario
from repro.units import hours
from repro.workload import Video, VideoCatalog, ZipfPopularity
from repro.workload.zipf import popularity_ranks

TINY = SMALL_SYSTEM.scaled(n_videos=40, name="prefix-tiny")

OVERLOAD_SCENARIO = "scenarios/prefix_zipf_overload.json"
WINDOW_SCENARIO = "scenarios/prefix_batching_window.json"


def prefix_config(prefix=None, **overrides):
    defaults = dict(
        system=TINY,
        theta=0.0,
        placement="even",
        migration=MigrationPolicy.paper_default(),
        staging_fraction=0.3,
        duration=hours(2),
        warmup=600.0,
        load=1.2,
        seed=11,
        prefix=prefix,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def run_fresh(config, tracer=None):
    reset_request_ids()  # request ids are process-global state
    return Simulation(config, tracer=tracer).run()


def toy_catalog(lengths, view_bandwidth=1.0):
    return VideoCatalog(videos=tuple(
        Video(video_id=i, length=float(ln), view_bandwidth=view_bandwidth)
        for i, ln in enumerate(lengths)
    ))


def toy_tier(lengths, theta=0.0, view_bandwidth=1.0, **policy):
    """The minimal duck-typed tier the planning strategies read."""
    catalog = toy_catalog(lengths, view_bandwidth)
    return SimpleNamespace(
        catalog=catalog,
        popularity=ZipfPopularity(len(catalog), theta),
        policy=PrefixPolicy(**policy),
        placement=None,
        placement_policy=None,
    )


class TestPrefixPolicy:
    def test_roundtrip(self):
        policy = PrefixPolicy(
            strategy="uniform", batching="patch",
            capacity_mb=123.5, prefix_seconds=45.0, window_seconds=60.0,
        )
        assert PrefixPolicy.from_dict(policy.to_dict()) == policy

    def test_unknown_strategy_names_choices(self):
        # One of the two UnknownKeyError regression sites: the
        # strategy lookup in PrefixPolicy.__post_init__.
        with pytest.raises(
            UnknownKeyError, match="prefix strategy 'zipf'.*popularity"
        ):
            PrefixPolicy(strategy="zipf")

    def test_unknown_batching_names_choices(self):
        # ...and the batching lookup, same site.
        with pytest.raises(
            UnknownKeyError, match="batching policy 'windw'.*window"
        ):
            PrefixPolicy(batching="windw")

    def test_registry_gets_raise_directly(self):
        with pytest.raises(UnknownKeyError, match="'lru'.*none, popularity"):
            PREFIX_STRATEGIES.get("lru")
        with pytest.raises(UnknownKeyError, match="'piggyback'.*patch"):
            BATCHING.get("piggyback")

    @pytest.mark.parametrize("bad", [
        dict(capacity_mb=-1.0),
        dict(prefix_seconds=0.0),
        dict(prefix_seconds=-5.0),
        dict(window_seconds=-1.0),
    ])
    def test_range_validation(self, bad):
        with pytest.raises(ValueError):
            PrefixPolicy(**bad)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="strategi"):
            PrefixPolicy.from_dict({"strategi": "popularity"})

    def test_simulation_config_roundtrip_with_prefix(self):
        config = prefix_config(PrefixPolicy(batching="patch"))
        rebuilt = SimulationConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.prefix == config.prefix

    def test_prefix_rejects_vcr_interactivity(self):
        with pytest.raises(ValueError, match="pause_hazard"):
            prefix_config(PrefixPolicy(), pause_hazard=0.01)

    def test_cli_list_prints_both_registries(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "prefix strategies" in out
        assert "batching policies" in out
        for name in ("popularity", "uniform", "window", "patch"):
            assert name in out


class TestStrategies:
    def test_popularity_packs_hottest_first_and_backfills(self):
        # prefixes [30, 30, 30, 10]; capacity 70 fits the two hottest
        # plus the short tail video 3, skipping (not stopping at) 2.
        tier = toy_tier(
            [100, 100, 100, 10],
            capacity_mb=70.0, prefix_seconds=30.0,
        )
        plan = PREFIX_STRATEGIES.get("popularity")(tier)
        assert plan == {0: 30.0, 1: 30.0, 3: 10.0}
        assert list(plan) == [0, 1, 3]  # warming order = rank order

    def test_popularity_respects_skew_direction(self):
        # theta < 1 means video 0 is hottest; the single slot goes to it.
        tier = toy_tier([100, 100], theta=0.0,
                        capacity_mb=30.0, prefix_seconds=30.0)
        assert list(PREFIX_STRATEGIES.get("popularity")(tier)) == [0]

    def test_uniform_splits_capacity(self):
        tier = toy_tier(
            [100, 100, 100, 5],
            strategy="uniform", capacity_mb=40.0, prefix_seconds=30.0,
        )
        plan = PREFIX_STRATEGIES.get("uniform")(tier)
        # per-video share is 10 Mb, clipped to the 5 Mb whole of video 3
        assert plan == {0: 10.0, 1: 10.0, 2: 10.0, 3: 5.0}

    def test_none_holds_nothing(self):
        tier = toy_tier([100, 100], strategy="none")
        assert PREFIX_STRATEGIES.get("none")(tier) == {}

    def test_plans_fit_capacity(self):
        for name in PREFIX_STRATEGIES.names():
            tier = toy_tier(
                [300, 200, 100, 50, 25], strategy=name,
                capacity_mb=120.0, prefix_seconds=60.0,
            )
            plan = PREFIX_STRATEGIES.get(name)(tier)
            assert sum(plan.values()) <= tier.policy.capacity_mb + EPS_MB

    def test_ranking_matches_popularity_ranks_helper(self):
        # The satellite: the cache's notion of "popular" is the shared
        # workload helper, not a private recomputation.
        from repro.prefix.cache import hottest_first

        tier = toy_tier(list(range(10, 110, 10)), theta=-0.5)
        probs = popularity_ranks(10, -0.5)
        expected = [int(v) for v in np.argsort(-probs, kind="stable")]
        assert hottest_first(tier) == expected


class TestPrefixCache:
    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity_mb"):
            PrefixCache(-1.0)

    def test_retarget_returns_pending_in_plan_order(self):
        cache = PrefixCache(100.0)
        pending = cache.retarget({3: 20.0, 1: 10.0})
        assert pending == [(3, 20.0), (1, 10.0)]
        assert cache.bytes_held == 0.0  # nothing warmed yet

    def test_commit_and_lookup(self):
        cache = PrefixCache(100.0)
        cache.retarget({1: 10.0})
        assert cache.commit(1, 10.0) is True
        assert cache.warmed_mb(1) == 10.0
        assert cache.warmed_mb(2) == 0.0
        assert cache.bytes_held == 10.0

    def test_stale_commit_ignored(self):
        cache = PrefixCache(100.0)
        cache.retarget({1: 10.0})
        cache.retarget({2: 10.0})  # plan churn before the warm lands
        assert cache.commit(1, 10.0) is False
        assert cache.warmed_mb(1) == 0.0

    def test_retarget_evicts_dropped_and_resized_entries(self):
        cache = PrefixCache(100.0)
        cache.retarget({1: 10.0, 2: 20.0})
        cache.commit(1, 10.0)
        cache.commit(2, 20.0)
        pending = cache.retarget({2: 25.0, 3: 5.0})
        assert cache.warmed_mb(1) == 0.0      # dropped: evicted instantly
        assert cache.warmed_mb(2) == 0.0      # resized: must re-warm
        assert pending == [(2, 25.0), (3, 5.0)]

    def test_retarget_keeps_already_warmed_entries(self):
        cache = PrefixCache(100.0)
        cache.retarget({1: 10.0})
        cache.commit(1, 10.0)
        assert cache.retarget({1: 10.0, 2: 5.0}) == [(2, 5.0)]
        assert cache.warmed_mb(1) == 10.0

    def test_oversubscribed_plan_rejected(self):
        cache = PrefixCache(25.0)
        with pytest.raises(ValueError, match="capacity"):
            cache.retarget({1: 20.0, 2: 10.0})


def gate_tier(window_seconds=120.0):
    return SimpleNamespace(policy=PrefixPolicy(window_seconds=window_seconds))


def gate_request(view_bandwidth=2.0, buffer_capacity=1e9):
    return SimpleNamespace(
        view_bandwidth=view_bandwidth,
        client=SimpleNamespace(buffer_capacity=buffer_capacity),
    )


class TestBatchingPolicies:
    def test_window_pure_chain_when_prefix_covers_gap(self):
        plan = BATCHING.get("window")(
            gate_tier(), gate_request(), None, 10.0, 20.0, 0.0
        )
        assert plan == ChainPlan(10.0, 20.0, 20.0, 0.0)

    def test_window_declines_uncovered_gap(self):
        assert BATCHING.get("window")(
            gate_tier(), gate_request(), None, 10.0, 19.0, 0.0
        ) is None

    def test_patch_covers_the_remainder(self):
        plan = BATCHING.get("patch")(
            gate_tier(), gate_request(), None, 10.0, 5.0, 0.0
        )
        assert plan == ChainPlan(10.0, 20.0, 5.0, 15.0)

    def test_patch_caps_prefix_at_gap(self):
        plan = BATCHING.get("patch")(
            gate_tier(), gate_request(), None, 2.0, 50.0, 0.0
        )
        assert plan == ChainPlan(2.0, 4.0, 4.0, 0.0)

    @pytest.mark.parametrize("name", ["window", "patch"])
    def test_gap_outside_window_declines(self, name):
        batch = BATCHING.get(name)
        assert batch(gate_tier(30.0), gate_request(), None,
                     31.0, 1e9, 0.0) is None
        assert batch(gate_tier(30.0), gate_request(), None,
                     -1.0, 1e9, 0.0) is None

    @pytest.mark.parametrize("name", ["window", "patch"])
    def test_small_client_buffer_declines(self, name):
        # The relay runs gap seconds early; a client that cannot stage
        # gap_mb must not be chained.
        request = gate_request(view_bandwidth=3.0, buffer_capacity=29.0)
        assert BATCHING.get(name)(
            gate_tier(), request, None, 10.0, 1e9, 0.0
        ) is None

    def test_none_never_chains(self):
        assert BATCHING.get("none")(
            gate_tier(), gate_request(), None, 0.0, 1e9, 0.0
        ) is None


def pure_chain(gap=10.0, vb=2.0, length=100.0, join=10.0):
    video = Video(video_id=0, length=length, view_bandwidth=vb)
    parent = SimpleNamespace(playback_start=join - gap)
    plan = ChainPlan(gap, vb * gap, vb * gap, 0.0)
    return ChainedSession(SimpleNamespace(), parent, video, join, plan)


class TestChainedSessionCurves:
    def test_pure_chain_margin_nonnegative_everywhere(self):
        chain = pure_chain()
        for t in np.linspace(10.0, 110.0, 200):
            assert chain.margin(float(t)) >= -1e-3

    def test_prefix_phase_tracks_playout_exactly(self):
        chain = pure_chain(gap=10.0, vb=2.0, join=10.0)
        # mid-prefix: delivered = played = vb * elapsed
        assert chain.contiguous_delivered(15.0) == pytest.approx(10.0)
        assert chain.margin(15.0) == pytest.approx(0.0)

    def test_feed_phase_runs_gap_ahead(self):
        chain = pure_chain(gap=10.0, vb=2.0, join=10.0)
        # prefix drained at t=20; feed frontier is the parent playout
        assert chain.contiguous_delivered(20.0) == pytest.approx(40.0)
        assert chain.margin(20.0) == pytest.approx(20.0)  # vb * gap

    def test_delivery_end_is_parent_playout_end(self):
        chain = pure_chain(gap=10.0, vb=2.0, length=100.0, join=10.0)
        assert chain.delivery_end == pytest.approx(100.0)
        assert chain.contiguous_delivered(100.0) == pytest.approx(200.0)

    def test_severed_feed_freezes_and_eventually_underruns(self):
        # Why the tier severs (and stops checking) dropped chains: the
        # frozen frontier is overtaken by playout after `gap` seconds.
        chain = pure_chain(gap=10.0, vb=2.0, join=10.0)
        chain.severed_at = 30.0
        assert chain.margin(35.0) >= 0.0          # still inside the slack
        assert chain.margin(45.0) < 0.0           # slack exhausted

    def test_patch_projection_between_syncs(self):
        child = SimpleNamespace(
            bytes_sent=0.0, state=RequestState.ACTIVE, server_id=1,
            rate=5.0, last_sync=10.0,
        )
        video = Video(video_id=0, length=100.0, view_bandwidth=2.0)
        parent = SimpleNamespace(playback_start=0.0)
        chain = ChainedSession(
            child, parent, video, 10.0, ChainPlan(10.0, 20.0, 5.0, 15.0)
        )
        # t=12: still draining the 5 Mb prefix (2 Mb/s from t=10)
        assert chain.contiguous_delivered(12.0) == pytest.approx(4.0)
        # t=13: prefix drained; patch projected at rate 5 from last_sync
        # has its full 15 Mb, so the feed frontier takes over
        assert chain.contiguous_delivered(13.0) == pytest.approx(26.0)
        assert chain.margin(13.0) == pytest.approx(20.0)

    @settings(max_examples=60, deadline=None)
    @given(
        vb=st.floats(0.5, 10.0),
        gap=st.floats(0.0, 300.0),
        prefix_frac=st.floats(0.0, 1.0),
        rate_slack=st.floats(0.0, 3.0),
        tail=st.floats(1.0, 3600.0),
    )
    def test_no_underrun_across_splice_geometries(
        self, vb, gap, prefix_frac, rate_slack, tail
    ):
        """The merge-math theorem (docs/CACHING.md): with the prefix at
        exactly view bandwidth, the patch at any minimum-flow rate
        (>= vb) and the feed on the parent's playout schedule, the
        contiguous delivery curve never dips below the playout line —
        for every gap / prefix split / patch rate / video length."""
        join = 50.0
        length = gap + tail
        gap_mb = vb * gap
        prefix_mb = gap_mb * prefix_frac
        patch_mb = gap_mb - prefix_mb
        child = SimpleNamespace(
            bytes_sent=0.0, state=RequestState.ACTIVE, server_id=1,
            rate=vb * (1.0 + rate_slack), last_sync=join,
        )
        video = Video(video_id=0, length=length, view_bandwidth=vb)
        parent = SimpleNamespace(playback_start=join - gap)
        chain = ChainedSession(
            child, parent, video, join,
            ChainPlan(gap, gap_mb, prefix_mb, patch_mb),
        )
        for t in np.linspace(join, join + length, 64):
            assert chain.margin(float(t)) >= -1e-3


class TestTierEndToEnd:
    def test_warming_fills_cache_through_engine(self, tmp_path):
        reset_request_ids()
        tracer = Tracer(capacity=100_000)
        policy = PrefixPolicy(capacity_mb=60_000.0, prefix_seconds=60.0,
                              window_seconds=120.0)
        sim = Simulation(prefix_config(policy), tracer=tracer)
        tier = sim.prefix_tier
        assert tier is not None
        assert tier.cache.bytes_held == 0.0   # warms are engine events
        assert tier._warming
        sim.run()
        plan_total = sum(tier.cache._target.values())
        assert tier.cache.bytes_held == pytest.approx(plan_total)
        assert tier.stats()["pending_warm"] == 0
        path = tmp_path / "trace.jsonl"
        tracer.export_jsonl(path)
        warms = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if json.loads(line).get("kind") == "cache.warm"
        ]
        assert len(warms) == len(tier.cache.entries)
        # the first warm lands exactly one prefix / disk-throughput in
        first = warms[0]
        assert first["t"] == pytest.approx(first["seconds"])
        assert first["seconds"] == pytest.approx(
            first["prefix_mb"] / tier._disk_throughput()
        )

    def test_window_batching_pure_chains_no_underruns(self):
        policy = PrefixPolicy(
            strategy="popularity", batching="window",
            capacity_mb=60_000.0, prefix_seconds=120.0,
            window_seconds=120.0,
        )
        captured = []

        def grab(sim):
            tier = sim.prefix_tier
            original = tier._commit

            def commit(chain, now, patched):
                captured.append(chain)
                original(chain, now, patched)

            tier._commit = commit

        reset_request_ids()
        config = prefix_config(policy, invariants=True)
        result = Simulation(config, stage_hooks={"prefix": grab}).run()
        assert result.chained > 0
        assert result.patched == 0          # window never opens a patch
        assert result.chain_underruns == 0
        assert result.cache_hits > 0
        assert result.cache_megabits > 0.0
        # dense sweep of every healthy pure chain's delivery curve
        assert captured
        for chain in captured:
            if chain.severed_at is not None:
                continue
            end = min(chain.delivery_end, config.duration)
            for t in np.linspace(chain.join_time, end, 32):
                assert chain.margin(float(t)) >= -1e-3

    def test_patch_batching_truncated_streams(self):
        policy = PrefixPolicy(
            strategy="popularity", batching="patch",
            capacity_mb=60_000.0, prefix_seconds=60.0,
            window_seconds=180.0,
        )
        result = run_fresh(prefix_config(policy, invariants=True))
        assert result.chained > 0
        assert result.patched > 0           # gaps beyond the prefix
        assert result.chain_underruns == 0
        assert result.cache_hit_rate > 0.0
        # accounting identity: every arrival is decided exactly once,
        # chained admissions included
        assert result.arrivals == result.accepted + result.rejected
        assert result.chained <= result.accepted

    def test_migration_drags_chained_children(self):
        # DRM coherence: parents migrate mid-run while chains ride the
        # playout relay; strict invariants must stay silent.
        # A deliberately small cache and tight window keep the cluster
        # saturated enough that admission still exercises DRM.
        policy = PrefixPolicy(
            strategy="popularity", batching="patch",
            capacity_mb=5_000.0, prefix_seconds=30.0,
            window_seconds=45.0,
        )
        result = run_fresh(prefix_config(
            policy, load=1.8, invariants=True,
        ))
        assert result.chained > 0
        assert result.migrations > 0
        assert result.chain_underruns == 0

    def test_drop_cascade_under_faults(self):
        from repro.faults import CrashFaults, FaultPlan

        policy = PrefixPolicy(
            strategy="popularity", batching="patch",
            capacity_mb=60_000.0, prefix_seconds=90.0,
            window_seconds=180.0,
        )
        config = prefix_config(
            policy, theta=-0.5, load=1.3, invariants=True,
            faults=FaultPlan(
                crash=CrashFaults(mtbf=hours(0.4), mttr=hours(0.1)),
            ),
        )
        result = run_fresh(config)
        assert result.faults_injected > 0
        assert result.chained > 0
        assert result.chain_underruns == 0   # severed chains don't count
        assert result.arrivals == result.accepted + result.rejected

    def test_same_seed_runs_byte_identical(self):
        policy = PrefixPolicy(
            strategy="popularity", batching="patch",
            capacity_mb=60_000.0, prefix_seconds=60.0,
            window_seconds=180.0,
        )
        config = prefix_config(policy)
        res_a = run_fresh(config)
        res_b = run_fresh(config)
        assert res_a == res_b  # provenance excluded from dataclass eq
        assert res_a.chained == res_b.chained > 0

    def test_tier_does_not_disturb_arrivals(self):
        # The tier must not touch the arrival RNG: the offered workload
        # with and without it is the same, or the capacity figure would
        # compare different experiments.
        config = prefix_config(PrefixPolicy(batching="window"))
        with_tier = run_fresh(config)
        without = run_fresh(dataclasses.replace(config, prefix=None))
        assert with_tier.arrivals == without.arrivals

    @settings(max_examples=6, deadline=None)
    @given(
        theta=st.floats(-1.0, 1.0),
        prefix_seconds=st.floats(20.0, 240.0),
        window_seconds=st.floats(10.0, 240.0),
        batching=st.sampled_from(["window", "patch"]),
        seed=st.integers(0, 2**16),
    )
    def test_property_chained_delivery_never_underruns(
        self, theta, prefix_seconds, window_seconds, batching, seed
    ):
        """The ISSUE's hypothesis gate: across random window / prefix /
        theta draws, strict invariants (REPRO_INVARIANTS semantics)
        never observe a chained session behind its playout line."""
        policy = PrefixPolicy(
            strategy="popularity", batching=batching,
            capacity_mb=60_000.0, prefix_seconds=prefix_seconds,
            window_seconds=window_seconds,
        )
        config = prefix_config(
            policy, theta=theta, seed=seed,
            duration=hours(1), warmup=0.0, load=1.3,
            invariants=True,   # strict: an underrun raises
        )
        result = run_fresh(config)
        assert result.chain_underruns == 0


class TestCapacityFigure:
    def test_committed_overload_scenario_strict_improvement(self):
        # The headline acceptance gate: on the committed >=100%-load
        # scenario the tier rejects strictly less than the baseline.
        scenario = load_scenario(OVERLOAD_SCENARIO)
        config = scenario.config
        assert config.load >= 1.0
        assert config.prefix is not None
        with_tier = run_fresh(config)
        baseline = run_fresh(dataclasses.replace(config, prefix=None))
        assert with_tier.rejection_ratio < baseline.rejection_ratio
        assert with_tier.chained > 0
        assert with_tier.chain_underruns == 0

    def test_committed_window_scenario_runs_clean(self):
        scenario = load_scenario(WINDOW_SCENARIO)
        config = dataclasses.replace(scenario.config, invariants=True)
        result = run_fresh(config)
        assert result.chained > 0
        assert result.patched == 0
        assert result.chain_underruns == 0

    def test_experiment_baseline_strips_only_the_tier(self):
        from repro.experiments.prefix import baseline_config

        scenario = load_scenario(OVERLOAD_SCENARIO)
        stripped = baseline_config(scenario.config)
        assert stripped.prefix is None
        assert stripped == dataclasses.replace(scenario.config, prefix=None)

    def test_result_row_is_json_stable(self):
        from repro.experiments.prefix import result_row

        scenario = load_scenario(WINDOW_SCENARIO)
        row = result_row(run_fresh(scenario.config))
        json.dumps(row)  # digestable
        assert {"rejection_ratio", "chained", "chain_underruns"} <= set(row)


class TestOpsSurface:
    def test_gateway_refuses_chaining_batching(self):
        from repro.serve import ClusterGateway, ServeConfig

        config = prefix_config(PrefixPolicy(batching="window"))
        with pytest.raises(ValueError, match="batching"):
            ClusterGateway(config, ServeConfig(port=0))

    def test_gateway_cache_stats_in_cache_only_mode(self):
        from repro.serve import ClusterGateway, ServeConfig

        reset_request_ids()
        config = prefix_config(PrefixPolicy(batching="none"))
        gateway = ClusterGateway(config, ServeConfig(port=0))
        stats = gateway._cache_stats()
        assert stats is not None
        assert stats["batching"] == "none"
        assert {"hit_rate", "bytes_held_mb", "chained_active"} <= set(stats)
        assert gateway.ops_stats()["cache"] == stats

    def test_gateway_without_tier_reports_no_cache(self):
        from repro.serve import ClusterGateway, ServeConfig

        reset_request_ids()
        gateway = ClusterGateway(prefix_config(None), ServeConfig(port=0))
        assert gateway._cache_stats() is None

    def test_top_renders_cache_line(self):
        from repro.serve.top import render_top

        sample = {
            "t": 10.0, "uptime": 10.0,
            "cache": {
                "hits": 7, "misses": 3, "hit_rate": 0.7,
                "bytes_held_mb": 1234.0, "chained_active": 2, "chained": 9,
            },
        }
        frame = render_top(sample)
        assert "cache" in frame
        assert "70.00%" in frame
        assert "1234 Mb" in frame
        assert "2 live / 9 total" in frame

    def test_tier_stats_shape(self):
        reset_request_ids()
        sim = Simulation(prefix_config(PrefixPolicy()))
        stats = sim.prefix_tier.stats()
        assert stats["strategy"] == "popularity"
        assert stats["capacity_mb"] == pytest.approx(50_000.0)
        for key in ("hits", "misses", "chained", "patched",
                    "underruns", "severed", "pending_warm"):
            assert isinstance(stats[key], int)
