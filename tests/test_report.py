"""Unit tests for ASCII table/series rendering."""

import pytest

from repro.analysis.report import render_series, render_table, sparkline


class TestRenderTable:
    def test_basic_layout(self):
        out = render_table(["a", "bb"], [[1, 2.5], [30, 4.123456]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert "a" in lines[0] and "bb" in lines[0]
        assert "2.5000" in out
        assert "4.1235" in out  # default precision 4

    def test_title_prepended(self):
        out = render_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_custom_precision(self):
        out = render_table(["x"], [[1.23456]], precision=2)
        assert "1.23" in out and "1.2346" not in out

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_strings_pass_through(self):
        out = render_table(["name"], [["P4"]])
        assert "P4" in out


class TestRenderSeries:
    def test_columns_per_curve(self):
        out = render_series(
            "theta", [0.0, 1.0],
            {"up": [0.1, 0.9], "down": [0.9, 0.1]},
        )
        header = out.splitlines()[0]
        assert "theta" in header and "up" in header and "down" in header
        assert "0.9000" in out

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_series("x", [1, 2], {"bad": [1.0]})


class TestSparkline:
    def test_monotone_ramp(self):
        s = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert s == "▁▂▃▄▅▆▇█"

    def test_constant_series(self):
        s = sparkline([5.0, 5.0, 5.0])
        assert len(s) == 3

    def test_nan_renders_blank(self):
        s = sparkline([1.0, float("nan"), 2.0])
        assert s[1] == " "

    def test_width_downsampling(self):
        s = sparkline(list(range(100)), width=10)
        assert len(s) == 10

    def test_all_nan(self):
        assert sparkline([float("nan")] * 4) == "    "
