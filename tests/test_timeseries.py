"""Unit tests for the time-series state sampler."""

import numpy as np
import pytest

from repro.analysis.timeseries import Snapshot, StateSampler, TimeSeries

from conftest import build_micro_cluster, make_client, make_video


def sampled_cluster(interval=10.0, bandwidth=5.0):
    cluster = build_micro_cluster(
        server_specs=[(bandwidth, 1e9)],
        videos=[make_video(video_id=0, length=100.0)],
        holders={0: [0]},
    )
    # The micro cluster quacks enough like a DistributionController for
    # the sampler (servers dict with iter_active).
    sampler = StateSampler(cluster.engine, cluster, interval=interval)
    return cluster, sampler


class TestTimeSeries:
    def test_array_views(self):
        ts = TimeSeries()
        ts.append(Snapshot(1.0, 2, 6.0, 2.0, 10.0, 0))
        ts.append(Snapshot(2.0, 3, 9.0, 3.0, 12.0, 1))
        assert len(ts) == 2
        assert ts.times.tolist() == [1.0, 2.0]
        assert ts.active_streams.tolist() == [2, 3]
        assert np.allclose(ts.utilization_series(12.0), [0.5, 0.75])
        assert ts.paused_streams.tolist() == [0, 1]

    def test_window(self):
        ts = TimeSeries()
        for t in (1.0, 2.0, 3.0, 4.0):
            ts.append(Snapshot(t, 0, 0.0, 0.0, 0.0, 0))
        w = ts.window(2.0, 4.0)
        assert w.times.tolist() == [2.0, 3.0]

    def test_invalid_bandwidth_rejected(self):
        ts = TimeSeries()
        with pytest.raises(ValueError):
            ts.utilization_series(0.0)


class TestStateSampler:
    def test_samples_at_interval(self):
        cluster, sampler = sampled_cluster(interval=10.0)
        cluster.engine.run_until(35.0)
        assert sampler.series.times.tolist() == [10.0, 20.0, 30.0]

    def test_counts_active_streams(self):
        cluster, sampler = sampled_cluster(interval=10.0)
        cluster.submit(0, client=make_client())
        cluster.engine.run_until(15.0)
        cluster.submit(0, client=make_client())
        cluster.engine.run_until(25.0)
        counts = sampler.series.active_streams.tolist()
        assert counts == [1, 2]
        assert sampler.series.snapshots[-1].per_server_active == {0: 2}

    def test_instantaneous_rate_reflects_allocation(self):
        cluster, sampler = sampled_cluster(interval=10.0, bandwidth=5.0)
        cluster.submit(0, client=make_client(buffer_capacity=1e9))
        cluster.engine.run_until(10.0)
        # One stream, EFTF gives it the whole link.
        assert sampler.series.snapshots[0].instantaneous_rate == pytest.approx(5.0)
        assert sampler.series.utilization_series(5.0)[0] == pytest.approx(1.0)

    def test_buffer_projection_without_flush(self):
        """The sampler projects lazily-integrated state to now."""
        cluster, sampler = sampled_cluster(interval=10.0, bandwidth=5.0)
        r, _ = cluster.submit(0, client=make_client(buffer_capacity=1e9))
        cluster.engine.run_until(10.0)
        # At t=10: sent 50, viewed 10 → buffer 40, without any flush.
        assert sampler.series.mean_buffers[0] == pytest.approx(40.0)

    def test_paused_streams_counted(self):
        cluster, sampler = sampled_cluster(interval=10.0)
        r, _ = cluster.submit(0, client=make_client(buffer_capacity=50.0))
        cluster.engine.run_until(5.0)
        r.pause_playback(5.0)
        cluster.managers[0].reallocate(5.0)
        cluster.engine.run_until(10.0)
        assert sampler.series.paused_streams[0] == 1

    def test_stop_halts_sampling(self):
        cluster, sampler = sampled_cluster(interval=10.0)
        cluster.engine.run_until(15.0)
        sampler.stop()
        cluster.engine.run_until(100.0)
        assert len(sampler.series) == 1
