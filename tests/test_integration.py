"""Integration tests: the paper's qualitative claims at reduced scale.

These pin the *shapes* the benchmarks regenerate: orderings and
separations between mechanisms, not absolute values.  Durations are
small (a few simulated hours) but chosen so each claim is comfortably
outside run-to-run noise with a fixed seed.
"""

import pytest

from repro import (
    SMALL_SYSTEM,
    MigrationPolicy,
    SimulationConfig,
    run_simulation,
)
from repro.analysis.erlang import erlang_b_utilization
from repro.experiments.svbr import one_server_system
from repro.units import hours

#: A small-system variant light enough for many runs per test.
TINY = SMALL_SYSTEM.scaled(n_videos=120, name="tiny")


def run(theta=0.27, system=TINY, sim_hours=8.0, warm_hours=2.0, seed=9, **kw):
    return run_simulation(
        SimulationConfig(
            system=system,
            theta=theta,
            duration=hours(sim_hours),
            warmup=hours(warm_hours),
            seed=seed,
            client_receive_bandwidth=30.0,
            **kw,
        )
    )


class TestStagingClaims:
    """Figure 5: staging lifts utilization; 20 % ≈ 100 %."""

    def test_staging_improves_utilization(self):
        base = run(staging_fraction=0.0)
        staged = run(staging_fraction=0.2)
        assert staged.utilization > base.utilization + 0.01

    def test_twenty_percent_near_full_buffer(self):
        """The paper's headline: 20 % captures almost all the benefit."""
        none = run(staging_fraction=0.0)
        twenty = run(staging_fraction=0.2)
        full = run(staging_fraction=1.0)
        gain_twenty = twenty.utilization - none.utilization
        gain_full = full.utilization - none.utilization
        assert gain_full > 0
        assert gain_twenty >= 0.8 * gain_full

    def test_staging_monotone_in_buffer_size(self):
        utils = [
            run(staging_fraction=f).utilization for f in (0.0, 0.02, 0.2)
        ]
        assert utils[0] <= utils[1] + 0.005  # tiny buffers: ~no harm
        assert utils[1] < utils[2]

    def test_staging_raises_acceptance(self):
        base = run(staging_fraction=0.0)
        staged = run(staging_fraction=0.2)
        assert staged.acceptance_ratio > base.acceptance_ratio


class TestMigrationClaims:
    """Figure 4: DRM lifts utilization; hops=1 ≈ unlimited."""

    def test_migration_improves_utilization(self):
        base = run(migration=MigrationPolicy.disabled())
        drm = run(migration=MigrationPolicy.paper_default())
        assert drm.migrations > 0
        assert drm.utilization > base.utilization

    def test_one_hop_close_to_unlimited(self):
        one = run(migration=MigrationPolicy.paper_default())
        unlimited = run(migration=MigrationPolicy.unlimited_hops())
        assert abs(one.utilization - unlimited.utilization) < 0.02

    def test_migration_count_bounded_by_chain_rule(self):
        """Chain length 1 → at most one migration per arrival."""
        result = run(migration=MigrationPolicy.paper_default())
        assert result.migrations <= result.arrivals


class TestPlacementClaims:
    """Figures 4/7: even placement sags at negative θ; predictive and
    partial predictive rescue it; all comparable at θ >= 0."""

    def test_even_allocation_sags_at_negative_theta(self):
        mid = run(theta=0.5, placement="even")
        skewed = run(theta=-1.5, placement="even")
        assert skewed.utilization < mid.utilization - 0.05

    def test_predictive_rescues_skewed_demand(self):
        even = run(theta=-1.5, placement="even",
                   migration=MigrationPolicy.paper_default(),
                   staging_fraction=0.2)
        pred = run(theta=-1.5, placement="predictive",
                   migration=MigrationPolicy.paper_default(),
                   staging_fraction=0.2)
        assert pred.utilization > even.utilization + 0.05

    def test_partial_predictive_close_to_predictive(self):
        partial = run(theta=-1.5, placement="partial",
                      migration=MigrationPolicy.paper_default(),
                      staging_fraction=0.2)
        pred = run(theta=-1.5, placement="predictive",
                   migration=MigrationPolicy.paper_default(),
                   staging_fraction=0.2)
        assert partial.utilization > pred.utilization - 0.08

    def test_even_matches_predictive_at_uniform_demand(self):
        even = run(theta=1.0, placement="even",
                   migration=MigrationPolicy.paper_default(),
                   staging_fraction=0.2)
        pred = run(theta=1.0, placement="predictive",
                   migration=MigrationPolicy.paper_default(),
                   staging_fraction=0.2)
        assert abs(even.utilization - pred.utilization) < 0.03


class TestPolicyOrdering:
    """Figure 7's summary: P4 ≈ P8 dominate at θ = 0.5."""

    def test_p4_close_to_p8_at_moderate_theta(self):
        p4 = run(theta=0.5, placement="even",
                 migration=MigrationPolicy.paper_default(),
                 staging_fraction=0.2)
        p8 = run(theta=0.5, placement="predictive",
                 migration=MigrationPolicy.paper_default(),
                 staging_fraction=0.2)
        p1 = run(theta=0.5, placement="even")
        assert abs(p4.utilization - p8.utilization) < 0.03
        assert p4.utilization > p1.utilization


class TestAnalyticValidation:
    """EXT-SVBR: one-server simulation matches Erlang-B (the paper's own
    simulator-validation methodology)."""

    @pytest.mark.parametrize("svbr", [10, 33])
    def test_one_server_matches_erlang_b(self, svbr):
        system = one_server_system(svbr)
        result = run_simulation(
            SimulationConfig(
                system=system, theta=0.27, placement="even",
                scheduler="none", staging_fraction=0.0,
                duration=hours(30), warmup=hours(5), seed=13,
            )
        )
        analytic = erlang_b_utilization(svbr, load=1.0)
        assert result.utilization == pytest.approx(analytic, abs=0.035)

    def test_utilization_grows_with_svbr(self):
        utils = []
        for svbr in (5, 20, 100):
            system = one_server_system(svbr)
            utils.append(
                run_simulation(
                    SimulationConfig(
                        system=system, theta=0.27, scheduler="none",
                        duration=hours(20), warmup=hours(4), seed=13,
                    )
                ).utilization
            )
        assert utils == sorted(utils)


class TestSchedulerAblation:
    """EFTF beats the idle-spare baseline and is at least as good as the
    alternatives it was chosen over."""

    def test_eftf_beats_no_workahead(self):
        eftf = run(staging_fraction=0.2, scheduler="eftf")
        none = run(staging_fraction=0.2, scheduler="none")
        assert eftf.utilization > none.utilization + 0.01

    def test_eftf_at_least_matches_lftf(self):
        eftf = run(staging_fraction=0.2, scheduler="eftf")
        lftf = run(staging_fraction=0.2, scheduler="lftf")
        assert eftf.utilization >= lftf.utilization - 0.005
