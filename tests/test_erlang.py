"""Unit tests for the Erlang-B analytic model."""

import math

import pytest

from repro.analysis.erlang import (
    erlang_b,
    erlang_b_inverse,
    erlang_b_utilization,
    svbr_utilization_curve,
)


def erlang_b_direct(m: int, a: float) -> float:
    """Reference implementation via the closed form (small m only)."""
    num = a**m / math.factorial(m)
    den = sum(a**k / math.factorial(k) for k in range(m + 1))
    return num / den


class TestErlangB:
    def test_known_values(self):
        # B(1, 1) = 1/2; B(2, 1) = 1/5 — textbook values.
        assert erlang_b(1, 1.0) == pytest.approx(0.5)
        assert erlang_b(2, 1.0) == pytest.approx(0.2)

    @pytest.mark.parametrize("m", [1, 2, 5, 10, 20])
    @pytest.mark.parametrize("a", [0.5, 1.0, 5.0, 20.0])
    def test_recursion_matches_closed_form(self, m, a):
        assert erlang_b(m, a) == pytest.approx(erlang_b_direct(m, a), rel=1e-12)

    def test_monotone_decreasing_in_servers(self):
        blocks = [erlang_b(m, 10.0) for m in range(1, 30)]
        assert blocks == sorted(blocks, reverse=True)

    def test_monotone_increasing_in_load(self):
        blocks = [erlang_b(10, a) for a in (1.0, 5.0, 10.0, 20.0)]
        assert blocks == sorted(blocks)

    def test_zero_load(self):
        assert erlang_b(5, 0.0) == 0.0
        assert erlang_b(0, 0.0) == 1.0

    def test_large_m_stable(self):
        # Factorial form would overflow; recursion must not.
        b = erlang_b(1000, 1000.0)
        assert 0.0 < b < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            erlang_b(-1, 1.0)
        with pytest.raises(ValueError):
            erlang_b(1, -1.0)


class TestUtilization:
    def test_at_full_load_is_one_minus_blocking(self):
        for m in (5, 33, 100):
            expected = 1.0 - erlang_b(m, float(m))
            assert erlang_b_utilization(m, load=1.0) == pytest.approx(expected)

    def test_grows_with_svbr(self):
        """The paper's point: bigger SVBR → higher utilization."""
        utils = [erlang_b_utilization(m) for m in (5, 10, 33, 100, 500)]
        assert utils == sorted(utils)
        assert utils[-1] > 0.95

    def test_light_load_fully_carried(self):
        assert erlang_b_utilization(100, load=0.5) == pytest.approx(0.5, abs=1e-6)

    def test_curve_helper(self):
        curve = svbr_utilization_curve([5, 10])
        assert curve == [
            (5, erlang_b_utilization(5)),
            (10, erlang_b_utilization(10)),
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            erlang_b_utilization(0)


class TestInverse:
    def test_inverse_is_consistent(self):
        for a in (5.0, 50.0):
            for target in (0.1, 0.01):
                m = erlang_b_inverse(target, a)
                assert erlang_b(m, a) <= target
                if m > 1:
                    assert erlang_b(m - 1, a) > target

    def test_zero_load_needs_no_servers(self):
        assert erlang_b_inverse(0.01, 0.0) == 0

    def test_unreachable_target_raises(self):
        with pytest.raises(ValueError):
            erlang_b_inverse(1e-12, 1000.0, max_servers=10)

    def test_validation(self):
        with pytest.raises(ValueError):
            erlang_b_inverse(0.0, 1.0)
        with pytest.raises(ValueError):
            erlang_b_inverse(1.0, 1.0)
