"""Unit tests for trial statistics."""

import math

import pytest

from repro.analysis.stats import summarize


class TestSummarize:
    def test_single_value(self):
        s = summarize([0.5])
        assert s.mean == 0.5
        assert s.std == 0.0
        assert s.ci_low == s.ci_high == 0.5
        assert s.n == 1

    def test_mean_and_std(self):
        s = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s.mean == pytest.approx(3.0)
        assert s.std == pytest.approx(math.sqrt(2.5))
        assert s.minimum == 1.0 and s.maximum == 5.0

    def test_ci_contains_mean_and_is_symmetric(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.ci_low < s.mean < s.ci_high
        assert (s.mean - s.ci_low) == pytest.approx(s.ci_high - s.mean)

    def test_ci_narrows_with_more_trials(self):
        narrow = summarize([1.0, 2.0] * 20)
        wide = summarize([1.0, 2.0])
        assert narrow.ci_halfwidth < wide.ci_halfwidth

    def test_higher_confidence_wider_interval(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert (
            summarize(data, confidence=0.99).ci_halfwidth
            > summarize(data, confidence=0.90).ci_halfwidth
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_unknown_confidence_rejected(self):
        with pytest.raises(ValueError):
            summarize([1.0], confidence=0.5)

    def test_overlap_detection(self):
        a = summarize([1.0, 1.1, 0.9])
        b = summarize([1.05, 1.15, 0.95])
        c = summarize([5.0, 5.1, 4.9])
        assert a.overlaps(b)
        assert b.overlaps(a)
        assert not a.overlaps(c)

    def test_str_rendering(self):
        text = str(summarize([1.0, 2.0]))
        assert "±" in text and "n=2" in text
