"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_exist(self):
        parser = build_parser()
        for cmd in ("fig4", "fig5", "fig6", "fig7", "svbr", "partial",
                    "het", "ablation", "replication", "burst", "vcr",
                    "mix", "run", "all"):
            args = parser.parse_args(
                [cmd] if cmd == "fig6" else [cmd]
            )
            assert args.command == cmd

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig4", "--system", "huge"])


class TestMain:
    def test_fig6_prints_matrix(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "P1" in out and "P8" in out and "20% Buffer" in out

    def test_run_command(self, capsys):
        code = main([
            "run", "--system", "small", "--theta", "0.5",
            "--hours", "0.5", "--warmup-hours", "0", "--seed", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "utilization=" in out
        assert "arrivals=" in out

    def test_run_with_migration_and_staging(self, capsys):
        code = main([
            "run", "--system", "small", "--theta", "0.0",
            "--staging", "0.2", "--migrate",
            "--hours", "0.5", "--warmup-hours", "0",
        ])
        assert code == 0
        assert "utilization=" in capsys.readouterr().out

    def test_fig5_quiet_micro(self, capsys):
        code = main([
            "fig5", "--system", "small", "--scale", "0.0005", "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "20% buffer" in out

    def test_svbr_micro(self, capsys):
        code = main(["svbr", "--scale", "0.0005", "--quiet"])
        assert code == 0
        assert "erlang-B" in capsys.readouterr().out
