"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_exist(self):
        parser = build_parser()
        for cmd in ("fig4", "fig5", "fig6", "fig7", "svbr", "partial",
                    "het", "ablation", "replication", "burst", "vcr",
                    "mix", "run", "all", "bench"):
            args = parser.parse_args(
                [cmd] if cmd == "fig6" else [cmd]
            )
            assert args.command == cmd

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig4", "--system", "huge"])


class TestRegistryDrivenCLI:
    """Subcommands are generated from the experiment registry, so a
    registered spec appears in a fresh parser with no CLI edits."""

    def test_every_registered_experiment_has_a_subcommand(self):
        from repro.experiments.registry import EXPERIMENTS

        parser = build_parser()
        for name in EXPERIMENTS.names():
            args = parser.parse_args([name])
            assert args.command == name

    def test_dynamically_registered_experiment_appears_and_dispatches(
        self, capsys
    ):
        from repro.experiments.registry import (
            EXPERIMENTS, ExperimentSpec, register,
        )

        def _run(args, progress):
            print("dummy ran")
            return 0

        register(ExperimentSpec(
            name="dummy-exp", help="registered by a test",
            run_cli=_run, bare=True,
        ))
        try:
            assert main(["dummy-exp"]) == 0
            assert "dummy ran" in capsys.readouterr().out
        finally:
            EXPERIMENTS.unregister("dummy-exp")
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dummy-exp"])

    def test_trace_choices_come_from_trace_configs(self):
        from repro.experiments.registry import trace_experiments

        parser = build_parser()
        for name in trace_experiments():
            args = parser.parse_args(["trace", name])
            assert args.experiment == name

    def test_chaos_modes_come_from_chaos_registry(self):
        from repro.experiments.registry import CHAOS_EXPERIMENTS

        parser = build_parser()
        for name in CHAOS_EXPERIMENTS.names():
            args = parser.parse_args(["chaos", name])
            assert args.experiment == name

    def test_no_hand_maintained_dispatch_left(self):
        # The registry replaced the per-experiment import and dispatch
        # lists; nothing in cli.py may mention individual experiment
        # modules again.
        import inspect

        import repro.cli as cli

        source = inspect.getsource(cli)
        for needle in (
            "fig4_drm", "fig5_staging", "fig7_policies", "svbr_mod",
            "TRACE_EXPERIMENTS = (", "CHAOS_EXPERIMENTS = (",
        ):
            assert needle not in source, needle


class TestMain:
    def test_fig6_prints_matrix(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "P1" in out and "P8" in out and "20% Buffer" in out

    def test_run_command(self, capsys):
        code = main([
            "run", "--system", "small", "--theta", "0.5",
            "--hours", "0.5", "--warmup-hours", "0", "--seed", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "utilization=" in out
        assert "arrivals=" in out

    def test_run_with_migration_and_staging(self, capsys):
        code = main([
            "run", "--system", "small", "--theta", "0.0",
            "--staging", "0.2", "--migrate",
            "--hours", "0.5", "--warmup-hours", "0",
        ])
        assert code == 0
        assert "utilization=" in capsys.readouterr().out

    def test_fig5_quiet_micro(self, capsys):
        code = main([
            "fig5", "--system", "small", "--scale", "0.0005", "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "20% buffer" in out

    def test_svbr_micro(self, capsys):
        code = main(["svbr", "--scale", "0.0005", "--quiet"])
        assert code == 0
        assert "erlang-B" in capsys.readouterr().out

    def test_bench_quick_writes_json(self, tmp_path, capsys, monkeypatch):
        from repro import benchmark as perf

        # Shrink the workload to unit-test size; the real sizes run in
        # the benchmark suite and CI smoke job.
        monkeypatch.setattr(perf, "ENGINE_EVENTS", 4000)
        monkeypatch.setattr(perf, "QUICK_SWEEP_SCALE", 0.0005)
        out = tmp_path / "perf.json"
        code = main(["bench", "--quick", "--out", str(out), "--quiet"])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "identical: True" in stdout
        assert out.exists()


class TestChaosCLI:
    def test_chaos_subcommand_documented_in_help(self, capsys):
        parser = build_parser()
        args = parser.parse_args(["chaos", "availability"])
        assert args.command == "chaos"
        with pytest.raises(SystemExit) as exc:
            parser.parse_args(["chaos", "--help"])
        assert exc.value.code == 0
        help_text = capsys.readouterr().out
        assert "availability" in help_text and "soak" in help_text
        assert "--mtbf-hours" in help_text
        assert "invariant" in help_text

    def test_chaos_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "meltdown"])

    def test_chaos_soak_micro_reports_clean_invariants(self, capsys):
        code = main([
            "chaos", "soak", "--hours", "0.5", "--mtbf-hours", "0.1",
            "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "invariants clean" in out
        assert "faults=" in out

    def test_chaos_availability_micro(self, capsys):
        code = main([
            "chaos", "availability", "--scale", "0.0005", "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Availability vs MTBF" in out
        assert "EFTF + DRM" in out and "no DRM" in out


class TestObservabilityCLI:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_trace_subcommand_writes_valid_jsonl(self, tmp_path, capsys):
        import json

        out = tmp_path / "t.jsonl"
        code = main([
            "trace", "fig5", "--system", "small",
            "--scale", "0.001", "--trace-out", str(out),
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "kind" in stdout and str(out) in stdout
        with open(out) as fh:
            records = [json.loads(line) for line in fh]
        assert records[0]["kind"] == "run.meta"
        assert "provenance" in records[0]
        kinds = {r["kind"] for r in records[1:]}
        assert len(kinds) >= 5
        assert all("t" in r for r in records[1:])

    def test_trace_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "fig6"])

    def test_run_with_profile_reports_to_stderr(self, capsys):
        code = main([
            "run", "--system", "small", "--theta", "0.0",
            "--hours", "0.5", "--warmup-hours", "0", "--profile",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "events/sec" in captured.err
        assert "events/sec" not in captured.out

    def test_run_trace_out_env_restored(self, tmp_path):
        import os

        out = tmp_path / "r.jsonl"
        assert "REPRO_TRACE_OUT" not in os.environ
        code = main([
            "run", "--system", "small", "--theta", "0.0",
            "--hours", "0.5", "--warmup-hours", "0",
            "--trace-out", str(out),
        ])
        assert code == 0
        assert "REPRO_TRACE_OUT" not in os.environ
        assert out.exists() and out.stat().st_size > 0

    def test_trace_out_missing_parent_is_one_actionable_line(self, tmp_path):
        """A typo'd --trace-out directory fails before any simulation
        runs, naming the flag and the missing directory — not a
        traceback from deep inside the exporter."""
        target = tmp_path / "no" / "such" / "dir" / "t.jsonl"
        with pytest.raises(SystemExit) as exc:
            main([
                "run", "--system", "small", "--theta", "0.0",
                "--hours", "0.5", "--warmup-hours", "0",
                "--trace-out", str(target),
            ])
        message = str(exc.value)
        assert "--trace-out" in message
        assert "does not exist" in message
        assert str(target.parent) in message

    def test_trace_out_env_missing_parent_names_the_variable(
        self, tmp_path, monkeypatch
    ):
        from repro import SMALL_SYSTEM, Simulation, SimulationConfig

        target = tmp_path / "void" / "t.jsonl"
        monkeypatch.setenv("REPRO_TRACE_OUT", str(target))
        with pytest.raises(SystemExit, match="REPRO_TRACE_OUT"):
            Simulation(SimulationConfig(system=SMALL_SYSTEM))

    def test_progress_goes_to_stderr_not_stdout(self, capsys):
        code = main([
            "fig5", "--system", "small", "--scale", "0.0005",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "Figure 5" in captured.out
        assert "utilization=" in captured.err
        assert "theta=" not in captured.out


class TestListCommand:
    def test_list_prints_every_registry_section(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for section in (
            "experiments", "chaos experiments", "allocators",
            "placements", "arrivals", "systems", "paper policies",
        ):
            assert f"{section} (" in out

    def test_list_is_registry_driven(self, capsys):
        """Every registered name appears — no hand-maintained listing."""
        from repro.cluster.system import SYSTEMS
        from repro.core.policies import PAPER_POLICIES
        from repro.experiments.registry import EXPERIMENTS
        from repro.placement import PLACEMENTS

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for registry in (EXPERIMENTS, PLACEMENTS, SYSTEMS, PAPER_POLICIES):
            for name in registry.names():
                assert name in out

    def test_list_includes_help_strings(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        # Spot-check: help text rides along with the names.
        assert "serve" in out
        assert "loadgen" in out

    def test_list_help_is_single_line_per_entry(self, capsys):
        assert main(["list"]) == 0
        for line in capsys.readouterr().out.splitlines():
            if line.startswith("  "):
                # entry lines: name column, two-space gap, one-line help
                assert "\n" not in line and line.strip()


class TestScenarioErrorPath:
    def test_run_invalid_scenario_json_is_one_actionable_line(
        self, tmp_path, capsys
    ):
        bad = tmp_path / "bad.json"
        bad.write_text('{"name": nope}')
        with pytest.raises(SystemExit) as err:
            main(["run", "--scenario", str(bad)])
        message = str(err.value)
        assert "\n" not in message
        assert str(bad) in message
        assert "line 1 column 10" in message

    def test_run_missing_scenario_file_names_path(self, tmp_path):
        absent = tmp_path / "absent.json"
        with pytest.raises(SystemExit) as err:
            main(["run", "--scenario", str(absent)])
        assert str(absent) in str(err.value)

    def test_run_scenario_conflicting_flags_rejected(self, tmp_path):
        bad = tmp_path / "any.json"
        bad.write_text("{}")
        with pytest.raises(SystemExit, match="--theta"):
            main([
                "run", "--scenario", str(bad), "--theta", "0.5",
            ])
