"""The pluggable event-agenda implementations (repro.sim.scheduler).

The contract under test: every scheduler pops the exact ``(time, seq)``
sequence a binary heap would — including FIFO tie-breaks at equal
timestamps — so swapping the agenda structure can never change a
simulation's behavior.  The calendar queue's internals (bucket wrap,
ring growth, sparse-region jumps) are exercised explicitly, and a full
fig4-shaped run is pinned identical under either scheduler.
"""

from __future__ import annotations

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine
from repro.sim.scheduler import (
    SCHEDULERS,
    CalendarScheduler,
    EventScheduler,
    HeapScheduler,
    resolve_scheduler,
)


def drain_all(sched: EventScheduler):
    out = []
    while True:
        entry = sched.pop()
        if entry is None:
            return out
        out.append(entry)


class TestPopOrderProperty:
    """Calendar pops in exactly heap order, for any push/pop interleave."""

    # Small time domain → plenty of exact timestamp collisions, so the
    # (time, seq) FIFO tie-break is genuinely exercised.
    times = st.lists(
        st.floats(
            min_value=0.0, max_value=8.0,
            allow_nan=False, allow_infinity=False,
        ).map(lambda t: round(t, 1)),
        min_size=0, max_size=120,
    )

    @settings(max_examples=200, deadline=None)
    @given(times=times, width=st.sampled_from([0.25, 1.0, 3.0]),
           buckets=st.sampled_from([1, 2, 8]))
    def test_push_all_pop_all_matches_heap(self, times, width, buckets):
        heap = HeapScheduler()
        cal = CalendarScheduler(bucket_width=width, n_buckets=buckets)
        for seq, t in enumerate(times):
            heap.push((t, seq, None))
            cal.push((t, seq, None))
        expected = drain_all(heap)
        assert drain_all(cal) == expected
        # The reference itself is exactly heapq, i.e. sorted (seq ties
        # are impossible: seq is unique).
        assert expected == sorted(expected, key=lambda e: (e[0], e[1]))

    @settings(max_examples=200, deadline=None)
    @given(
        ops=st.lists(
            st.one_of(
                st.floats(
                    min_value=0.0, max_value=8.0,
                    allow_nan=False, allow_infinity=False,
                ).map(lambda t: round(t, 1)),
                st.none(),  # None = pop
            ),
            min_size=0, max_size=120,
        )
    )
    def test_interleaved_push_pop_matches_heap(self, ops):
        """Pops interleave with pushes — and pushed times may precede
        the consumption cursor's epoch, the calendar's trickiest path.
        A pushed time is clamped to >= the last pop (the engine never
        schedules in the past)."""
        heap = HeapScheduler()
        cal = CalendarScheduler(bucket_width=0.5, n_buckets=4)
        seq = 0
        floor = 0.0
        for op in ops:
            if op is None:
                a, b = heap.pop(), cal.pop()
                assert a == b
                if a is not None:
                    floor = a[0]
            else:
                seq += 1
                entry = (max(op, floor), seq, None)
                heap.push(entry)
                cal.push(entry)
            assert len(heap) == len(cal)
            assert heap.peek() == cal.peek()
        assert drain_all(cal) == drain_all(heap)


class TestCalendarInternals:
    def test_ring_grows_with_density(self):
        cal = CalendarScheduler(bucket_width=1.0, n_buckets=2)
        entries = [(float(i % 13), i, None) for i in range(200)]
        for e in entries:
            cal.push(e)
        assert len(cal) == 200
        assert drain_all(cal) == sorted(entries, key=lambda e: e[:2])

    def test_bucket_wrap_separates_epochs(self):
        # Ring of 2 width-1.0 buckets: t=0.5 and t=2.5 share a bucket
        # index but belong to different laps; 2.5 must not fire early.
        cal = CalendarScheduler(bucket_width=1.0, n_buckets=2)
        cal.push((2.5, 1, None))
        cal.push((0.5, 2, None))
        cal.push((1.5, 3, None))
        assert [e[0] for e in drain_all(cal)] == [0.5, 1.5, 2.5]

    def test_sparse_jump_skips_empty_laps(self):
        # A lone far-future entry: the cursor must jump straight to its
        # epoch rather than scan millions of empty buckets.
        cal = CalendarScheduler(bucket_width=1.0, n_buckets=4)
        cal.push((1e6, 1, None))
        assert cal.pop() == (1e6, 1, None)
        assert cal.pop() is None

    def test_peek_does_not_consume(self):
        cal = CalendarScheduler()
        cal.push((3.0, 1, None))
        assert cal.peek() == (3.0, 1, None)
        assert cal.peek() == (3.0, 1, None)
        assert len(cal) == 1
        assert cal.pop() == (3.0, 1, None)
        assert cal.peek() is None

    def test_entries_iterates_everything(self):
        cal = CalendarScheduler(bucket_width=1.0, n_buckets=2)
        pushed = {(float(i), i, None) for i in range(10)}
        for e in pushed:
            cal.push(e)
        assert set(cal.entries()) == pushed


class TestSelection:
    def test_registry_names(self):
        assert set(SCHEDULERS.names()) >= {"heap", "calendar"}

    def test_engine_accepts_key_instance_and_default(self):
        assert isinstance(Engine().scheduler, HeapScheduler)
        assert isinstance(
            Engine(scheduler="calendar").scheduler, CalendarScheduler
        )
        sched = CalendarScheduler(bucket_width=2.0)
        assert Engine(scheduler=sched).scheduler is sched

    def test_env_var_selects_scheduler(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "calendar")
        assert isinstance(Engine().scheduler, CalendarScheduler)
        monkeypatch.delenv("REPRO_SCHEDULER")
        assert isinstance(Engine().scheduler, HeapScheduler)

    def test_unknown_key_is_a_clear_error(self):
        with pytest.raises(KeyError):
            resolve_scheduler("splay-tree")

    def test_heapify_entries_round_trip(self):
        from repro.sim.scheduler import heapify_entries

        entries = [(float(9 - i), i, None) for i in range(10)]
        heap = heapify_entries(list(entries))
        assert [heapq.heappop(heap) for _ in range(10)] == sorted(
            entries, key=lambda e: e[:2]
        )


class TestEngineEquivalence:
    """The same model run on either agenda is indistinguishable."""

    @staticmethod
    def _chain_run(scheduler):
        engine = Engine(scheduler=scheduler)
        fired = []
        state = {"n": 0}

        def tick():
            state["n"] += 1
            fired.append((engine.now, state["n"]))
            if state["n"] < 500:
                engine.schedule(0.7 * (state["n"] % 5) + 0.1, tick)
                if state["n"] % 7 == 0:
                    engine.schedule(0.3, tick).cancel()

        engine.schedule(1.0, tick)
        engine.run_until(2000.0)
        return fired, engine.events_fired, engine.events_cancelled

    def test_chain_workload_identical(self):
        assert self._chain_run("heap") == self._chain_run("calendar")

    def test_fig4_identical_under_either_scheduler(self, monkeypatch):
        """Regression: a full fig4-shaped run produces bit-identical
        curves whichever agenda implementation is selected."""
        from repro import SMALL_SYSTEM
        from repro.experiments import fig4_drm

        monkeypatch.setenv("REPRO_WORKERS", "1")  # in-process: env applies
        system = SMALL_SYSTEM.scaled(n_videos=60, name="sched-tiny")
        results = {}
        for name in ("heap", "calendar"):
            monkeypatch.setenv("REPRO_SCHEDULER", name)
            results[name] = fig4_drm.run_fig4(
                system=system, theta_values=[-0.5, 0.5],
                scale=0.001, seed=3,
            )
        # SummaryStats are float dataclasses: == means bit-identical.
        assert results["heap"].curves == results["calendar"].curves
        assert results["heap"].x_values == results["calendar"].x_values
