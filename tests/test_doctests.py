"""Run the doctests embedded in public-API docstrings.

Keeps the examples in module documentation honest — they are part of
the documented contract.
"""

import doctest

import pytest

import repro.obs.tracer
import repro.sim.engine
import repro.sim.process
import repro.sim.rng

MODULES = [
    repro.obs.tracer,
    repro.sim.engine,
    repro.sim.process,
    repro.sim.rng,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
