"""Unit tests for admission control (least-loaded + rejection paths)."""

from repro.core.admission import AdmissionOutcome
from repro.core.migration import MigrationPolicy

from conftest import build_micro_cluster, make_video


def two_server_cluster(bandwidth=3.0, migration=None):
    """Videos 0 and 1; video 0 on both servers, video 1 only on server 1."""
    videos = [make_video(video_id=0), make_video(video_id=1)]
    return build_micro_cluster(
        server_specs=[(bandwidth, 1e9), (bandwidth, 1e9)],
        videos=videos,
        holders={0: [0, 1], 1: [1]},
        migration=migration,
    )


class TestLeastLoaded:
    def test_first_request_goes_to_least_loaded(self):
        cluster = two_server_cluster()
        # Load server 1 with a request for video 1.
        cluster.submit(1)
        r, outcome = cluster.submit(0)
        assert outcome is AdmissionOutcome.ACCEPTED
        assert r.server_id == 0  # the emptier holder

    def test_tie_broken_by_server_id(self):
        cluster = two_server_cluster()
        r, _ = cluster.submit(0)
        assert r.server_id == 0

    def test_only_holders_considered(self):
        cluster = two_server_cluster()
        r, outcome = cluster.submit(1)
        assert outcome is AdmissionOutcome.ACCEPTED
        assert r.server_id == 1  # server 0 has no replica of video 1

    def test_full_holder_skipped(self):
        cluster = two_server_cluster(bandwidth=1.0)
        cluster.submit(1)  # fills server 1
        r, outcome = cluster.submit(0)
        assert outcome is AdmissionOutcome.ACCEPTED
        assert r.server_id == 0


class TestRejection:
    def test_rejected_when_all_holders_full(self):
        cluster = two_server_cluster(bandwidth=1.0)
        assert cluster.submit(0)[1] is AdmissionOutcome.ACCEPTED
        assert cluster.submit(0)[1] is AdmissionOutcome.ACCEPTED
        r, outcome = cluster.submit(0)
        assert outcome is AdmissionOutcome.REJECTED
        assert r.state.value == "rejected"
        assert cluster.metrics.rejected == 1

    def test_no_replica_rejection(self):
        cluster = build_micro_cluster(
            server_specs=[(3.0, 1e9)],
            videos=[make_video(video_id=0), make_video(video_id=1)],
            holders={0: [0], 1: []},
        )
        _, outcome = cluster.submit(1)
        assert outcome is AdmissionOutcome.REJECTED_NO_REPLICA
        assert cluster.metrics.rejected_no_replica == 1

    def test_down_server_not_a_candidate(self):
        cluster = two_server_cluster()
        cluster.servers[1].fail()
        _, outcome = cluster.submit(1)  # only holder is down
        assert outcome is AdmissionOutcome.REJECTED_NO_REPLICA

    def test_metrics_balance(self):
        cluster = two_server_cluster(bandwidth=1.0)
        for _ in range(5):
            cluster.submit(0)
        m = cluster.metrics
        assert m.arrivals == 5
        assert m.accepted + m.rejected == 5
        m.sanity_check()


class TestMigrationFallback:
    def test_migration_admits_when_direct_slots_full(self):
        # Server 0 full with a video-0 stream that could move to server 1.
        cluster = two_server_cluster(
            bandwidth=1.0, migration=MigrationPolicy.paper_default()
        )
        movable, _ = cluster.submit(0)   # lands on server 0
        assert movable.server_id == 0
        blocker, _ = cluster.submit(0)   # lands on server 1
        assert blocker.server_id == 1
        # Both holders of video 0 now full.  A third video-0 request
        # cannot be helped (video 0's streams can only swap between the
        # same two full servers)... unless a slot can be freed; here
        # every server holding video 0 is full and both active streams
        # are video 0, so chain search fails:
        _, outcome = cluster.submit(0)
        assert outcome is AdmissionOutcome.REJECTED
        assert cluster.metrics.migration_attempts == 1

    def test_migration_chain_of_one(self):
        # video 0 on servers {0,1}, video 1 on {1}.  Fill server 1 with
        # a video-0 stream; then a video-1 arrival must migrate it to
        # server 0.
        cluster = two_server_cluster(
            bandwidth=1.0, migration=MigrationPolicy.paper_default()
        )
        mover, _ = cluster.submit(0)
        assert mover.server_id == 0
        # Make server 0 full; now submit another video-0 request → goes
        # to server 1 (the other holder).
        second, _ = cluster.submit(0)
        assert second.server_id == 1
        # Server 1 is full with a movable video-0 stream... but server 0
        # (the alternative holder) is also full.  Free server 0 first:
        cluster.engine.run_until(100.5)  # streams finish (1 Mb/s, 100 Mb)
        # Fill server 1 again with a movable video-0 stream:
        mover2, _ = cluster.submit(0)
        assert mover2.server_id == 0  # least loaded tie → 0
        mover3, _ = cluster.submit(1)
        assert mover3.server_id == 1
        # Server 1 full; arrival for video 1 needs server 1; only
        # stream eligible to move is... mover3 is video 1 (no other
        # holder); so rejection:
        _, outcome = cluster.submit(1)
        assert outcome is AdmissionOutcome.REJECTED

    def test_migration_disabled_never_attempts(self):
        cluster = two_server_cluster(bandwidth=1.0)
        cluster.submit(0)
        cluster.submit(0)
        cluster.submit(0)
        assert cluster.metrics.migration_attempts == 0
        assert cluster.metrics.migrations == 0


class TestMigrationSuccessPath:
    def test_successful_single_migration(self):
        # Layout: video 0 on {0,1}; video 1 on {0}.  Put a video-0
        # stream on server 0 (full, bw=1); server 1 empty.  Arrival for
        # video 1 (only holder: 0) should migrate the video-0 stream to
        # server 1 and admit.
        videos = [make_video(video_id=0), make_video(video_id=1)]
        cluster = build_micro_cluster(
            server_specs=[(1.0, 1e9), (1.0, 1e9)],
            videos=videos,
            holders={0: [0, 1], 1: [0]},
            migration=MigrationPolicy.paper_default(),
        )
        mover, _ = cluster.submit(0)
        assert mover.server_id == 0
        newcomer, outcome = cluster.submit(1)
        assert outcome is AdmissionOutcome.ACCEPTED_WITH_MIGRATION
        assert newcomer.server_id == 0
        assert mover.server_id == 1
        assert mover.hops == 1
        assert cluster.metrics.migrations == 1
        assert cluster.metrics.migration_chains_found == 1

    def test_hop_limit_blocks_second_migration(self):
        videos = [make_video(video_id=0), make_video(video_id=1)]
        cluster = build_micro_cluster(
            server_specs=[(1.0, 1e9), (1.0, 1e9)],
            videos=videos,
            holders={0: [0, 1], 1: [0, 1]},
            migration=MigrationPolicy(
                enabled=True, max_chain_length=1, max_hops_per_request=1
            ),
        )
        mover, _ = cluster.submit(0)       # server 0
        _, o = cluster.submit(1)           # needs a slot: server 1 free
        assert o is AdmissionOutcome.ACCEPTED
        # Fill server 1's remaining... bw=1 → server 1 now full too.
        # Arrival for video 1: holders {0,1} both full; mover (video 0)
        # on server 0 can hop to server 1? server 1 full; its stream is
        # video 1 with other holder server 0 — full.  chain len 1 fails.
        _, o2 = cluster.submit(1)
        assert o2 is AdmissionOutcome.REJECTED

    def test_unlimited_hops_allows_repeated_moves(self):
        videos = [make_video(video_id=0), make_video(video_id=1)]
        cluster = build_micro_cluster(
            server_specs=[(1.0, 1e9), (1.0, 1e9)],
            videos=videos,
            holders={0: [0, 1], 1: [0]},
            migration=MigrationPolicy.unlimited_hops(),
        )
        mover, _ = cluster.submit(0)     # → server 0
        n1, o1 = cluster.submit(1)       # migrate mover → server 1
        assert o1 is AdmissionOutcome.ACCEPTED_WITH_MIGRATION
        assert mover.server_id == 1
        # Finish n1 quickly? Instead check hops accumulate by freeing
        # server 0 and repeating: run to finish n1 and mover still going?
        # mover has 100 Mb at 1 Mb/s from t=0; n1 too.  Use time 0 state:
        assert mover.hops == 1

    def test_zero_hops_policy_blocks_all_migration(self):
        videos = [make_video(video_id=0), make_video(video_id=1)]
        cluster = build_micro_cluster(
            server_specs=[(1.0, 1e9), (1.0, 1e9)],
            videos=videos,
            holders={0: [0, 1], 1: [0]},
            migration=MigrationPolicy(
                enabled=True, max_chain_length=1, max_hops_per_request=0
            ),
        )
        cluster.submit(0)
        _, outcome = cluster.submit(1)
        assert outcome is AdmissionOutcome.REJECTED
